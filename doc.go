// Package repro is a full reimplementation of "MultiNoC: A
// Multiprocessing System Enabled by a Network on Chip" (Mello, Möller,
// Calazans, Moraes — DATE 2004): the Hermes wormhole NoC, the R8
// processor and its toolchain (assembler, functional simulator, R8C
// compiler), the Memory and Serial IP cores, the host software, and a
// cycle-accurate full-system simulator tying them together.
//
// The simulator runs on an activity-scheduled two-phase kernel
// (internal/sim): components that report themselves idle — routers with
// empty buffers, links with tx low, endpoints with drained queues,
// halted processors, quiet UARTs — are skipped entirely and woken by
// link activity, explicit wakes or timers, while preserving bit-exact
// equivalence with dense evaluation (same seed, same results, either
// kernel). Large meshes therefore simulate at a speed proportional to
// how much hardware is actually switching, not how much is
// instantiated, and drivers wait for quiescence
// (sim.Clock.RunUntilQuiescent, core.System.DrainIO) instead of
// stepping a guessed cycle count.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every experiment; the
// binaries under cmd/ and the programs under examples/ exercise the
// public API.
package repro

// Package repro is a full reimplementation of "MultiNoC: A
// Multiprocessing System Enabled by a Network on Chip" (Mello, Möller,
// Calazans, Moraes — DATE 2004): the Hermes wormhole NoC, the R8
// processor and its toolchain (assembler, functional simulator, R8C
// compiler), the Memory and Serial IP cores, the host software, and a
// cycle-accurate full-system simulator tying them together.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every experiment; the
// binaries under cmd/ and the programs under examples/ exercise the
// public API.
package repro

// Package repro is a full reimplementation of "MultiNoC: A
// Multiprocessing System Enabled by a Network on Chip" (Mello, Möller,
// Calazans, Moraes — DATE 2004): the Hermes wormhole NoC, the R8
// processor and its toolchain (assembler, functional simulator, R8C
// compiler), the Memory and Serial IP cores, the host software, and a
// cycle-accurate full-system simulator tying them together.
//
// The simulator runs on an activity-scheduled, time-warping two-phase
// kernel (internal/sim): components that report themselves idle —
// routers with empty buffers, links with tx low, endpoints with
// drained queues, halted processors, quiet UARTs — are skipped
// entirely and woken by link activity, explicit wakes or timers; and
// when nothing at all is switching, the kernel jumps the clock
// straight to the earliest armed timer instead of stepping the dead
// cycles one by one. The models produce warpable gaps on purpose:
// UARTs sleep between line transitions on bit-edge timers, routers
// sleep through their routing delay on a completion timer, and traffic
// injectors precompute their next injection cycle and sleep until it —
// so executed steps are proportional to events, not to simulated time
// (a host round trip at a realistic RS-232 rate costs the same wall
// clock as at a compressed one). All of it preserves bit-exact
// equivalence with dense evaluation (same seed, same results, any
// kernel mode), and drivers wait for quiescence
// (sim.Clock.RunUntilQuiescent, core.System.DrainIO) instead of
// stepping a guessed cycle count.
//
// The NoC wire protocol itself is event-driven in steady state: once a
// wormhole connection is established and the receiving buffer has
// slack, each flit of the 2-cycle asynchronous handshake moves on
// timer-paced events instead of re-evaluating both sides of the link
// every cycle (the same run-batching technique the UARTs use for bit
// edges). The stepped handshake remains the reference and the fallback
// at connection open and close, buffer-full backpressure, arbitration
// boundaries, traced links, and clock-domain crossings;
// noc.Network.SetFlitStreaming(false) pins it for differential testing,
// and the streaming path is bit-identical to it on traffic results,
// router statistics, VCD dumps, and boot transcripts. Flits themselves
// are two-word values — data plus a noc.PacketID indexing a
// network-owned metadata table — so the steady-state flit path
// allocates nothing.
//
// The system can additionally be sharded into GALS-style clock domains
// (sim.Group): the mesh is partitioned into per-region domains
// (noc.NewSharded, noc.StripDomains, core.Config.NoCDomains) whose
// only coupling is mirror wires (sim.MirrorWire) with a one-cycle
// boundary register — the conservative lookahead. Each domain owns its
// active set, wake queue and timer heap and warps its own dead spans;
// in parallel mode (Group.SetParallel) every domain runs on its own
// goroutine and may advance to min(upstream horizons) + 1, exchanging
// wire changes as ordered cross-domain events. The contract for models
// is unchanged: anything built on registered wires, Watch, and WakeAt
// timers is warpable and shardable as-is, because a mirror delivers a
// change with exactly a local wire's timing. Lockstep execution
// (SetParallel(false), the default) is bit-identical to registering
// everything on one Clock — traffic results, router statistics, VCD
// dumps, and full boot transcripts — and the parallel schedule is
// deterministic for a fixed partition and reproduces the lockstep
// results exactly.
//
// Workloads come from a traffic-pattern library
// (internal/traffic.PatternSpec): uniform, transpose, bit-complement,
// bit-reverse, weighted multi-spot hotspot, bursty on/off arrivals
// (geometric burst lengths whose next injection cycle is always known,
// so bursts warp like everything else), NDJSON trace record/replay,
// and multicast groups delivered either by path-based forwarding
// (noc.Endpoint.SendMulti, one wormhole snaking through the group) or
// by unicast replication as the differential oracle. Patterns are
// named values, so the same spec selects a workload in traffic.Config,
// an experiments.TrafficJob swept by sweepd, or a nocsim invocation —
// and every pattern draws randomness only on injection cycles, keeping
// results bit-identical across all kernel modes.
//
// On top of the kernel sits the design-space sweep service
// (internal/sweep, cmd/sweepd): an HTTP server that takes batches of
// serializable simulation configs (experiments.TrafficJob), runs each
// on its own independent Clock or Group across a worker pool, and
// journals every result. The service is built to survive its own
// workload — a panicking model becomes a failed-job record with the
// captured stack, runaway configs hit wall-clock and simulated-cycle
// deadlines (enforced inside the kernel via Clock.SetCancel),
// transient failures retry with backoff, a full queue sheds idle
// batches or pushes back with 429, and a crash-safe journal lets a
// restarted server resume unfinished jobs while serving finished ones
// from a dedupe cache keyed by (canonical config, seed, code version).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every experiment; the
// binaries under cmd/ and the programs under examples/ exercise the
// public API.
package repro

// Remotememory shows the NUMA organization of §1: both processors
// compute halves of a dot product over vectors living in the *remote*
// Memory IP (router 11), reached through the Figure 6 address window
// [2048, 3072). The host fills the vectors, the processors fetch
// operands over the NoC with plain LD instructions, and the host reads
// the partial results back from each processor's local memory.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
)

const n = 32 // elements per vector

// partial dot product: elements [from, from+count) of vectors at
// remote[0..n) and remote[n..2n), result into local 0x0100.
func program(from, count int) string {
	return fmt.Sprintf(`
	.equ REMOTE, 0x0800   ; base of the remote-memory window
	.equ N, %d
	.equ FROM, %d
	.equ COUNT, %d
	CLR R0
	CLR R1                ; accumulator
	LDI R2, REMOTE+FROM   ; &a[from] through the window
	LDI R3, REMOTE+N+FROM ; &b[from]
	LDI R5, COUNT
loop:	LD R6, R2, R0         ; a[i]  (remote LD stalls until read return)
	LD R7, R3, R0         ; b[i]
	; multiply R6*R7 by shift-add into R8
	CLR R8
mul:	MOV R7, R7
	JMPZ mdone
	SR0 R9, R7
	JMPNC skip
	ADD R8, R8, R6
skip:	MOV R7, R9
	SL0 R6, R6
	JMP mul
mdone:	ADD R1, R1, R8
	INC R2
	INC R3
	DEC R5
	JMPNZ loop
	LDI R4, 0x0100
	ST R1, R4, R0         ; publish the partial sum
	HALT`, n, from, count)
}

func main() {
	sys, err := core.New(core.Default())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}

	// Host fills the two vectors in the remote memory over RS-232.
	a := make([]uint16, n)
	b := make([]uint16, n)
	want := 0
	for i := 0; i < n; i++ {
		a[i] = uint16(i + 1)
		b[i] = uint16(2*i + 1)
		want += int(a[i]) * int(b[i])
	}
	memAddr := noc.Addr{X: 1, Y: 1}
	fmt.Println("host: filling remote memory with the two vectors...")
	if err := sys.Host.WriteMemory(memAddr, 0, a); err != nil {
		log.Fatal(err)
	}
	if err := sys.Host.WriteMemory(memAddr, n, b); err != nil {
		log.Fatal(err)
	}

	// Each processor takes half the elements.
	if _, err := sys.LoadProgram(1, program(0, n/2)); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadProgram(2, program(n/2, n/2)); err != nil {
		log.Fatal(err)
	}
	for _, id := range []int{1, 2} {
		if err := sys.Activate(id); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.RunUntilHalted(20_000_000, 1, 2); err != nil {
		log.Fatal(err)
	}

	// Read both partial sums back through the Figure 9 read service.
	var total int
	for _, id := range []int{1, 2} {
		words, err := sys.ReadMemory(sys.Proc(id).Addr(), 0x0100, 1)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Proc(id).Stats()
		fmt.Printf("P%d partial sum = %5d  (%d remote reads over the NoC)\n",
			id, words[0], st.RemoteReads)
		total += int(words[0])
	}
	fmt.Printf("\ndot product = %d (expected %d)\n", total, want)
	if total != want {
		log.Fatal("MISMATCH")
	}
	fmt.Println("verified: NUMA loads through the remote-memory window are correct.")
}

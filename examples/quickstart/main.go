// Quickstart: build the paper's Figure 1 MultiNoC system, follow the
// Figure 8 flow — synchronize baud (0x55), download object code over
// RS-232, activate the processor — and watch printf output arrive at
// the host monitor.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const program = `
	; print "Hello from R8!" one character at a time via the
	; memory-mapped printf device (ST to 0xFFFF, §2.4).
	LDI R1, 0xFFFF   ; I/O address
	CLR R0
	LDI R2, msg      ; character pointer
	CLR R3
loop:	LD R4, R2, R3    ; next character
	MOV R4, R4
	JMPZ done        ; NUL terminator
	ST R4, R1, R0    ; printf
	INC R3
	JMP loop
done:	HALT
msg:	.string "Hello from R8!\n"
`

func main() {
	// The Figure 1 platform: 2x2 Hermes mesh, serial IP at router 00,
	// R8 processors at 01 and 10, 1K-word remote memory at 11.
	sys, err := core.New(core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synchronizing host and MultiNoC (0x55 auto-baud)...")
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial IP locked at %d cycles/bit\n", sys.Serial.Baud())

	fmt.Println("downloading program to processor 1 over RS-232...")
	if _, err := sys.LoadProgram(1, program); err != nil {
		log.Fatal(err)
	}
	fmt.Println("activating processor 1...")
	if err := sys.Activate(1); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunUntilHalted(5_000_000, 1); err != nil {
		log.Fatal(err)
	}
	// Flush the last printf frames through the UART; a timeout still
	// pumped the budget, so print whatever made it out.
	_ = sys.DrainIO(60_000)

	fmt.Printf("\nP1 monitor> %s", sys.Output(1))
	cpu := sys.Proc(1).CPU()
	fmt.Printf("\nP1 executed %d instructions in %d cycles (CPI %.2f) at %d simulated cycles total\n",
		cpu.Retired, cpu.Cycles, cpu.CPI(), sys.Clk.Cycle())
}

// Edgedetect reproduces the paper's Figure 10 demo: parallel Sobel
// edge detection with image lines distributed across the two R8
// processors, then renders input and output as ASCII art and reports
// the two-processor speedup.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/edge"
)

const width, height = 32, 16

// synthetic test card: a filled rectangle and a diagonal edge.
func testImage() edge.Image {
	img := edge.NewImage(width, height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			switch {
			case x > 4 && x < 14 && y > 3 && y < 12:
				img[y][x] = 220
			case x+y > 38:
				img[y][x] = 160
			default:
				img[y][x] = 20
			}
		}
	}
	return img
}

func render(img edge.Image) string {
	const ramp = " .:-=+*#%@"
	out := ""
	for _, row := range img {
		for _, v := range row {
			out += string(ramp[int(v)*(len(ramp)-1)/255])
		}
		out += "\n"
	}
	return out
}

func run(procs ...int) (edge.Image, uint64) {
	sys, err := core.New(core.Default())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	d := edge.NewDriver(sys, edge.Direct, width)
	if err := d.LoadKernels(procs...); err != nil {
		log.Fatal(err)
	}
	out, cycles, err := d.Process(testImage(), procs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.StopKernels(procs...); err != nil {
		log.Fatal(err)
	}
	return out, cycles
}

func main() {
	img := testImage()
	fmt.Println("input image:")
	fmt.Println(render(img))

	out1, c1 := run(1)
	out2, c2 := run(1, 2)

	fmt.Println("edge map (computed line-by-line on the R8 processors):")
	fmt.Println(render(out2))

	if !out1.Equal(out2) {
		log.Fatal("1- and 2-processor results differ")
	}
	if !out2.Equal(edge.Sobel(img)) {
		log.Fatal("hardware result differs from golden Sobel")
	}
	fmt.Println("results verified against the golden Go Sobel implementation.")
	fmt.Printf("\n1 processor:  %8d cycles\n", c1)
	fmt.Printf("2 processors: %8d cycles  (speedup %.2fx)\n", c2, float64(c1)/float64(c2))
}

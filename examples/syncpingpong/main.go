// Syncpingpong demonstrates the §2.4 synchronization primitives: the
// memory-mapped wait (ST to 0xFFFE) and notify (ST to 0xFFFD) commands
// the paper's example uses, bounced between the two processors like a
// ping-pong ball, with each side printing its half of the rally.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const rounds = 5

func main() {
	sys, err := core.New(core.Default())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}

	// P1 serves: print "ping ", notify P2, wait for P2, repeat.
	p1 := fmt.Sprintf(`
		LDI R5, %d       ; rounds
		CLR R1
		LDI R6, 0xFFFF   ; printf
		LDI R7, 0xFFFD   ; notify
		LDI R8, 0xFFFE   ; wait
loop:	LDI R2, 'p'
		ST R2, R6, R1
		LDI R2, 'i'
		ST R2, R6, R1
		LDI R2, 'n'
		ST R2, R6, R1
		LDI R2, 'g'
		ST R2, R6, R1
		LDI R2, ' '
		ST R2, R6, R1
		LDI R3, 2
		ST R3, R1, R7    ; notify processor 2
		ST R3, R1, R8    ; wait for processor 2
		DEC R5
		JMPNZ loop
		HALT`, rounds)

	// P2 returns: wait for P1, print "pong ", notify P1, repeat.
	p2 := fmt.Sprintf(`
		LDI R5, %d
		CLR R1
		LDI R6, 0xFFFF
		LDI R7, 0xFFFD
		LDI R8, 0xFFFE
		LDI R3, 1
loop:	ST R3, R1, R8    ; wait for processor 1
		LDI R2, 'p'
		ST R2, R6, R1
		LDI R2, 'o'
		ST R2, R6, R1
		LDI R2, 'n'
		ST R2, R6, R1
		LDI R2, 'g'
		ST R2, R6, R1
		LDI R2, ' '
		ST R2, R6, R1
		ST R3, R1, R7    ; notify processor 1
		DEC R5
		JMPNZ loop
		HALT`, rounds)

	if _, err := sys.LoadProgram(1, p1); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadProgram(2, p2); err != nil {
		log.Fatal(err)
	}
	// Start the receiver first, like the paper's example.
	if err := sys.Activate(2); err != nil {
		log.Fatal(err)
	}
	if err := sys.Activate(1); err != nil {
		log.Fatal(err)
	}
	start := sys.Clk.Cycle()
	if err := sys.RunUntilHalted(10_000_000, 1, 2); err != nil {
		log.Fatal(err)
	}
	elapsed := sys.Clk.Cycle() - start
	// Flush printf frames; a timeout still pumped the budget, so print
	// whatever made it out.
	_ = sys.DrainIO(200_000)

	fmt.Printf("P1> %s\n", sys.Output(1))
	fmt.Printf("P2> %s\n", sys.Output(2))
	st1, st2 := sys.Proc(1).Stats(), sys.Proc(2).Stats()
	fmt.Printf("\n%d rounds in %d cycles (%.0f cycles/round)\n", rounds, elapsed, float64(elapsed)/rounds)
	fmt.Printf("P1: %d notifies sent, %d waits blocked\n", st1.Notifies, st1.WaitsBlocked)
	fmt.Printf("P2: %d notifies sent, %d waits blocked\n", st2.Notifies, st2.WaitsBlocked)
}

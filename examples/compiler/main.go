// Compiler demonstrates the paper's future-work C compiler (§5): an
// R8C program — with functions, recursion, arrays and the printf
// intrinsic — is compiled to R8 assembly, downloaded over the serial
// link and executed on a MultiNoC processor. The program prints a
// small multiplication table and the first Fibonacci numbers, doing
// its own decimal formatting in compiled code.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rcc"
)

const source = `
// print a 16-bit value in decimal using compiled division
int printdec(int v) {
	if (v < 0) { putc('-'); v = -v; }
	if (v >= 10) printdec(v / 10);
	putc('0' + v % 10);
	return 0;
}

int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}

int main() {
	int i = 1;
	while (i <= 4) {
		int j = 1;
		while (j <= 4) {
			printdec(i * j);
			putc(' ');
			j = j + 1;
		}
		putc(10);  // newline
		i = i + 1;
	}
	putc(10);
	i = 0;
	while (i <= 10) {
		printdec(fib(i));
		putc(' ');
		i = i + 1;
	}
	putc(10);
	return fib(10);
}
`

func main() {
	fmt.Println("compiling R8C source with rcc...")
	asm, err := rcc.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d lines of R8 assembly\n", countLines(asm))

	sys, err := core.New(core.Default())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("downloading compiled program to processor 1...")
	if _, err := sys.LoadProgram(1, asm); err != nil {
		log.Fatal(err)
	}
	if err := sys.Activate(1); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunUntilHalted(50_000_000, 1); err != nil {
		log.Fatal(err)
	}
	// Flush output through the serial line; a timeout still pumped the
	// budget, so print whatever made it out.
	_ = sys.DrainIO(1_000_000)

	fmt.Println("\nP1 monitor:")
	fmt.Print(sys.Output(1))
	cpu := sys.Proc(1).CPU()
	fmt.Printf("\nmain returned %d; %d instructions, CPI %.2f\n",
		int16(cpu.Regs[3]), cpu.Retired, cpu.CPI())
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}

// Seaofprocessors scales MultiNoC the way §3 and the future-work
// section describe: the same pre-verified IP cores instantiated on a
// larger mesh — here a 4x4 Hermes NoC carrying fourteen R8 processors
// and one remote memory. Every processor sums a private slice of a
// global workload; the host collects the partial sums and reports the
// scaling curve.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const totalWork = 840 // divisible by 1,2,4,7,14

func sumProgram(count int) string {
	return fmt.Sprintf(`
	.equ N, %d
	CLR R0
	CLR R1
	LDI R2, data
	CLR R3
loop:	LD R4, R2, R3
	ADD R1, R1, R4
	INC R3
	LDI R5, N
	SUB R6, R3, R5
	JMPNZ loop
	LDI R7, 0x0100
	ST R1, R7, R0
	HALT
data:	.space %d`, count, count)
}

func run(nProcs int) uint64 {
	cfg, err := core.Scaled(4, 4, 14, 1)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	chunk := totalWork / nProcs
	for id := 1; id <= nProcs; id++ {
		prog, err := sys.LoadProgramDirect(id, sumProgram(chunk))
		if err != nil {
			log.Fatal(err)
		}
		base := prog.Symbols["data"]
		for i := 0; i < chunk; i++ {
			sys.Proc(id).Banks().Write(base+uint16(i), uint16(id))
		}
	}
	ids := make([]int, nProcs)
	start := sys.Clk.Cycle()
	for id := 1; id <= nProcs; id++ {
		if err := sys.Activate(id); err != nil {
			log.Fatal(err)
		}
		ids[id-1] = id
	}
	if err := sys.RunUntilHalted(50_000_000, ids...); err != nil {
		log.Fatal(err)
	}
	elapsed := sys.Clk.Cycle() - start
	for id := 1; id <= nProcs; id++ {
		if got := sys.Proc(id).Banks().Read(0x0100); got != uint16(chunk*id) {
			log.Fatalf("P%d sum = %d, want %d", id, got, chunk*id)
		}
	}
	return elapsed
}

func main() {
	fmt.Println("4x4 Hermes mesh: serial IP + 14 R8 processors + remote memory")
	fmt.Printf("fixed total work: summing %d words, split across the processors\n\n", totalWork)
	fmt.Printf("%10s %12s %9s %11s\n", "processors", "cycles", "speedup", "efficiency")
	var base uint64
	for _, n := range []int{1, 2, 4, 7, 14} {
		c := run(n)
		if n == 1 {
			base = c
		}
		sp := float64(base) / float64(c)
		fmt.Printf("%10d %12d %8.2fx %10.0f%%\n", n, c, sp, 100*sp/float64(n))
	}
	fmt.Println("\nall partial sums verified; activation is serialized over RS-232, which")
	fmt.Println("bounds efficiency at high processor counts (the paper's host-interface limit).")
}

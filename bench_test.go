// Benchmarks regenerating every experiment of the paper (DESIGN.md §5):
// one Benchmark per table/figure/claim plus the ablations. Custom
// metrics report the figures of merit (simulated cycles, Gbit/s,
// speedups) alongside the usual ns/op.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/floorplan"
	"repro/internal/noc"
	"repro/internal/r8"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// BenchmarkE1LatencyFormula times a single-packet latency probe and
// reports the measured network latency next to the paper's model.
func BenchmarkE1LatencyFormula(b *testing.B) {
	b.ReportAllocs()
	cfg := noc.Defaults(8, 8)
	src, dst := noc.Addr{X: 0, Y: 0}, noc.Addr{X: 7, Y: 0}
	var last uint64
	for i := 0; i < b.N; i++ {
		lat, err := traffic.ProbeLatency(cfg, src, dst, 16)
		if err != nil {
			b.Fatal(err)
		}
		last = lat
	}
	b.ReportMetric(float64(last), "cycles")
	b.ReportMetric(float64(noc.FormulaLatency(cfg, 8, 18)), "formula-cycles")
}

// BenchmarkE2PeakThroughput drives the five-connection router peak.
func BenchmarkE2PeakThroughput(b *testing.B) {
	b.ReportAllocs()
	var res traffic.PeakResult
	for i := 0; i < b.N; i++ {
		r, err := traffic.PeakThroughput(noc.Defaults(3, 3), 20)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.MeasuredGbps, "Gbit/s")
	b.ReportMetric(100*res.Efficiency, "%-of-peak")
}

// BenchmarkE3BufferDepth sweeps input buffer depth under saturation.
func BenchmarkE3BufferDepth(b *testing.B) {
	b.ReportAllocs()
	for _, depth := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(4, 4)
			cfg.BufDepth = depth
			var delivered float64
			for i := 0; i < b.N; i++ {
				res, err := traffic.Run(cfg, traffic.Config{
					Rate: 0.40, PayloadFlits: 8, Seed: 11,
					Warmup: 2000, Measure: 6000, Drain: 20000,
				})
				if err != nil {
					b.Fatal(err)
				}
				delivered = res.Delivered
			}
			b.ReportMetric(delivered, "flits/cycle/node")
		})
	}
}

// BenchmarkE6Floorplan anneals the Figure 7 instance.
func BenchmarkE6Floorplan(b *testing.B) {
	b.ReportAllocs()
	p := floorplan.MultiNoC()
	var cost float64
	for i := 0; i < b.N; i++ {
		res, err := p.Anneal(42, 20000)
		if err != nil {
			b.Fatal(err)
		}
		cost = res.Cost
	}
	b.ReportMetric(cost, "hpwl")
}

// BenchmarkE7SerialLink measures a host write+read round trip over the
// bit-level RS-232 model.
func BenchmarkE7SerialLink(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		sys, err := core.New(core.Default())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Boot(); err != nil {
			b.Fatal(err)
		}
		start := sys.Clk.Cycle()
		memAddr := noc.Addr{X: 1, Y: 1}
		if err := sys.Host.WriteMemory(memAddr, 0, make([]uint16, 16)); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ReadMemory(memAddr, 0, 16); err != nil {
			b.Fatal(err)
		}
		cycles = sys.Clk.Cycle() - start
	}
	b.ReportMetric(float64(cycles), "cycles/roundtrip")
}

// BenchmarkE8EdgeDetect runs the Figure 10 application with one and
// two processors.
func BenchmarkE8EdgeDetect(b *testing.B) {
	b.ReportAllocs()
	img := edge.NewImage(16, 10)
	r := sim.NewRand(5)
	for y := range img {
		for x := range img[y] {
			img[y][x] = uint8(r.Intn(256))
		}
	}
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("%dproc", n), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				sys, err := core.New(core.Default())
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Boot(); err != nil {
					b.Fatal(err)
				}
				d := edge.NewDriver(sys, edge.Direct, 16)
				procs := []int{1, 2}[:n]
				if err := d.LoadKernels(procs...); err != nil {
					b.Fatal(err)
				}
				_, c, err := d.Process(img, procs...)
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles), "cycles/image")
		})
	}
}

// BenchmarkE9WaitNotify measures the synchronization round trip.
func BenchmarkE9WaitNotify(b *testing.B) {
	b.ReportAllocs()
	const rounds = 20
	var perRound float64
	for i := 0; i < b.N; i++ {
		sys, err := core.New(core.Default())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Boot(); err != nil {
			b.Fatal(err)
		}
		p1 := fmt.Sprintf(`
			LDI R5, %d
			CLR R1
		loop:	LDI R2, 0xFFFD
			LDI R3, 2
			ST R3, R1, R2
			LDI R2, 0xFFFE
			ST R3, R1, R2
			DEC R5
			JMPNZ loop
			HALT`, rounds)
		p2 := fmt.Sprintf(`
			LDI R5, %d
			CLR R1
			LDI R3, 1
		loop:	LDI R2, 0xFFFE
			ST R3, R1, R2
			LDI R2, 0xFFFD
			ST R3, R1, R2
			DEC R5
			JMPNZ loop
			HALT`, rounds)
		if _, err := sys.LoadProgramDirect(1, p1); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.LoadProgramDirect(2, p2); err != nil {
			b.Fatal(err)
		}
		if err := sys.Activate(2); err != nil {
			b.Fatal(err)
		}
		if err := sys.Activate(1); err != nil {
			b.Fatal(err)
		}
		start := sys.Clk.Cycle()
		if err := sys.RunUntilHalted(10_000_000, 1, 2); err != nil {
			b.Fatal(err)
		}
		perRound = float64(sys.Clk.Cycle()-start) / rounds
	}
	b.ReportMetric(perRound, "cycles/round")
}

// BenchmarkE11CPI measures simulated instruction throughput of the
// cycle-accurate core and reports its CPI.
func BenchmarkE11CPI(b *testing.B) {
	b.ReportAllocs()
	bus := &benchRAM{}
	add, _ := r8.Inst{Op: r8.ADD, Rt: 1, Rs1: 2, Rs2: 3}.Encode()
	jmp, _ := r8.Inst{Op: r8.JMP, Disp: -128}.Encode()
	for i := 0; i < 127; i++ {
		bus.m[i] = add
	}
	bus.m[127] = jmp
	cpu := r8.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Step(bus)
	}
	b.ReportMetric(cpu.CPI(), "CPI")
}

type benchRAM struct{ m [4096]uint16 }

func (r *benchRAM) Read(a uint16) (uint16, bool) { return r.m[a%4096], true }
func (r *benchRAM) Write(a, v uint16) bool       { r.m[a%4096] = v; return true }

// BenchmarkE12SeaOfProcessors scales the parallel reduction.
func BenchmarkE12SeaOfProcessors(b *testing.B) {
	b.ReportAllocs()
	const totalWork = 840
	for _, n := range []int{1, 2, 4, 7, 14} {
		b.Run(fmt.Sprintf("%dprocs", n), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg, err := core.Scaled(4, 4, 14, 1)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Boot(); err != nil {
					b.Fatal(err)
				}
				chunk := totalWork / n
				src := fmt.Sprintf(`
					.equ N, %d
					CLR R0
					CLR R1
					LDI R2, data
					CLR R3
				loop:	LD R4, R2, R3
					ADD R1, R1, R4
					INC R3
					LDI R5, N
					SUB R6, R3, R5
					JMPNZ loop
					LDI R7, 0x0100
					ST R1, R7, R0
					HALT
				data:	.space %d`, chunk, chunk)
				ids := make([]int, n)
				for id := 1; id <= n; id++ {
					if _, err := sys.LoadProgramDirect(id, src); err != nil {
						b.Fatal(err)
					}
					ids[id-1] = id
				}
				start := sys.Clk.Cycle()
				for _, id := range ids {
					if err := sys.Activate(id); err != nil {
						b.Fatal(err)
					}
				}
				if err := sys.RunUntilHalted(50_000_000, ids...); err != nil {
					b.Fatal(err)
				}
				cycles = sys.Clk.Cycle() - start
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblKernelSchedule compares the three kernel configurations
// on a full 16x16-mesh traffic experiment (warmup + measure + drain at
// 0.2% injection — the regime the big-mesh experiments spend most of
// their time in): activity scheduling with time warping (the default),
// activity scheduling stepping every cycle, and the dense reference.
// The reported metric is simulated cycles per wall-clock second; all
// three produce bit-identical Results (TestSparseKernelMatchesDense,
// TestTimeWarpMatchesNoWarp).
func BenchmarkAblKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	const simCycles = 500 + 3000 // warmup + measure (drain adds a tail)
	for _, tc := range []struct {
		name          string
		dense, noWarp bool
	}{
		{"activity", false, false},
		{"activity-nowarp", false, true},
		{"dense", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(16, 16)
			for i := 0; i < b.N; i++ {
				if _, err := traffic.Run(cfg, traffic.Config{
					Rate: 0.002, PayloadFlits: 8, Seed: 3,
					Warmup: 500, Measure: 3000, Drain: 20000,
					DenseKernel: tc.dense, NoTimeWarp: tc.noWarp,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
		})
	}
}

// BenchmarkAblFlitStreaming tracks the event-per-flit streaming fast
// path against the stepped 2-cycle handshake it replaces, on the regime
// the refactor targets: a saturated 16x16 mesh moving long wormholes,
// where nearly every link is occupied by a steady-state connection.
// Both paths produce bit-identical Results
// (TestStreamingMatchesSteppedAcrossKernels); this benchmark pins their
// wall-clock relation and the saturated delivery rate (flits/sec is the
// wall-clock rate of flits delivered inside the measurement window).
// With the paper's 2-deep buffers the two paths are within a few
// percent of each other at saturation — the streaming win here is the
// allocation-free wire path (see BenchmarkStreamingSteadyState), not
// yet throughput; ROADMAP.md tracks multi-flit batch windows as the
// follow-on that needs deeper buffers to pay off.
func BenchmarkAblFlitStreaming(b *testing.B) {
	b.ReportAllocs()
	const (
		nodes     = 16 * 16
		warmup    = 500
		measure   = 2000
		simCycles = warmup + measure // drain adds a tail
	)
	for _, tc := range []struct {
		name    string
		stepped bool
	}{
		{"streaming", false},
		{"stepped", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(16, 16)
			var res traffic.Result
			for i := 0; i < b.N; i++ {
				r, err := traffic.Run(cfg, traffic.Config{
					Rate: 0.40, PayloadFlits: 32, Seed: 3,
					Warmup: warmup, Measure: measure, Drain: 30000,
					NoFlitStreaming: tc.stepped,
				})
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
			b.ReportMetric(res.Delivered*nodes*measure*float64(b.N)/b.Elapsed().Seconds(), "flits/sec")
		})
	}
}

// BenchmarkKernelParallel measures the sharded parallel kernel's
// scaling curve on the BenchmarkAblKernelSchedule workload (16x16
// uniform traffic at 0.2% injection): column-strip partitions of 1, 2,
// 4 and 8 domains, each executed serially (lockstep, the bit-exact
// reference) and in parallel (one goroutine per domain under the
// conservative horizon protocol). Every variant produces the identical
// Result (TestShardedMatchesUnsharded, TestParallelMatchesSerial); the
// metric is simulated cycles per wall-clock second. Parallel speedup
// over serial requires hardware cores — on a single-core host the
// horizon protocol's overhead is all that shows.
func BenchmarkKernelParallel(b *testing.B) {
	b.ReportAllocs()
	const simCycles = 500 + 3000 // warmup + measure (drain adds a tail)
	for _, domains := range []int{1, 2, 4, 8} {
		for _, parallel := range []bool{false, true} {
			mode := "serial"
			if parallel {
				mode = "parallel"
			}
			b.Run(fmt.Sprintf("domains%d/%s", domains, mode), func(b *testing.B) {
				b.ReportAllocs()
				cfg := noc.Defaults(16, 16)
				for i := 0; i < b.N; i++ {
					if _, err := traffic.Run(cfg, traffic.Config{
						Rate: 0.002, PayloadFlits: 8, Seed: 3,
						Warmup: 500, Measure: 3000, Drain: 20000,
						Domains: domains, Parallel: parallel,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
			})
		}
	}
}

// BenchmarkAblTimeWarp measures the time-warp kernel on the workload it
// targets: the E7 host round trip (auto-baud boot, a 16-word memory
// write and a 16-word read back over the bit-level RS-232 path), where
// nearly every simulated cycle is a dead cycle inside a UART bit. Two
// serial rates are swept: div16 is the simulation-compressed default,
// div434 is 115200 baud at the paper's 50 MHz clock — the rate real
// hardware would run, where the round trip is utterly serial-dominated.
// The stepped kernel's cost scales with the divisor; the warped
// kernel's cost is divisor-independent (the same bit edges happen, only
// further apart), which is exactly the event-proportionality the kernel
// is for. Both variants simulate the identical cycle count
// (TestTimeWarpBootTranscriptIdentical), so the wall-clock ratio per
// divisor is the speedup from skipping dead cycles.
func BenchmarkAblTimeWarp(b *testing.B) {
	b.ReportAllocs()
	for _, div := range []int{16, 434} {
		for _, tc := range []struct {
			name string
			warp bool
		}{{"warp", true}, {"nowarp", false}} {
			b.Run(fmt.Sprintf("div%d/%s", div, tc.name), func(b *testing.B) {
				b.ReportAllocs()
				var cycles uint64
				for i := 0; i < b.N; i++ {
					// System construction is not part of the round trip
					// under measurement.
					b.StopTimer()
					cfg := core.Default()
					cfg.SerialDiv = div
					sys, err := core.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					sys.Clk.SetTimeWarp(tc.warp)
					b.StartTimer()
					if err := sys.Boot(); err != nil {
						b.Fatal(err)
					}
					memAddr := noc.Addr{X: 1, Y: 1}
					if err := sys.Host.WriteMemory(memAddr, 0, make([]uint16, 16)); err != nil {
						b.Fatal(err)
					}
					if _, err := sys.ReadMemory(memAddr, 0, 16); err != nil {
						b.Fatal(err)
					}
					cycles = sys.Clk.Cycle()
				}
				b.ReportMetric(float64(cycles), "cycles/roundtrip")
				b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
			})
		}
	}
}

// BenchmarkAblRouting compares routing algorithms under transpose
// traffic.
func BenchmarkAblRouting(b *testing.B) {
	b.ReportAllocs()
	algos := []struct {
		name string
		fn   noc.RoutingFunc
	}{{"XY", noc.RouteXY}, {"YX", noc.RouteYX}, {"WestFirst", noc.RouteWestFirst}}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(4, 4)
			cfg.Routing = a.fn
			var lat float64
			for i := 0; i < b.N; i++ {
				res, err := traffic.Run(cfg, traffic.Config{
					Pattern: traffic.Transpose, Rate: 0.15, PayloadFlits: 8, Seed: 5,
					Warmup: 2000, Measure: 6000, Drain: 20000,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = res.Latency.MeanCycles
			}
			b.ReportMetric(lat, "cycles-mean-latency")
		})
	}
}

// BenchmarkAblFlitWidth scales the flit width.
func BenchmarkAblFlitWidth(b *testing.B) {
	b.ReportAllocs()
	for _, bits := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("%dbit", bits), func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(3, 3)
			cfg.FlitBits = bits
			var gbps float64
			for i := 0; i < b.N; i++ {
				res, err := traffic.PeakThroughput(cfg, 10)
				if err != nil {
					b.Fatal(err)
				}
				gbps = res.MeasuredGbps
			}
			b.ReportMetric(gbps, "Gbit/s")
		})
	}
}

// BenchmarkAblRouteCycles sweeps the per-hop routing time.
func BenchmarkAblRouteCycles(b *testing.B) {
	b.ReportAllocs()
	for _, rc := range []int{6, 14, 28} {
		b.Run(fmt.Sprintf("rc%d", rc), func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(8, 1)
			cfg.RouteCycles = rc
			var lat uint64
			for i := 0; i < b.N; i++ {
				l, err := traffic.ProbeLatency(cfg, noc.Addr{X: 0, Y: 0}, noc.Addr{X: 7, Y: 0}, 16)
				if err != nil {
					b.Fatal(err)
				}
				lat = l
			}
			b.ReportMetric(float64(lat), "cycles")
		})
	}
}

// BenchmarkAblBaud sweeps the serial divisor for a program download.
func BenchmarkAblBaud(b *testing.B) {
	b.ReportAllocs()
	for _, div := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("div%d", div), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := core.Default()
				cfg.SerialDiv = div
				sys, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Boot(); err != nil {
					b.Fatal(err)
				}
				start := sys.Clk.Cycle()
				if err := sys.Host.WriteMemory(noc.Addr{X: 0, Y: 1}, 0, make([]uint16, 64)); err != nil {
					b.Fatal(err)
				}
				cycles = sys.Clk.Cycle() - start
			}
			b.ReportMetric(float64(cycles), "cycles/64words")
		})
	}
}

// BenchmarkAblMulticast compares the two multicast delivery mechanisms
// on an 8x8 mesh with 8-destination groups: path-based forwarding (one
// wormhole absorbed and re-injected along a canonical column-snake
// visiting every member, cf. Tiwari's path multicast) against unicast
// replication (one independent wormhole per destination — the oracle
// the differentials check against). Both deliver payload-identical
// copies (TestMulticastPathMatchesUnicastOracle); the benchmark pins
// the link-traffic saving of the path scheme as wall-clock cost and
// delivered copies per second.
func BenchmarkAblMulticast(b *testing.B) {
	b.ReportAllocs()
	const simCycles = 500 + 3000 // warmup + measure (drain adds a tail)
	group := []noc.Addr{
		{X: 0, Y: 0}, {X: 7, Y: 0}, {X: 3, Y: 2}, {X: 5, Y: 3},
		{X: 1, Y: 5}, {X: 6, Y: 5}, {X: 0, Y: 7}, {X: 7, Y: 7},
	}
	for _, tc := range []struct {
		name    string
		unicast bool
	}{
		{"path", false},
		{"unicast", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(8, 8)
			var copies uint64
			for i := 0; i < b.N; i++ {
				var net *noc.Network
				if _, err := traffic.Run(cfg, traffic.Config{
					Spec: traffic.PatternSpec{
						Name: "multicast", Group: group, MulticastUnicast: tc.unicast,
					},
					Rate: 0.01, PayloadFlits: 8, Seed: 3,
					Warmup: 500, Measure: 3000, Drain: 20000,
					OnNetwork: func(n *noc.Network) { net = n },
				}); err != nil {
					b.Fatal(err)
				}
				copies = net.MulticastStats().Copies
			}
			b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
			b.ReportMetric(float64(copies)*float64(b.N)/b.Elapsed().Seconds(), "copies/sec")
		})
	}
}

// BenchmarkPatternSaturation drives each synthetic pattern of the
// traffic library at a near-saturation offered load on an 8x8 mesh.
// The accepted-load metric is the saturation figure each pattern
// converges to (adversarial permutations saturate far below uniform);
// simcycles/sec tracks the kernel cost of the pattern's event mix, so
// a scheduling regression that only bites one destination distribution
// shows up here rather than in the uniform-only ablations.
func BenchmarkPatternSaturation(b *testing.B) {
	b.ReportAllocs()
	const simCycles = 500 + 2000 // warmup + measure (drain adds a tail)
	specs := []traffic.PatternSpec{
		{Name: "uniform"},
		{Name: "transpose"},
		{Name: "bitcomp"},
		{Name: "bitrev"},
		{Name: "hotspot", Hotspots: []traffic.HotspotSpec{
			{X: 3, Y: 3, Weight: 0.2}, {X: 4, Y: 4, Weight: 0.2}}},
		{Name: "bursty", Burst: &traffic.BurstSpec{Len: 8, Peak: 0.45}},
	}
	for _, spec := range specs {
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := noc.Defaults(8, 8)
			var accepted float64
			for i := 0; i < b.N; i++ {
				res, err := traffic.Run(cfg, traffic.Config{
					Spec: spec, Rate: 0.30, PayloadFlits: 8, Seed: 3,
					Warmup: 500, Measure: 2000, Drain: 30000,
				})
				if err != nil {
					b.Fatal(err)
				}
				accepted = res.Accepted
			}
			b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
			b.ReportMetric(accepted, "accepted-flits/cycle")
		})
	}
}

package procip

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/r8"
	"repro/internal/sim"
)

// rig builds a 2x2 net with one Processor IP at 01 and a raw endpoint
// at 00 playing host/peer.
func rig(t *testing.T, cfg Config) (*sim.Clock, *noc.Network, *IP, *noc.Endpoint) {
	t.Helper()
	clk := sim.NewClock()
	net, err := noc.New(clk, noc.Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr == (noc.Addr{}) {
		cfg.Addr = noc.Addr{X: 0, Y: 1}
	}
	if cfg.Host == (noc.Addr{}) {
		cfg.Host = noc.Addr{X: 0, Y: 0}
	}
	if cfg.ID == 0 {
		cfg.ID = 1
	}
	ip, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	host, err := net.NewEndpoint(noc.Addr{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	return clk, net, ip, host
}

// loadWords assembles raw instructions into the local banks.
func loadInsts(t *testing.T, ip *IP, insts ...r8.Inst) {
	t.Helper()
	for i, inst := range insts {
		w, err := inst.Encode()
		if err != nil {
			t.Fatal(err)
		}
		ip.Banks().Write(uint16(i), w)
	}
}

func activate(t *testing.T, clk *sim.Clock, host *noc.Endpoint, tgt noc.Addr) {
	t.Helper()
	if _, err := host.SendMessage(tgt, &noc.Message{Svc: noc.SvcActivate}); err != nil {
		t.Fatal(err)
	}
}

func TestInactiveUntilActivate(t *testing.T) {
	clk, _, ip, host := rig(t, Config{})
	loadInsts(t, ip, r8.Inst{Op: r8.HALT})
	clk.Run(500)
	if ip.Active() || ip.Halted() {
		t.Fatal("processor ran before activation")
	}
	activate(t, clk, host, ip.Addr())
	if err := clk.RunUntil(ip.Halted, 10000); err != nil {
		t.Fatal(err)
	}
	if ip.Stats().Activations != 1 {
		t.Errorf("activations = %d", ip.Stats().Activations)
	}
}

func TestLocalMemoryExecution(t *testing.T) {
	clk, _, ip, host := rig(t, Config{})
	// R1=0x30, R2=0x0100, store, halt.
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDL, Rt: 1, Imm: 0x30},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0x00},
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0x01},
		r8.Inst{Op: r8.ST, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	if err := clk.RunUntil(ip.Halted, 10000); err != nil {
		t.Fatal(err)
	}
	if got := ip.Banks().Read(0x0100); got != 0x30 {
		t.Errorf("mem[0x100] = %#x", got)
	}
}

func TestNoCServesLocalMemoryWhileRunning(t *testing.T) {
	// The engine must serve remote reads of the local memory while the
	// CPU spins (processor-priority arbitration, §2.3).
	clk, _, ip, host := rig(t, Config{})
	ip.Banks().Write(0x0200, 0xCAFE)
	// Infinite loop touching local memory every iteration.
	loadInsts(t, ip,
		r8.Inst{Op: r8.LD, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.JMP, Disp: -2},
	)
	activate(t, clk, host, ip.Addr())
	clk.Run(100)
	if _, err := host.SendMessage(ip.Addr(), &noc.Message{Svc: noc.SvcReadMem, Addr: 0x0200, Count: 1}); err != nil {
		t.Fatal(err)
	}
	var got *noc.Message
	err := clk.RunUntil(func() bool {
		m, ok, err := host.RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		got = m
		return ok
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Svc != noc.SvcReadReturn || got.Words[0] != 0xCAFE {
		t.Errorf("reply %+v", got)
	}
	if ip.Halted() {
		t.Error("CPU stopped unexpectedly")
	}
}

func TestUnmappedAccessCounted(t *testing.T) {
	clk, _, ip, host := rig(t, Config{})
	// Load from 0x5000: no window maps it.
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0x50},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0x00},
		r8.Inst{Op: r8.LD, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	if err := clk.RunUntil(ip.Halted, 10000); err != nil {
		t.Fatal(err)
	}
	if ip.Stats().UnmappedReads == 0 {
		t.Error("unmapped access not counted")
	}
}

func TestRemoteWindowTranslation(t *testing.T) {
	// A window [1024,2048) -> 00 must emit a read with the offset
	// subtracted.
	clk, _, ip, host := rig(t, Config{
		Windows: []Window{{Lo: 1024, Hi: 2048, Target: noc.Addr{X: 0, Y: 0}}},
	})
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0x04}, // R2 = 0x0400 + 5
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0x05},
		r8.Inst{Op: r8.LD, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	var req *noc.Message
	err := clk.RunUntil(func() bool {
		m, ok, err := host.RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		if ok && m.Svc == noc.SvcReadMem {
			req = m
			return true
		}
		return false
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if req.Addr != 5 || req.Count != 1 {
		t.Errorf("request %+v, want addr 5 count 1", req)
	}
	if ip.Halted() {
		t.Fatal("CPU did not stall on the remote read")
	}
	// Answer it and let the CPU finish.
	if _, err := host.SendMessage(ip.Addr(), &noc.Message{Svc: noc.SvcReadReturn, Addr: 5, Words: []uint16{0x77}}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(ip.Halted, 100000); err != nil {
		t.Fatal(err)
	}
	if got := ip.CPU().Regs[1]; got != 0x77 {
		t.Errorf("loaded %#x", got)
	}
}

func TestScanfStallsUntilReturn(t *testing.T) {
	clk, _, ip, host := rig(t, Config{})
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LD, Rt: 1, Rs1: 2, Rs2: 3}, // scanf
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	err := clk.RunUntil(func() bool {
		m, ok, err := host.RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		return ok && m.Svc == noc.SvcScanf
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	clk.Run(1000)
	if ip.Halted() {
		t.Fatal("CPU ran past a pending scanf")
	}
	if _, err := host.SendMessage(ip.Addr(), &noc.Message{Svc: noc.SvcScanfReturn, Words: []uint16{1234}}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(ip.Halted, 100000); err != nil {
		t.Fatal(err)
	}
	if ip.CPU().Regs[1] != 1234 {
		t.Errorf("scanf value = %d", ip.CPU().Regs[1])
	}
}

func TestPrintfIsPosted(t *testing.T) {
	clk, _, ip, host := rig(t, Config{})
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LDL, Rt: 1, Imm: 'X'},
		r8.Inst{Op: r8.ST, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	var got *noc.Message
	err := clk.RunUntil(func() bool {
		m, ok, err := host.RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		if ok && m.Svc == noc.SvcPrintf {
			got = m
			return true
		}
		return false
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bytes) != "X" {
		t.Errorf("printf bytes %q", got.Bytes)
	}
	if !ip.Halted() {
		clk.Run(1000)
	}
	if !ip.Halted() {
		t.Error("printf blocked the CPU")
	}
}

func TestNotifyToUnknownProcessorIsError(t *testing.T) {
	clk, _, ip, host := rig(t, Config{ProcByID: map[uint16]noc.Addr{}})
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0xFD}, // notify address
		r8.Inst{Op: r8.LDL, Rt: 1, Imm: 9},    // unknown processor 9
		r8.Inst{Op: r8.ST, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	if err := clk.RunUntil(ip.Halted, 100000); err != nil {
		t.Fatal(err)
	}
	if ip.Stats().PacketErrors == 0 {
		t.Error("unknown notify target not flagged")
	}
}

func TestHostDrivenNotifyWakesWait(t *testing.T) {
	// The peer table maps processor 5 to the host endpoint, so the
	// "host" can model the second processor of the paper's example.
	clk, _, ip, host := rig(t, Config{
		ProcByID: map[uint16]noc.Addr{5: {X: 0, Y: 0}},
	})
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0xFE}, // wait address
		r8.Inst{Op: r8.LDL, Rt: 1, Imm: 5},    // wait for processor 5
		r8.Inst{Op: r8.ST, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	if err := clk.RunUntil(ip.Waiting, 100000); err != nil {
		t.Fatal(err)
	}
	// Give the registration packet its NoC transit time.
	clk.Run(200)
	// Wait registration packet should have arrived at the notifier.
	var reg *noc.Message
	for {
		m, ok, err := host.RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if m.Svc == noc.SvcWait {
			reg = m
		}
	}
	if reg == nil || reg.Proc != 1 {
		t.Fatalf("wait registration = %+v", reg)
	}
	if _, err := host.SendMessage(ip.Addr(), &noc.Message{Svc: noc.SvcNotify, Proc: 5}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(ip.Halted, 100000); err != nil {
		t.Fatal(err)
	}
	if ip.Waiting() {
		t.Error("still waiting after notify")
	}
}

func TestNotifyFromWrongSourceDoesNotWake(t *testing.T) {
	clk, _, ip, host := rig(t, Config{
		ProcByID: map[uint16]noc.Addr{5: {X: 0, Y: 0}, 6: {X: 1, Y: 1}},
	})
	loadInsts(t, ip,
		r8.Inst{Op: r8.LDH, Rt: 2, Imm: 0xFF},
		r8.Inst{Op: r8.LDL, Rt: 2, Imm: 0xFE},
		r8.Inst{Op: r8.LDL, Rt: 1, Imm: 5}, // waits for processor 5
		r8.Inst{Op: r8.ST, Rt: 1, Rs1: 2, Rs2: 3},
		r8.Inst{Op: r8.HALT},
	)
	activate(t, clk, host, ip.Addr())
	if err := clk.RunUntil(ip.Waiting, 100000); err != nil {
		t.Fatal(err)
	}
	// A notify from processor 6 must not wake a wait on 5.
	if _, err := host.SendMessage(ip.Addr(), &noc.Message{Svc: noc.SvcNotify, Proc: 6}); err != nil {
		t.Fatal(err)
	}
	clk.Run(5000)
	if ip.Halted() {
		t.Fatal("woken by the wrong notifier")
	}
	// The right one wakes it; the queued notify from 6 stays pending.
	if _, err := host.SendMessage(ip.Addr(), &noc.Message{Svc: noc.SvcNotify, Proc: 5}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(ip.Halted, 100000); err != nil {
		t.Fatal(err)
	}
}

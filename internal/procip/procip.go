// Package procip implements the MultiNoC Processor IP core (§2.4): an
// R8 soft core, its local Memory IP acting as unified cache, and the
// control logic that interfaces both to the Hermes NoC.
//
// The control logic implements the paper's four load-store access
// modes: (i) the local memory; (ii) a remote memory; (iii) I/O devices
// (printf/scanf at 0xFFFF); (iv) other processors, for synchronization
// (wait at 0xFFFE, notify at 0xFFFD). Remote accesses stall the R8 via
// the waitR8 mechanism — here the Bus returning "not ready" — until the
// NoC transaction completes.
package procip

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/r8"
)

// The memory-mapped control addresses of §2.4.
const (
	IOAddr     = 0xFFFF // ST = printf, LD = scanf
	WaitAddr   = 0xFFFE // ST n = block until notified by processor n
	NotifyAddr = 0xFFFD // ST n = wake processor n
)

// Window maps a local address range onto another IP's memory (Figure
// 6). Addresses in [Lo, Hi) are sent to Target with offset addr-Lo.
type Window struct {
	Lo, Hi uint16
	Target noc.Addr
}

// Config assembles one Processor IP.
type Config struct {
	// Addr is the mesh address of the router this IP sits on.
	Addr noc.Addr
	// ID is the processor number used by wait/notify (1-based in the
	// paper's example).
	ID uint16
	// Host is the Serial IP's address, the destination of printf/scanf.
	Host noc.Addr
	// Windows are the remote address ranges; MultiNoC's are
	// [1024,2048) -> other processor and [2048,3072) -> remote memory.
	Windows []Window
	// ProcByID routes notify/wait packets to other processors.
	ProcByID map[uint16]noc.Addr
	// LocalWords is the local memory capacity (1024 in MultiNoC).
	LocalWords int
}

// remote transaction states.
const (
	rIdle = iota
	rWaitRead
	rReadDone
	rWaitScanf
	rScanfDone
)

// Stats counts the control logic's observable events.
type Stats struct {
	RemoteReads   uint64
	RemoteWrites  uint64
	Printfs       uint64
	Scanfs        uint64
	Waits         uint64
	WaitsBlocked  uint64
	Notifies      uint64
	NotifiesRecv  uint64
	WaitRegsRecv  uint64
	UnmappedReads uint64
	PacketErrors  uint64
	Activations   uint64
}

// IP is the Processor IP component.
type IP struct {
	cfg   Config
	cpu   *r8.CPU
	banks *mem.Banks
	eng   *mem.Engine
	ep    *noc.Endpoint

	active bool

	// remote/IO transaction state (the waitR8 stall).
	rstate  int
	rData   uint16
	sentReg bool

	waiting         bool
	waitFor         uint16
	pendingNotifies map[uint16]int

	// per-cycle bank arbitration flag (processor priority, §2.3).
	banksUsed bool

	stats Stats
}

// New creates the Processor IP on the network and registers it with the
// network's clock. The processor stays inactive until an "activate
// processor" packet arrives.
func New(net *noc.Network, cfg Config) (*IP, error) {
	if cfg.LocalWords <= 0 {
		cfg.LocalWords = 1024
	}
	ep, err := net.NewEndpointFor(net.Clock(), cfg.Addr)
	if err != nil {
		return nil, err
	}
	banks := mem.NewBanks(cfg.LocalWords)
	ip := &IP{
		cfg:             cfg,
		cpu:             r8.New(),
		banks:           banks,
		ep:              ep,
		pendingNotifies: make(map[uint16]int),
	}
	ip.eng = mem.NewEngine(banks, func(dst noc.Addr, m *noc.Message) error {
		_, err := ep.SendMessage(dst, m)
		return err
	})
	ep.SetOwner(ip)
	net.Clock().Register(ip)
	return ip, nil
}

// CPU exposes the core for inspection.
func (ip *IP) CPU() *r8.CPU { return ip.cpu }

// Banks exposes the local memory.
func (ip *IP) Banks() *mem.Banks { return ip.banks }

// Stats returns a snapshot of the control-logic counters.
func (ip *IP) Stats() Stats { return ip.stats }

// Active reports whether the processor has been activated.
func (ip *IP) Active() bool { return ip.active }

// Halted reports whether the core has executed HALT.
func (ip *IP) Halted() bool { return ip.cpu.Halted() }

// Waiting reports whether the core is blocked in a wait command.
func (ip *IP) Waiting() bool { return ip.waiting }

// Addr returns the IP's mesh address.
func (ip *IP) Addr() noc.Addr { return ip.cfg.Addr }

// ID returns the processor number.
func (ip *IP) ID() uint16 { return ip.cfg.ID }

// Name implements sim.Component.
func (ip *IP) Name() string { return fmt.Sprintf("procip%s", ip.cfg.Addr) }

// Eval implements sim.Component: dispatch incoming packets, give the
// R8 its cycle, then let the memory engine use whatever the processor
// left free.
func (ip *IP) Eval() {
	ip.dispatch()
	ip.banksUsed = false
	if ip.active && !ip.cpu.Halted() {
		ip.cpu.Step(ip)
	}
	ip.eng.Tick(!ip.banksUsed, ip.rstate == rIdle)
}

// Commit implements sim.Component.
func (ip *IP) Commit() {}

// Idle implements sim.Idler: a Processor IP sleeps while not yet
// activated or after HALT, provided its memory engine is drained and no
// packet awaits dispatch. The endpoint wakes it (via SetOwner) when a
// packet — activate, read, write, notify — arrives. A *running* core is
// never idle, even when stalled on a remote access or a wait command:
// the R8 gets its cycle every cycle, keeping CPI accounting and the
// waitR8 retry timing identical to the dense kernel.
func (ip *IP) Idle() bool {
	return (!ip.active || ip.cpu.Halted()) && !ip.eng.Busy() && ip.ep.Pending() == 0
}

func (ip *IP) dispatch() {
	for {
		m, ok, err := ip.ep.RecvMessage()
		if !ok {
			return
		}
		if err != nil {
			ip.stats.PacketErrors++
			continue
		}
		switch m.Svc {
		case noc.SvcReadMem, noc.SvcWriteMem:
			ip.eng.Deliver(m)
		case noc.SvcActivate:
			ip.stats.Activations++
			if !ip.active || ip.cpu.Halted() {
				ip.cpu.Reset()
				ip.active = true
			}
		case noc.SvcReadReturn:
			if ip.rstate == rWaitRead && len(m.Words) > 0 {
				ip.rData = m.Words[0]
				ip.rstate = rReadDone
			} else {
				ip.stats.PacketErrors++
			}
		case noc.SvcScanfReturn:
			if ip.rstate == rWaitScanf && len(m.Words) == 1 {
				ip.rData = m.Words[0]
				ip.rstate = rScanfDone
			} else {
				ip.stats.PacketErrors++
			}
		case noc.SvcNotify:
			ip.stats.NotifiesRecv++
			ip.pendingNotifies[m.Proc]++
		case noc.SvcWait:
			// Registration of a waiter (DESIGN.md §4.2); wake-up
			// correctness rides on notify, so this is bookkeeping.
			ip.stats.WaitRegsRecv++
		default:
			ip.stats.PacketErrors++
		}
	}
}

// window finds the remote window containing addr.
func (ip *IP) window(addr uint16) *Window {
	for i := range ip.cfg.Windows {
		w := &ip.cfg.Windows[i]
		if addr >= w.Lo && addr < w.Hi {
			return w
		}
	}
	return nil
}

// Read implements r8.Bus.
func (ip *IP) Read(addr uint16) (uint16, bool) {
	switch {
	case int(addr) < ip.cfg.LocalWords:
		ip.banksUsed = true
		return ip.banks.Read(addr), true
	case addr == IOAddr:
		return ip.scanf()
	case addr == WaitAddr || addr == NotifyAddr:
		// Loads from the synchronization registers are meaningless;
		// define them as reading zero.
		return 0, true
	}
	if w := ip.window(addr); w != nil {
		return ip.remoteRead(w, addr)
	}
	ip.stats.UnmappedReads++
	return 0, true
}

// Write implements r8.Bus.
func (ip *IP) Write(addr, v uint16) bool {
	switch {
	case int(addr) < ip.cfg.LocalWords:
		ip.banksUsed = true
		ip.banks.Write(addr, v)
		return true
	case addr == IOAddr:
		return ip.printf(v)
	case addr == WaitAddr:
		return ip.wait(v)
	case addr == NotifyAddr:
		return ip.notify(v)
	}
	if w := ip.window(addr); w != nil {
		return ip.remoteWrite(w, addr, v)
	}
	ip.stats.UnmappedReads++
	return true
}

func (ip *IP) remoteRead(w *Window, addr uint16) (uint16, bool) {
	switch ip.rstate {
	case rIdle:
		m := &noc.Message{Svc: noc.SvcReadMem, Addr: addr - w.Lo, Count: 1}
		if _, err := ip.ep.SendMessage(w.Target, m); err != nil {
			ip.stats.PacketErrors++
			return 0, true
		}
		ip.stats.RemoteReads++
		ip.rstate = rWaitRead
		return 0, false
	case rReadDone:
		ip.rstate = rIdle
		return ip.rData, true
	default:
		return 0, false // transaction in flight: keep stalling
	}
}

func (ip *IP) remoteWrite(w *Window, addr, v uint16) bool {
	// Posted write: ordering to the same target is preserved by the
	// endpoint queue and deterministic routing.
	m := &noc.Message{Svc: noc.SvcWriteMem, Addr: addr - w.Lo, Words: []uint16{v}}
	if _, err := ip.ep.SendMessage(w.Target, m); err != nil {
		ip.stats.PacketErrors++
		return true
	}
	ip.stats.RemoteWrites++
	return true
}

// printf sends the word's low byte to the host monitor (a UART-style
// putchar; programs format larger values in software).
func (ip *IP) printf(v uint16) bool {
	m := &noc.Message{Svc: noc.SvcPrintf, Bytes: []byte{byte(v)}}
	if _, err := ip.ep.SendMessage(ip.cfg.Host, m); err != nil {
		ip.stats.PacketErrors++
		return true
	}
	ip.stats.Printfs++
	return true
}

func (ip *IP) scanf() (uint16, bool) {
	switch ip.rstate {
	case rIdle:
		if _, err := ip.ep.SendMessage(ip.cfg.Host, &noc.Message{Svc: noc.SvcScanf}); err != nil {
			ip.stats.PacketErrors++
			return 0, true
		}
		ip.stats.Scanfs++
		ip.rstate = rWaitScanf
		return 0, false
	case rScanfDone:
		ip.rstate = rIdle
		return ip.rData, true
	default:
		return 0, false
	}
}

// wait blocks the ST instruction until a notify from processor n has
// been received. A notify that raced ahead of the wait is consumed
// immediately.
func (ip *IP) wait(n uint16) bool {
	if ip.pendingNotifies[n] > 0 {
		ip.pendingNotifies[n]--
		if ip.waiting {
			ip.waiting = false
		}
		ip.sentReg = false
		ip.stats.Waits++
		return true
	}
	if !ip.waiting {
		ip.waiting = true
		ip.waitFor = n
		ip.stats.WaitsBlocked++
	}
	if !ip.sentReg {
		// Register the wait with the expected notifier (packet format
		// 9 of §2.1). Unknown IDs still block — a programming error
		// surfaces as a watchdog timeout rather than silence.
		if tgt, ok := ip.cfg.ProcByID[n]; ok {
			m := &noc.Message{Svc: noc.SvcWait, Proc: ip.cfg.ID}
			if _, err := ip.ep.SendMessage(tgt, m); err != nil {
				ip.stats.PacketErrors++
			}
		}
		ip.sentReg = true
	}
	return false
}

// notify wakes processor n (carrying our ID so the waiter can match
// the paper's "notify command from the IP with address 2" semantics).
func (ip *IP) notify(n uint16) bool {
	tgt, ok := ip.cfg.ProcByID[n]
	if !ok {
		ip.stats.PacketErrors++
		return true
	}
	m := &noc.Message{Svc: noc.SvcNotify, Proc: ip.cfg.ID}
	if _, err := ip.ep.SendMessage(tgt, m); err != nil {
		ip.stats.PacketErrors++
		return true
	}
	ip.stats.Notifies++
	return true
}

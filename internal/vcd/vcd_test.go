package vcd

import (
	"strings"
	"testing"
)

func TestHeaderAndChanges(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	clk := w.Signal("clk", 1)
	bus := w.Signal("data", 8)
	clk.Set(0)
	bus.Set(0xAB)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	clk.Set(1)
	if err := w.Tick(1); err != nil {
		t.Fatal(err)
	}
	clk.Set(0)
	bus.Set(0x12)
	if err := w.Tick(2); err != nil {
		t.Fatal(err)
	}
	// No change: no timestamp.
	if err := w.Tick(3); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$var wire 1", "$var wire 8", "$enddefinitions",
		"$dumpvars", "b10101011", "#1", "#2", "b10010", "clk", "data",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#3") {
		t.Error("timestamp emitted with no changes")
	}
}

func TestValueMasking(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	s := w.Signal("nibble", 4)
	s.Set(0xFF)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !strings.Contains(sb.String(), "b1111 ") {
		t.Errorf("4-bit signal not masked:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.Tick(0); err == nil {
		t.Error("Tick before Begin accepted")
	}
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err == nil {
		t.Error("double Begin accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Signal after Begin did not panic")
		}
	}()
	w.Signal("late", 1)
}

func TestIDCodesUnique(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := w.Signal("s", 1)
		if seen[s.id] {
			t.Fatalf("duplicate id %q at %d", s.id, i)
		}
		seen[s.id] = true
	}
}

// Package vcd writes Value Change Dump (IEEE 1364) waveform files from
// simulation probes, so MultiNoC signal activity can be inspected in
// standard waveform viewers — the debugging aid an RTL engineer would
// expect next to the Figure 9 monitors.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Signal is one traced wire. Set stages a new value; the writer emits a
// change record at the next Tick if the value differs.
type Signal struct {
	name string
	bits int
	id   string
	cur  uint64
	next uint64
}

// Set stages v as the signal's value for the current cycle.
func (s *Signal) Set(v uint64) {
	mask := uint64(1)<<s.bits - 1
	if s.bits >= 64 {
		mask = ^uint64(0)
	}
	s.next = v & mask
}

// Writer emits a VCD file. Register signals first, call Begin once,
// then Tick after every simulated cycle.
type Writer struct {
	w       *bufio.Writer
	signals []*Signal
	began   bool
	nextID  int
}

// NewWriter wraps w. The timescale is fixed at 1ns = one clock cycle
// at the nominal 1 GHz viewing scale; viewers only care about ratios.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Signal registers a traced wire of the given bit width. It panics
// after Begin, matching the VCD format's fixed declaration section.
func (v *Writer) Signal(name string, bits int) *Signal {
	if v.began {
		panic("vcd: Signal after Begin")
	}
	if bits < 1 {
		bits = 1
	}
	s := &Signal{name: name, bits: bits, id: idCode(v.nextID)}
	v.nextID++
	v.signals = append(v.signals, s)
	return s
}

// idCode builds the short identifier VCD uses for each variable.
func idCode(n int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if n < len(alphabet) {
		return string(alphabet[n])
	}
	return string(alphabet[n%len(alphabet)]) + idCode(n/len(alphabet))
}

// Begin writes the declaration header and the initial dump.
func (v *Writer) Begin() error {
	if v.began {
		return fmt.Errorf("vcd: Begin called twice")
	}
	v.began = true
	fmt.Fprintln(v.w, "$timescale 1ns $end")
	fmt.Fprintln(v.w, "$scope module multinoc $end")
	sigs := append([]*Signal(nil), v.signals...)
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].name < sigs[j].name })
	for _, s := range sigs {
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", s.bits, s.id, s.name)
	}
	fmt.Fprintln(v.w, "$upscope $end")
	fmt.Fprintln(v.w, "$enddefinitions $end")
	fmt.Fprintln(v.w, "$dumpvars")
	for _, s := range v.signals {
		v.emit(s, s.next)
		s.cur = s.next
	}
	fmt.Fprintln(v.w, "$end")
	return v.w.Flush()
}

func (v *Writer) emit(s *Signal, val uint64) {
	if s.bits == 1 {
		fmt.Fprintf(v.w, "%d%s\n", val&1, s.id)
		return
	}
	fmt.Fprintf(v.w, "b%b %s\n", val, s.id)
}

// Tick emits change records for cycle. Call it after every executed
// clock step with the just-completed cycle number. Cycle numbers must
// increase monotonically but need not be contiguous: a time-warping
// kernel skips dead spans, and since no signal can change during a
// skipped span, a dump produced from warped ticks is byte-identical to
// one produced stepping every cycle (the timestamp of each change
// record is the cycle the change committed, in either mode).
func (v *Writer) Tick(cycle uint64) error {
	if !v.began {
		return fmt.Errorf("vcd: Tick before Begin")
	}
	changed := false
	for _, s := range v.signals {
		if s.next != s.cur {
			if !changed {
				fmt.Fprintf(v.w, "#%d\n", cycle)
				changed = true
			}
			v.emit(s, s.next)
			s.cur = s.next
		}
	}
	return nil
}

// Flush drains buffered output.
func (v *Writer) Flush() error { return v.w.Flush() }

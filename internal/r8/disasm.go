package r8

import "fmt"

// Disasm renders the instruction in assembler syntax.
func (i Inst) Disasm() string {
	switch i.Op.Fmt() {
	case FmtR:
		return fmt.Sprintf("%s R%d, R%d, R%d", i.Op, i.Rt, i.Rs1, i.Rs2)
	case FmtI:
		return fmt.Sprintf("%s R%d, %d", i.Op, i.Rt, i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s %+d", i.Op, i.Disp)
	case FmtU:
		return fmt.Sprintf("%s R%d, R%d", i.Op, i.Rt, i.Rs1)
	case FmtS:
		switch i.Op {
		case PUSH, LDSP, JMPR, JSRR:
			return fmt.Sprintf("%s R%d", i.Op, i.Rs1)
		case POP, RDSP:
			return fmt.Sprintf("%s R%d", i.Op, i.Rt)
		default:
			return i.Op.String()
		}
	}
	return fmt.Sprintf("?%04x", 0)
}

// DisasmWord decodes and renders a machine word, or a .word directive
// for data / illegal encodings.
func DisasmWord(w uint16) string {
	inst, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%04X", w)
	}
	return inst.Disasm()
}

package r8

import "fmt"

// Bus is the CPU's view of the memory system (the ce/rw/addr/din/dout
// interface of Figure 5). A transaction that cannot complete this cycle
// returns ready == false and the CPU retries on the next cycle; this is
// how the Processor IP control logic implements the waitR8 stall during
// remote (NoC) accesses and local-memory arbitration.
type Bus interface {
	// Read returns the word at addr if the access can complete this
	// cycle.
	Read(addr uint16) (v uint16, ready bool)
	// Write stores v at addr, reporting whether the access completed.
	Write(addr, v uint16) (ready bool)
}

// CPU execution states.
const (
	stFetch = iota
	stExec
	stMem
	stWB
)

// CPU is the cycle-accurate R8 core. Call Step once per clock cycle.
// The zero value is a CPU reset to PC=0 with an undefined register file;
// use New for a fully initialized core.
type CPU struct {
	Regs [16]uint16
	PC   uint16
	SP   uint16
	IR   uint16
	// Flags.
	N, Z, C, V bool

	state  int
	inst   Inst
	halted bool
	err    error

	// memAddr/memData hold the pending stMem transaction.
	memAddr uint16
	memData uint16

	// Counters for CPI accounting (experiment E11).
	Cycles  uint64
	Retired uint64
}

// New returns a reset CPU. The paper's flow starts execution at address
// 0 of the local memory after an "activate processor" packet; SP is
// initialized to the top of the 1K local memory.
func New() *CPU { return &CPU{SP: 0x03FF} }

// Reset returns the CPU to its post-reset state, preserving nothing.
func (c *CPU) Reset() { *c = *New() }

// Halted reports whether the core executed HALT or hit an illegal
// instruction.
func (c *CPU) Halted() bool { return c.halted }

// Err returns the illegal-instruction error, if any.
func (c *CPU) Err() error { return c.err }

// CPI returns cycles per retired instruction so far.
func (c *CPU) CPI() float64 {
	if c.Retired == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Retired)
}

// Step advances the core by one clock cycle against bus. It does
// nothing once halted.
func (c *CPU) Step(bus Bus) {
	if c.halted {
		return
	}
	c.Cycles++
	switch c.state {
	case stFetch:
		w, ready := bus.Read(c.PC)
		if !ready {
			return
		}
		c.IR = w
		c.PC++
		c.state = stExec
	case stExec:
		c.exec(bus)
	case stMem:
		c.mem(bus)
	case stWB:
		// One bookkeeping cycle for call/return control transfer,
		// placing JSR/JSRR/RTS at CPI 4.
		c.retire()
	}
}

func (c *CPU) illegal(err error) {
	c.err = err
	c.halted = true
}

func (c *CPU) retire() {
	c.Retired++
	c.state = stFetch
}

func (c *CPU) exec(bus Bus) {
	inst, err := Decode(c.IR)
	if err != nil {
		c.illegal(err)
		return
	}
	c.inst = inst
	r := &c.Regs
	switch inst.Op {
	case ADD:
		c.Regs[inst.Rt] = c.alu(r[inst.Rs1], r[inst.Rs2], false)
		c.retire()
	case SUB:
		c.Regs[inst.Rt] = c.alu(r[inst.Rs1], r[inst.Rs2], true)
		c.retire()
	case AND, OR, XOR:
		var v uint16
		switch inst.Op {
		case AND:
			v = r[inst.Rs1] & r[inst.Rs2]
		case OR:
			v = r[inst.Rs1] | r[inst.Rs2]
		default:
			v = r[inst.Rs1] ^ r[inst.Rs2]
		}
		c.Regs[inst.Rt] = v
		c.setNZ(v)
		c.C, c.V = false, false
		c.retire()
	case ADDI:
		c.Regs[inst.Rt] = c.alu(r[inst.Rt], uint16(inst.Imm), false)
		c.retire()
	case SUBI:
		c.Regs[inst.Rt] = c.alu(r[inst.Rt], uint16(inst.Imm), true)
		c.retire()
	case LDL:
		c.Regs[inst.Rt] = r[inst.Rt]&0xFF00 | uint16(inst.Imm)
		c.retire()
	case LDH:
		c.Regs[inst.Rt] = uint16(inst.Imm)<<8 | r[inst.Rt]&0x00FF
		c.retire()
	case LD, ST:
		c.memAddr = r[inst.Rs1] + r[inst.Rs2]
		c.memData = r[inst.Rt]
		c.state = stMem
	case JMP, JMPN, JMPZ, JMPC, JMPV, JMPNN, JMPNZ, JMPNC, JMPNV:
		if c.cond(inst.Op) {
			c.PC += uint16(int16(inst.Disp))
		}
		c.retire()
	case JSR:
		c.memAddr = c.SP
		c.memData = c.PC
		c.SP--
		c.PC += uint16(int16(inst.Disp))
		c.state = stMem
	case JSRR:
		c.memAddr = c.SP
		c.memData = c.PC
		c.SP--
		c.PC = r[inst.Rs1]
		c.state = stMem
	case SL0, SL1, SR0, SR1:
		c.Regs[inst.Rt] = c.shift(inst.Op, r[inst.Rs1])
		c.retire()
	case NOT:
		v := ^r[inst.Rs1]
		c.Regs[inst.Rt] = v
		c.setNZ(v)
		c.retire()
	case MOV:
		v := r[inst.Rs1]
		c.Regs[inst.Rt] = v
		c.setNZ(v)
		c.retire()
	case PUSH:
		c.memAddr = c.SP
		c.memData = r[inst.Rs1]
		c.SP--
		c.state = stMem
	case POP:
		c.SP++
		c.memAddr = c.SP
		c.state = stMem
	case RTS:
		c.SP++
		c.memAddr = c.SP
		c.state = stMem
	case LDSP:
		c.SP = r[inst.Rs1]
		c.retire()
	case RDSP:
		c.Regs[inst.Rt] = c.SP
		c.retire()
	case JMPR:
		c.PC = r[inst.Rs1]
		c.retire()
	case NOP:
		c.retire()
	case HALT:
		c.halted = true
		c.Retired++
	default:
		c.illegal(fmt.Errorf("r8: unimplemented op %s", inst.Op))
	}
}

func (c *CPU) mem(bus Bus) {
	switch c.inst.Op {
	case LD:
		v, ready := bus.Read(c.memAddr)
		if !ready {
			return
		}
		c.Regs[c.inst.Rt] = v
		c.retire()
	case ST, PUSH:
		if !bus.Write(c.memAddr, c.memData) {
			return
		}
		c.retire()
	case JSR, JSRR:
		if !bus.Write(c.memAddr, c.memData) {
			return
		}
		c.state = stWB
	case POP:
		v, ready := bus.Read(c.memAddr)
		if !ready {
			return
		}
		c.Regs[c.inst.Rt] = v
		c.retire()
	case RTS:
		v, ready := bus.Read(c.memAddr)
		if !ready {
			return
		}
		c.PC = v
		c.state = stWB
	default:
		c.illegal(fmt.Errorf("r8: op %s in memory state", c.inst.Op))
	}
}

// alu performs add/sub with full NZCV semantics (C is carry-out for
// add, NOT-borrow for sub, ARM style).
func (c *CPU) alu(a, b uint16, isSub bool) uint16 {
	if isSub {
		b = ^b
		sum := uint32(a) + uint32(b) + 1
		v := uint16(sum)
		c.C = sum > 0xFFFF
		c.V = (a^uint16(sum))&(b^uint16(sum))&0x8000 != 0
		c.setNZ(v)
		return v
	}
	sum := uint32(a) + uint32(b)
	v := uint16(sum)
	c.C = sum > 0xFFFF
	c.V = (a^v)&(b^v)&0x8000 != 0
	c.setNZ(v)
	return v
}

func (c *CPU) shift(op Op, v uint16) uint16 {
	var out uint16
	switch op {
	case SL0:
		c.C = v&0x8000 != 0
		out = v << 1
	case SL1:
		c.C = v&0x8000 != 0
		out = v<<1 | 1
	case SR0:
		c.C = v&1 != 0
		out = v >> 1
	case SR1:
		c.C = v&1 != 0
		out = v>>1 | 0x8000
	}
	c.V = false
	c.setNZ(out)
	return out
}

func (c *CPU) setNZ(v uint16) {
	c.N = v&0x8000 != 0
	c.Z = v == 0
}

func (c *CPU) cond(op Op) bool {
	switch op {
	case JMP:
		return true
	case JMPN:
		return c.N
	case JMPZ:
		return c.Z
	case JMPC:
		return c.C
	case JMPV:
		return c.V
	case JMPNN:
		return !c.N
	case JMPNZ:
		return !c.Z
	case JMPNC:
		return !c.C
	case JMPNV:
		return !c.V
	}
	return false
}

// Package r8 models the R8 soft-core processor of the MultiNoC system
// (§2.4): a 16-bit load-store Von Neumann machine with a 16x16-bit
// register file, PC, SP, IR, four status flags (N Z C V), 36
// instructions and a CPI between 2 and 4.
//
// The original R8 specification is no longer published; the ISA here is
// a reconstruction that satisfies every constraint the paper states,
// including the three-register ST used by the wait/notify example
// ("ST R3, R1, R2" stores R3 at address R1+R2). See DESIGN.md §4.4.
package r8

import "fmt"

// Op enumerates the 36 R8 instructions.
type Op uint8

// The instruction set, grouped as in DESIGN.md §4.4.
const (
	// ALU register-register: rt = rs1 op rs2.
	ADD Op = iota
	SUB
	AND
	OR
	XOR
	// ALU immediate: rt = rt op imm8 (LDL/LDH replace a byte half).
	ADDI
	SUBI
	LDL
	LDH
	// Memory: LD rt,rs1,rs2 reads mem[rs1+rs2]; ST writes rt there.
	LD
	ST
	// Conditional relative jumps: PC += disp8 when the condition holds.
	JMP
	JMPN
	JMPZ
	JMPC
	JMPV
	JMPNN
	JMPNZ
	JMPNC
	JMPNV
	// Subroutine call: push return address, PC += disp8.
	JSR
	// Unary/shift: rt = f(rs).
	SL0
	SL1
	SR0
	SR1
	NOT
	MOV
	// System group.
	PUSH
	POP
	LDSP
	RDSP
	RTS
	NOP
	HALT
	JMPR
	JSRR
	numOps
)

// NumOps is the instruction count — the paper's "36 distinct
// instructions".
const NumOps = int(numOps)

// Cond indexes the nine jump conditions (always, flag set, flag clear).
type Cond uint8

// Jump conditions, encoded in the cond field of J-format instructions.
const (
	CondAL Cond = iota // always
	CondN              // negative set
	CondZ              // zero set
	CondC              // carry set
	CondV              // overflow set
	CondNN             // negative clear
	CondNZ             // zero clear
	CondNC             // carry clear
	CondNV             // overflow clear
)

// Format describes how an instruction's fields are packed.
type Format uint8

// Instruction formats (DESIGN.md §4.4).
const (
	FmtR Format = iota // [op:4][rt:4][rs1:4][rs2:4]
	FmtI               // [op:4][rt:4][imm:8]
	FmtJ               // [op:4][cond:4][disp:8]
	FmtU               // [0xD][rt:4][rs:4][sub:4]
	FmtS               // [0xF][sub:4][rt:4][rs:4]
)

type opInfo struct {
	name   string
	format Format
	major  uint16 // top nibble of the encoding
	sub    uint16 // cond (J), sub (U/S); unused otherwise
}

var opTable = [numOps]opInfo{
	ADD:   {"ADD", FmtR, 0x0, 0},
	SUB:   {"SUB", FmtR, 0x1, 0},
	AND:   {"AND", FmtR, 0x2, 0},
	OR:    {"OR", FmtR, 0x3, 0},
	XOR:   {"XOR", FmtR, 0x4, 0},
	ADDI:  {"ADDI", FmtI, 0x5, 0},
	SUBI:  {"SUBI", FmtI, 0x6, 0},
	LDL:   {"LDL", FmtI, 0x7, 0},
	LDH:   {"LDH", FmtI, 0x8, 0},
	LD:    {"LD", FmtR, 0x9, 0},
	ST:    {"ST", FmtR, 0xA, 0},
	JMP:   {"JMP", FmtJ, 0xB, uint16(CondAL)},
	JMPN:  {"JMPN", FmtJ, 0xB, uint16(CondN)},
	JMPZ:  {"JMPZ", FmtJ, 0xB, uint16(CondZ)},
	JMPC:  {"JMPC", FmtJ, 0xB, uint16(CondC)},
	JMPV:  {"JMPV", FmtJ, 0xB, uint16(CondV)},
	JMPNN: {"JMPNN", FmtJ, 0xB, uint16(CondNN)},
	JMPNZ: {"JMPNZ", FmtJ, 0xB, uint16(CondNZ)},
	JMPNC: {"JMPNC", FmtJ, 0xB, uint16(CondNC)},
	JMPNV: {"JMPNV", FmtJ, 0xB, uint16(CondNV)},
	JSR:   {"JSR", FmtJ, 0xC, uint16(CondAL)},
	SL0:   {"SL0", FmtU, 0xD, 0x0},
	SL1:   {"SL1", FmtU, 0xD, 0x1},
	SR0:   {"SR0", FmtU, 0xD, 0x2},
	SR1:   {"SR1", FmtU, 0xD, 0x3},
	NOT:   {"NOT", FmtU, 0xD, 0x4},
	MOV:   {"MOV", FmtU, 0xD, 0x5},
	PUSH:  {"PUSH", FmtS, 0xF, 0x0},
	POP:   {"POP", FmtS, 0xF, 0x1},
	LDSP:  {"LDSP", FmtS, 0xF, 0x2},
	RDSP:  {"RDSP", FmtS, 0xF, 0x3},
	RTS:   {"RTS", FmtS, 0xF, 0x4},
	NOP:   {"NOP", FmtS, 0xF, 0x5},
	HALT:  {"HALT", FmtS, 0xF, 0x6},
	JMPR:  {"JMPR", FmtS, 0xF, 0x7},
	JSRR:  {"JSRR", FmtS, 0xF, 0x8},
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opTable) {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Fmt reports the instruction's encoding format.
func (o Op) Fmt() Format { return opTable[o].format }

// Inst is one decoded instruction.
type Inst struct {
	Op   Op
	Rt   int // destination / source register (FmtR, FmtI, FmtU, FmtS)
	Rs1  int // first source (FmtR); source (FmtU, FmtS)
	Rs2  int // second source (FmtR)
	Imm  uint8
	Disp int8
}

// Encode packs the instruction into its 16-bit machine word.
func (i Inst) Encode() (uint16, error) {
	if int(i.Op) >= NumOps {
		return 0, fmt.Errorf("r8: invalid opcode %d", i.Op)
	}
	info := opTable[i.Op]
	reg := func(r int, field string) (uint16, error) {
		if r < 0 || r > 15 {
			return 0, fmt.Errorf("r8: %s: register %d out of range", info.name, r)
		}
		return uint16(r), nil
	}
	switch info.format {
	case FmtR:
		rt, err := reg(i.Rt, "rt")
		if err != nil {
			return 0, err
		}
		rs1, err := reg(i.Rs1, "rs1")
		if err != nil {
			return 0, err
		}
		rs2, err := reg(i.Rs2, "rs2")
		if err != nil {
			return 0, err
		}
		return info.major<<12 | rt<<8 | rs1<<4 | rs2, nil
	case FmtI:
		rt, err := reg(i.Rt, "rt")
		if err != nil {
			return 0, err
		}
		return info.major<<12 | rt<<8 | uint16(i.Imm), nil
	case FmtJ:
		return info.major<<12 | info.sub<<8 | uint16(uint8(i.Disp)), nil
	case FmtU:
		rt, err := reg(i.Rt, "rt")
		if err != nil {
			return 0, err
		}
		rs, err := reg(i.Rs1, "rs")
		if err != nil {
			return 0, err
		}
		return info.major<<12 | rt<<8 | rs<<4 | info.sub, nil
	case FmtS:
		rt, err := reg(i.Rt, "rt")
		if err != nil {
			return 0, err
		}
		rs, err := reg(i.Rs1, "rs")
		if err != nil {
			return 0, err
		}
		return info.major<<12 | info.sub<<8 | rt<<4 | rs, nil
	}
	return 0, fmt.Errorf("r8: unknown format for %s", info.name)
}

// jmpByCond maps a J-major/cond pair back to an opcode.
var jmpByCond = func() map[[2]uint16]Op {
	m := make(map[[2]uint16]Op)
	for op := Op(0); op < numOps; op++ {
		if opTable[op].format == FmtJ {
			m[[2]uint16{opTable[op].major, opTable[op].sub}] = op
		}
	}
	return m
}()

var subByMajor = func() map[[2]uint16]Op {
	m := make(map[[2]uint16]Op)
	for op := Op(0); op < numOps; op++ {
		f := opTable[op].format
		if f == FmtU || f == FmtS {
			m[[2]uint16{opTable[op].major, opTable[op].sub}] = op
		}
	}
	return m
}()

var majorToOp = func() map[uint16]Op {
	m := make(map[uint16]Op)
	for op := Op(0); op < numOps; op++ {
		f := opTable[op].format
		if f == FmtR || f == FmtI {
			m[opTable[op].major] = op
		}
	}
	return m
}()

// Decode unpacks a machine word. Unassigned encodings return an error;
// the CPU treats them as illegal instructions.
func Decode(w uint16) (Inst, error) {
	major := w >> 12
	switch major {
	case 0xB, 0xC:
		cond := (w >> 8) & 0xF
		op, ok := jmpByCond[[2]uint16{major, cond}]
		if !ok {
			return Inst{}, fmt.Errorf("r8: illegal jump condition %d in %#04x", cond, w)
		}
		return Inst{Op: op, Disp: int8(w & 0xFF)}, nil
	case 0xD:
		sub := w & 0xF
		op, ok := subByMajor[[2]uint16{major, sub}]
		if !ok {
			return Inst{}, fmt.Errorf("r8: illegal unary sub-op %d in %#04x", sub, w)
		}
		return Inst{Op: op, Rt: int(w >> 8 & 0xF), Rs1: int(w >> 4 & 0xF)}, nil
	case 0xF:
		sub := (w >> 8) & 0xF
		op, ok := subByMajor[[2]uint16{major, sub}]
		if !ok {
			return Inst{}, fmt.Errorf("r8: illegal system sub-op %d in %#04x", sub, w)
		}
		return Inst{Op: op, Rt: int(w >> 4 & 0xF), Rs1: int(w & 0xF)}, nil
	case 0xE:
		return Inst{}, fmt.Errorf("r8: illegal instruction %#04x", w)
	default:
		op := majorToOp[major]
		if opTable[op].format == FmtI {
			return Inst{Op: op, Rt: int(w >> 8 & 0xF), Imm: uint8(w & 0xFF)}, nil
		}
		return Inst{
			Op:  op,
			Rt:  int(w >> 8 & 0xF),
			Rs1: int(w >> 4 & 0xF),
			Rs2: int(w & 0xF),
		}, nil
	}
}

// OpByName resolves an assembler mnemonic (case-sensitive, upper case).
func OpByName(name string) (Op, bool) {
	for op := Op(0); op < numOps; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return 0, false
}

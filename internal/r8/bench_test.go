package r8

import "testing"

// BenchmarkStep measures simulated cycles per second of the
// cycle-accurate core on an ALU-heavy loop.
func BenchmarkStep(b *testing.B) {
	b.ReportAllocs()
	bus := &ram{}
	add, _ := Inst{Op: ADD, Rt: 1, Rs1: 2, Rs2: 3}.Encode()
	jmp, _ := Inst{Op: JMP, Disp: -128}.Encode()
	for i := 0; i < 127; i++ {
		bus.m[i] = add
	}
	bus.m[127] = jmp
	c := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(bus)
	}
}

// BenchmarkDecode measures the instruction decoder.
func BenchmarkDecode(b *testing.B) {
	b.ReportAllocs()
	words := make([]uint16, 0, NumOps)
	for op := Op(0); op < numOps; op++ {
		w, err := (Inst{Op: op, Rt: 1, Rs1: 2, Rs2: 3, Imm: 5, Disp: 1}).Encode()
		if err != nil {
			b.Fatal(err)
		}
		words = append(words, w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(words[i%len(words)]); err != nil {
			b.Fatal(err)
		}
	}
}

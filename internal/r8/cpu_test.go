package r8

import (
	"strings"
	"testing"
	"testing/quick"
)

// ram is a flat, always-ready bus for core tests.
type ram struct {
	m      [65536]uint16
	reads  int
	writes int
}

func (r *ram) Read(addr uint16) (uint16, bool) { r.reads++; return r.m[addr], true }
func (r *ram) Write(addr, v uint16) bool       { r.writes++; r.m[addr] = v; return true }

// stallBus makes the CPU wait `stall` cycles before each access
// completes, mimicking the waitR8 signal.
type stallBus struct {
	ram
	stall int
	count int
}

func (b *stallBus) Read(addr uint16) (uint16, bool) {
	if b.count < b.stall {
		b.count++
		return 0, false
	}
	b.count = 0
	return b.ram.Read(addr)
}

func (b *stallBus) Write(addr, v uint16) bool {
	if b.count < b.stall {
		b.count++
		return false
	}
	b.count = 0
	return b.ram.Write(addr, v)
}

// assemble encodes instructions into memory at address 0.
func loadProgram(t testing.TB, r *ram, insts ...Inst) {
	t.Helper()
	for i, inst := range insts {
		w, err := inst.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", inst, err)
		}
		r.m[i] = w
	}
}

// run steps the CPU until HALT or the cycle budget is exhausted.
func run(t testing.TB, c *CPU, bus Bus, max int) {
	t.Helper()
	for i := 0; i < max && !c.Halted(); i++ {
		c.Step(bus)
	}
	if !c.Halted() {
		t.Fatalf("CPU did not halt within %d cycles (PC=%#x)", max, c.PC)
	}
	if c.Err() != nil {
		t.Fatalf("CPU error: %v", c.Err())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(op8, rt8, rs18, rs28, imm uint8) bool {
		op := Op(op8 % uint8(NumOps))
		in := Inst{Op: op, Rt: int(rt8 % 16), Rs1: int(rs18 % 16), Rs2: int(rs28 % 16),
			Imm: imm, Disp: int8(imm)}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		if err != nil {
			return false
		}
		switch op.Fmt() {
		case FmtR:
			return out.Op == op && out.Rt == in.Rt && out.Rs1 == in.Rs1 && out.Rs2 == in.Rs2
		case FmtI:
			return out.Op == op && out.Rt == in.Rt && out.Imm == in.Imm
		case FmtJ:
			return out.Op == op && out.Disp == in.Disp
		case FmtU:
			return out.Op == op && out.Rt == in.Rt && out.Rs1 == in.Rs1
		case FmtS:
			return out.Op == op && out.Rt == in.Rt && out.Rs1 == in.Rs1
		}
		return false
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestThirtySixInstructions(t *testing.T) {
	if NumOps != 36 {
		t.Fatalf("instruction count = %d, want the paper's 36", NumOps)
	}
	seen := map[string]bool{}
	for op := Op(0); op < numOps; op++ {
		name := op.String()
		if seen[name] {
			t.Errorf("duplicate mnemonic %s", name)
		}
		seen[name] = true
		if got, ok := OpByName(name); !ok || got != op {
			t.Errorf("OpByName(%s) = %v,%v", name, got, ok)
		}
	}
	if _, ok := OpByName("BOGUS"); ok {
		t.Error("OpByName accepted BOGUS")
	}
}

func TestDecodeIllegal(t *testing.T) {
	for _, w := range []uint16{
		0xE000, // unused major
		0xB900, // jump condition 9
		0xD006, // unary sub 6
		0xF900, // system sub 9
		0xC100, // JSR with non-AL condition
	} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#04x) succeeded, want error", w)
		}
	}
}

func TestALUArithmetic(t *testing.T) {
	cases := []struct {
		name       string
		op         Op
		a, b       uint16
		want       uint16
		n, z, c, v bool
	}{
		{"add simple", ADD, 2, 3, 5, false, false, false, false},
		{"add carry", ADD, 0xFFFF, 1, 0, false, true, true, false},
		{"add overflow", ADD, 0x7FFF, 1, 0x8000, true, false, false, true},
		{"add neg", ADD, 0x8000, 0x8000, 0, false, true, true, true},
		{"sub simple", SUB, 5, 3, 2, false, false, true, false},
		{"sub zero", SUB, 7, 7, 0, false, true, true, false},
		{"sub borrow", SUB, 3, 5, 0xFFFE, true, false, false, false},
		{"sub overflow", SUB, 0x8000, 1, 0x7FFF, false, false, true, true},
		{"and", AND, 0xF0F0, 0xFF00, 0xF000, true, false, false, false},
		{"or zero", OR, 0, 0, 0, false, true, false, false},
		{"xor", XOR, 0xAAAA, 0xAAAA, 0, false, true, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &ram{}
			c := New()
			c.Regs[1], c.Regs[2] = tc.a, tc.b
			loadProgram(t, r,
				Inst{Op: tc.op, Rt: 3, Rs1: 1, Rs2: 2},
				Inst{Op: HALT},
			)
			run(t, c, r, 100)
			if c.Regs[3] != tc.want {
				t.Errorf("result = %#x, want %#x", c.Regs[3], tc.want)
			}
			if c.N != tc.n || c.Z != tc.z || c.C != tc.c || c.V != tc.v {
				t.Errorf("flags NZCV = %v%v%v%v, want %v%v%v%v",
					c.N, c.Z, c.C, c.V, tc.n, tc.z, tc.c, tc.v)
			}
		})
	}
}

func TestShifts(t *testing.T) {
	cases := []struct {
		op    Op
		in    uint16
		want  uint16
		carry bool
	}{
		{SL0, 0x8001, 0x0002, true},
		{SL1, 0x4000, 0x8001, false},
		{SR0, 0x0001, 0x0000, true},
		{SR1, 0x0002, 0x8001, false},
	}
	for _, tc := range cases {
		t.Run(tc.op.String(), func(t *testing.T) {
			r := &ram{}
			c := New()
			c.Regs[1] = tc.in
			loadProgram(t, r, Inst{Op: tc.op, Rt: 2, Rs1: 1}, Inst{Op: HALT})
			run(t, c, r, 100)
			if c.Regs[2] != tc.want || c.C != tc.carry {
				t.Errorf("%s(%#x) = %#x C=%v, want %#x C=%v",
					tc.op, tc.in, c.Regs[2], c.C, tc.want, tc.carry)
			}
		})
	}
}

func TestLDLAndLDHBuildConstant(t *testing.T) {
	r := &ram{}
	c := New()
	loadProgram(t, r,
		Inst{Op: LDH, Rt: 1, Imm: 0xAB},
		Inst{Op: LDL, Rt: 1, Imm: 0xCD},
		Inst{Op: HALT},
	)
	run(t, c, r, 100)
	if c.Regs[1] != 0xABCD {
		t.Errorf("R1 = %#x, want 0xABCD", c.Regs[1])
	}
}

func TestLoadStore(t *testing.T) {
	r := &ram{}
	c := New()
	r.m[0x0150] = 0xBEEF
	c.Regs[1], c.Regs[2] = 0x0100, 0x0050
	c.Regs[3] = 0xCAFE
	loadProgram(t, r,
		Inst{Op: LD, Rt: 4, Rs1: 1, Rs2: 2}, // R4 = mem[0x150]
		Inst{Op: ST, Rt: 3, Rs1: 1, Rs2: 2}, // mem[0x150] = R3
		Inst{Op: HALT},
	)
	run(t, c, r, 100)
	if c.Regs[4] != 0xBEEF {
		t.Errorf("LD: R4 = %#x, want 0xBEEF", c.Regs[4])
	}
	if r.m[0x0150] != 0xCAFE {
		t.Errorf("ST: mem = %#x, want 0xCAFE", r.m[0x0150])
	}
}

func TestConditionalJumps(t *testing.T) {
	// SUB R3,R1,R2 with equal values sets Z; JMPZ must skip the
	// poison instruction.
	r := &ram{}
	c := New()
	c.Regs[1], c.Regs[2] = 9, 9
	loadProgram(t, r,
		Inst{Op: SUB, Rt: 3, Rs1: 1, Rs2: 2},
		Inst{Op: JMPZ, Disp: 1},
		Inst{Op: LDL, Rt: 5, Imm: 0xEE}, // must be skipped
		Inst{Op: HALT},
	)
	run(t, c, r, 100)
	if c.Regs[5] == 0xEE {
		t.Error("JMPZ not taken on Z=1")
	}

	// Not-taken path.
	r2 := &ram{}
	c2 := New()
	c2.Regs[1], c2.Regs[2] = 9, 5
	loadProgram(t, r2,
		Inst{Op: SUB, Rt: 3, Rs1: 1, Rs2: 2},
		Inst{Op: JMPZ, Disp: 1},
		Inst{Op: LDL, Rt: 5, Imm: 0xEE}, // must execute
		Inst{Op: HALT},
	)
	run(t, c2, r2, 100)
	if c2.Regs[5] != 0xEE {
		t.Error("JMPZ taken on Z=0")
	}
}

func TestBackwardJumpLoop(t *testing.T) {
	// R1 counts 10 down to 0.
	r := &ram{}
	c := New()
	c.Regs[1] = 10
	loadProgram(t, r,
		Inst{Op: SUBI, Rt: 1, Imm: 1}, // 0
		Inst{Op: JMPNZ, Disp: -2},     // 1: loop while R1 != 0
		Inst{Op: HALT},                // 2
	)
	run(t, c, r, 1000)
	if c.Regs[1] != 0 {
		t.Errorf("R1 = %d, want 0", c.Regs[1])
	}
}

func TestJSRAndRTS(t *testing.T) {
	r := &ram{}
	c := New()
	loadProgram(t, r,
		Inst{Op: JSR, Disp: 2},          // 0: call 3
		Inst{Op: LDL, Rt: 2, Imm: 0x22}, // 1: after return
		Inst{Op: HALT},                  // 2
		Inst{Op: LDL, Rt: 1, Imm: 0x11}, // 3: subroutine body
		Inst{Op: RTS},                   // 4
	)
	run(t, c, r, 1000)
	if c.Regs[1] != 0x11 || c.Regs[2] != 0x22 {
		t.Errorf("R1=%#x R2=%#x, want 0x11 0x22", c.Regs[1], c.Regs[2])
	}
	if c.SP != 0x03FF {
		t.Errorf("SP = %#x, want balanced 0x03FF", c.SP)
	}
}

func TestPushPop(t *testing.T) {
	r := &ram{}
	c := New()
	c.Regs[1], c.Regs[2] = 0x1111, 0x2222
	loadProgram(t, r,
		Inst{Op: PUSH, Rs1: 1},
		Inst{Op: PUSH, Rs1: 2},
		Inst{Op: POP, Rt: 3},
		Inst{Op: POP, Rt: 4},
		Inst{Op: HALT},
	)
	run(t, c, r, 1000)
	if c.Regs[3] != 0x2222 || c.Regs[4] != 0x1111 {
		t.Errorf("LIFO violated: R3=%#x R4=%#x", c.Regs[3], c.Regs[4])
	}
}

func TestLDSPAndRDSP(t *testing.T) {
	r := &ram{}
	c := New()
	c.Regs[1] = 0x0200
	loadProgram(t, r,
		Inst{Op: LDSP, Rs1: 1},
		Inst{Op: RDSP, Rt: 2},
		Inst{Op: PUSH, Rs1: 1},
		Inst{Op: RDSP, Rt: 3},
		Inst{Op: HALT},
	)
	run(t, c, r, 1000)
	if c.Regs[2] != 0x0200 {
		t.Errorf("RDSP = %#x, want 0x0200", c.Regs[2])
	}
	if c.Regs[3] != 0x01FF {
		t.Errorf("SP after push = %#x, want 0x01FF", c.Regs[3])
	}
	if r.m[0x0200] != 0x0200 {
		t.Errorf("pushed value at %#x = %#x", 0x0200, r.m[0x0200])
	}
}

func TestJMPRAndJSRR(t *testing.T) {
	r := &ram{}
	c := New()
	c.Regs[1] = 4 // subroutine address
	loadProgram(t, r,
		Inst{Op: JSRR, Rs1: 1},          // 0
		Inst{Op: HALT},                  // 1
		Inst{Op: NOP},                   // 2
		Inst{Op: NOP},                   // 3
		Inst{Op: LDL, Rt: 2, Imm: 0x55}, // 4
		Inst{Op: RTS},                   // 5
	)
	run(t, c, r, 1000)
	if c.Regs[2] != 0x55 {
		t.Errorf("JSRR subroutine not executed: R2=%#x", c.Regs[2])
	}
}

func TestIllegalInstructionHalts(t *testing.T) {
	r := &ram{}
	r.m[0] = 0xE000
	c := New()
	for i := 0; i < 10 && !c.Halted(); i++ {
		c.Step(r)
	}
	if !c.Halted() || c.Err() == nil {
		t.Fatalf("illegal instruction not trapped: halted=%v err=%v", c.Halted(), c.Err())
	}
}

// TestCPIRange is experiment E11: the paper states CPI between 2 and 4.
func TestCPIRange(t *testing.T) {
	cases := []struct {
		name string
		prog []Inst
		cpi  float64
	}{
		{"alu", []Inst{{Op: ADD, Rt: 1, Rs1: 2, Rs2: 3}}, 2},
		{"imm", []Inst{{Op: ADDI, Rt: 1, Imm: 1}}, 2},
		{"jump", []Inst{{Op: JMP, Disp: 0}}, 2},
		{"load", []Inst{{Op: LD, Rt: 1, Rs1: 2, Rs2: 3}}, 3},
		{"store", []Inst{{Op: ST, Rt: 1, Rs1: 2, Rs2: 3}}, 3},
		{"push", []Inst{{Op: PUSH, Rs1: 1}}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &ram{}
			c := New()
			c.SP = 0x8000
			// Repeat the instruction 50 times then halt.
			var prog []Inst
			for i := 0; i < 50; i++ {
				prog = append(prog, tc.prog...)
			}
			prog = append(prog, Inst{Op: HALT})
			loadProgram(t, r, prog...)
			run(t, c, r, 10000)
			// Exclude the HALT from accounting noise by bounding.
			got := c.CPI()
			if got < tc.cpi-0.1 || got > tc.cpi+0.1 {
				t.Errorf("CPI = %.2f, want ~%.1f", got, tc.cpi)
			}
		})
	}
}

func TestCPICallReturn(t *testing.T) {
	r := &ram{}
	c := New()
	loadProgram(t, r,
		Inst{Op: JSR, Disp: 1}, // 0 -> 2
		Inst{Op: HALT},         // 1
		Inst{Op: RTS},          // 2
	)
	run(t, c, r, 1000)
	// JSR: 4 cycles, RTS: 4 cycles, HALT: 2 cycles = 10.
	if c.Cycles != 10 {
		t.Errorf("call/return cycles = %d, want 10", c.Cycles)
	}
	if c.CPI() < 2 || c.CPI() > 4 {
		t.Errorf("CPI %.2f outside the paper's [2,4]", c.CPI())
	}
}

func TestStallingBusPreservesSemantics(t *testing.T) {
	// The same program must compute the same result regardless of bus
	// wait states; only cycle counts change. This is the waitR8
	// contract the Processor IP relies on.
	exec := func(stall int) (*CPU, uint64) {
		bus := &stallBus{stall: stall}
		c := New()
		c.Regs[1] = 10
		loadProgram(t, &bus.ram,
			Inst{Op: LDL, Rt: 2, Imm: 0},
			Inst{Op: ADD, Rt: 2, Rs1: 2, Rs2: 1}, // R2 += R1
			Inst{Op: SUBI, Rt: 1, Imm: 1},
			Inst{Op: JMPNZ, Disp: -3},
			Inst{Op: ST, Rt: 2, Rs1: 3, Rs2: 3}, // store at 0
			Inst{Op: HALT},
		)
		c.Regs[3] = 0x100
		for i := 0; i < 100000 && !c.Halted(); i++ {
			c.Step(bus)
		}
		if !c.Halted() {
			t.Fatal("did not halt")
		}
		return c, c.Cycles
	}
	c0, cyc0 := exec(0)
	c3, cyc3 := exec(3)
	if c0.Regs[2] != 55 || c3.Regs[2] != 55 {
		t.Errorf("sum = %d / %d, want 55", c0.Regs[2], c3.Regs[2])
	}
	if cyc3 <= cyc0 {
		t.Errorf("stalled run not slower: %d vs %d", cyc3, cyc0)
	}
}

func TestCPUDeterminism(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		mk := func() *CPU {
			r := &ram{}
			c := New()
			c.Regs[1] = seed
			loadProgram(t, r,
				Inst{Op: ADDI, Rt: 1, Imm: 7},
				Inst{Op: SL0, Rt: 2, Rs1: 1},
				Inst{Op: XOR, Rt: 3, Rs1: 1, Rs2: 2},
				Inst{Op: HALT},
			)
			for i := 0; i < 100 && !c.Halted(); i++ {
				c.Step(r)
			}
			return c
		}
		a, b := mk(), mk()
		return a.Regs == b.Regs && a.Cycles == b.Cycles
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: ADD, Rt: 1, Rs1: 2, Rs2: 3}, "ADD R1, R2, R3"},
		{Inst{Op: ADDI, Rt: 4, Imm: 10}, "ADDI R4, 10"},
		{Inst{Op: JMPZ, Disp: -4}, "JMPZ -4"},
		{Inst{Op: MOV, Rt: 1, Rs1: 2}, "MOV R1, R2"},
		{Inst{Op: PUSH, Rs1: 5}, "PUSH R5"},
		{Inst{Op: POP, Rt: 6}, "POP R6"},
		{Inst{Op: HALT}, "HALT"},
	}
	for _, tc := range cases {
		if got := tc.inst.Disasm(); got != tc.want {
			t.Errorf("Disasm = %q, want %q", got, tc.want)
		}
	}
	if !strings.HasPrefix(DisasmWord(0xE123), ".word") {
		t.Errorf("illegal word disasm = %q", DisasmWord(0xE123))
	}
	if DisasmWord(0xF500) != "NOP" {
		t.Errorf("NOP disasm = %q", DisasmWord(0xF500))
	}
}

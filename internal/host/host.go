// Package host models the host computer of the MultiNoC flow (§4): the
// "Serial software" that synchronizes baud, downloads object code,
// fills memories, activates processors, and runs the per-processor
// interaction monitors for printf/scanf (Figure 9).
//
// The host talks RS-232 at the bit level through internal/serial; every
// public helper is therefore exercising the same path the paper's flow
// diagram (Figure 8) describes, including the 0x55 synchronization.
package host

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/r8asm"
	"repro/internal/serial"
	"repro/internal/sim"
)

// PrintfEvent is one word/text burst a processor sent to its monitor.
type PrintfEvent struct {
	Src   noc.Addr
	Bytes []byte
}

// Host is the host-computer model. Create it with New, then use the
// blocking helpers (which pump the simulation clock) to drive the
// Figure 8 flow.
type Host struct {
	clk *sim.Clock
	utx *serial.TX
	urx *serial.RX

	parser parserState

	// ScanfData, when set, answers scanf requests automatically; the
	// paper's GUI pops an input box instead.
	ScanfData func(src noc.Addr) uint16

	printfs      []PrintfEvent
	printfBySrc  map[uint16][]byte
	scanfPending []noc.Addr
	readWords    []uint16
	readsSeen    int

	synced bool

	// Stats.
	FramesSent uint64
	FramesRecv uint64
}

// parserState wraps the upstream frame parser without exporting
// internal/serial's unexported type.
type parserState struct {
	feed func(b byte) (*noc.Message, bool)
}

// New wires a host to the two serial lines at the given divisor (clock
// cycles per bit). toNoC is the line into the MultiNoC "tx" pin;
// fromNoC is the "rx" pin's line. The host registers itself with clk.
func New(clk *sim.Clock, toNoC, fromNoC *serial.Line, div int) *Host {
	h := &Host{
		clk:         clk,
		utx:         serial.NewTX(toNoC, div),
		urx:         serial.NewRX(fromNoC, div),
		printfBySrc: make(map[uint16][]byte),
	}
	// Bound UARTs pace the host with bit-edge timers, so it sleeps
	// through the dead cycles inside every bit (and the time-warp
	// kernel skips them).
	h.utx.Bind(h)
	h.urx.Bind(h)
	up := serial.NewUpParser()
	h.parser.feed = up.Feed
	h.urx.Recv = func(b byte) {
		if m, ok := h.parser.feed(b); ok {
			h.FramesRecv++
			h.handle(m)
		}
	}
	// A start bit from the Serial IP must wake the host out of idle
	// sleep so the monitor receives frames sent while it has nothing to
	// transmit.
	sim.Watch(fromNoC, h)
	clk.Register(h)
	return h
}

func (h *Host) handle(m *noc.Message) {
	switch m.Svc {
	case noc.SvcPrintf:
		h.printfs = append(h.printfs, PrintfEvent{Src: m.Src, Bytes: m.Bytes})
		h.printfBySrc[m.Src.Encode()] = append(h.printfBySrc[m.Src.Encode()], m.Bytes...)
	case noc.SvcScanf:
		if h.ScanfData != nil {
			h.sendFrame(m.Src, &noc.Message{Svc: noc.SvcScanfReturn,
				Words: []uint16{h.ScanfData(m.Src)}})
		} else {
			h.scanfPending = append(h.scanfPending, m.Src)
		}
	case noc.SvcReadReturn:
		h.readWords = append(h.readWords, m.Words...)
		h.readsSeen++
	}
}

func (h *Host) sendFrame(tgt noc.Addr, m *noc.Message) {
	bs, err := serial.EncodeDown(tgt, m)
	if err != nil {
		// Host-side encode errors are programming errors of the caller;
		// they are caught in the public helpers before reaching here.
		panic(fmt.Sprintf("host: encode: %v", err))
	}
	h.FramesSent++
	h.utx.Queue(bs...)
	// Queueing happens outside Eval (the public helpers run between
	// steps); wake the host so the transmitter starts on the next cycle.
	h.clk.Wake(h)
}

// Name implements sim.Component.
func (h *Host) Name() string { return "host" }

// Eval implements sim.Component.
func (h *Host) Eval() {
	h.urx.Tick()
	h.utx.Tick()
}

// Commit implements sim.Component.
func (h *Host) Commit() {}

// Idle implements sim.Idler: the host sleeps whenever both UART
// directions are dormant — fully drained, or mid-bit with the next
// edge/sample timer armed. It is woken by sendFrame/Sync (new bytes
// queued), by its UARTs' WakeAt timers, or by the watched rx line (the
// Serial IP starting a frame).
func (h *Host) Idle() bool { return h.utx.Dormant() && h.urx.Dormant() }

// Sync transmits the 0x55 synchronization byte and waits until the
// line has been idle long enough for the Serial IP to lock its baud
// divisor (§4, "Synchronize SW/HW").
func (h *Host) Sync() error {
	h.utx.Gap = 4 * h.utx.Div()
	h.utx.Queue(serial.SyncByte)
	h.clk.Wake(h)
	if err := h.drain(); err != nil {
		return fmt.Errorf("host: sync: %w", err)
	}
	h.utx.Gap = 0
	h.synced = true
	return nil
}

// drain pumps the clock until the transmitter queue is empty.
func (h *Host) drain() error {
	budget := uint64((h.utx.QueueLen()+4)*11*h.utx.Div() + 1000)
	for !h.utx.Idle() {
		if budget == 0 {
			return fmt.Errorf("transmitter did not drain")
		}
		h.clk.Step()
		budget--
	}
	return nil
}

const chunk = noc.MaxServiceWords

// WriteMemory stores words at addr of the target IP's memory, chunking
// into command frames as needed ("Fill Memory Contents" in Figure 8).
func (h *Host) WriteMemory(tgt noc.Addr, addr uint16, words []uint16) error {
	if !h.synced {
		return fmt.Errorf("host: WriteMemory before Sync")
	}
	for _, span := range noc.SplitWords(addr, words) {
		h.sendFrame(tgt, &noc.Message{Svc: noc.SvcWriteMem, Addr: span.Addr, Words: span.Words})
		if err := h.drain(); err != nil {
			return fmt.Errorf("host: write %#04x: %w", span.Addr, err)
		}
	}
	return nil
}

// ReadMemory fetches n words from addr of the target IP's memory
// (Figure 9, step 1).
func (h *Host) ReadMemory(tgt noc.Addr, addr uint16, n int) ([]uint16, error) {
	if !h.synced {
		return nil, fmt.Errorf("host: ReadMemory before Sync")
	}
	h.readWords = nil
	h.readsSeen = 0
	wantFrames := 0
	for left, a := n, addr; left > 0; {
		c := left
		if c > chunk {
			c = chunk
		}
		h.sendFrame(tgt, &noc.Message{Svc: noc.SvcReadMem, Addr: a, Count: c})
		a += uint16(c)
		left -= c
		wantFrames++
	}
	err := h.clk.RunUntil(func() bool { return len(h.readWords) >= n }, h.readBudget(n))
	if err != nil {
		return nil, fmt.Errorf("host: read %#04x+%d from %s: %w (got %d words)",
			addr, n, tgt, err, len(h.readWords))
	}
	out := h.readWords[:n]
	h.readWords = nil
	return out, nil
}

// readBudget bounds a read round trip: serial transfer dominates, at 10
// bits per byte and 2 bytes per word, plus slack for NoC transit.
func (h *Host) readBudget(n int) uint64 {
	return uint64(10*h.utx.Div()*(2*n+64) + 100000)
}

// Activate starts the processor at tgt ("Activate Processors").
func (h *Host) Activate(tgt noc.Addr) error {
	if !h.synced {
		return fmt.Errorf("host: Activate before Sync")
	}
	h.sendFrame(tgt, &noc.Message{Svc: noc.SvcActivate})
	return h.drain()
}

// SendScanf answers the oldest pending scanf request of src manually
// (the monitor text box of Figure 9).
func (h *Host) SendScanf(src noc.Addr, v uint16) error {
	h.sendFrame(src, &noc.Message{Svc: noc.SvcScanfReturn, Words: []uint16{v}})
	return h.drain()
}

// LoadProgram downloads assembled object code into the target's memory
// ("Send Generated Object Code").
func (h *Host) LoadProgram(tgt noc.Addr, p *r8asm.Program) error {
	for _, seg := range p.Segments {
		if err := h.WriteMemory(tgt, seg.Base, seg.Words); err != nil {
			return err
		}
	}
	return nil
}

// Run pumps the simulation n cycles (letting programs execute).
func (h *Host) Run(n uint64) { h.clk.Run(n) }

// RunUntil pumps the simulation until pred holds.
func (h *Host) RunUntil(pred func() bool, max uint64) error {
	return h.clk.RunUntil(pred, max)
}

// Printf returns (and keeps) everything processor src printed so far.
func (h *Host) Printf(src noc.Addr) []byte { return h.printfBySrc[src.Encode()] }

// PrintfEvents returns the raw printf burst log.
func (h *Host) PrintfEvents() []PrintfEvent { return h.printfs }

// ScanfPending lists processors waiting for input.
func (h *Host) ScanfPending() []noc.Addr { return h.scanfPending }

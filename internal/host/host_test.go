package host

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/r8asm"
	"repro/internal/serial"
	"repro/internal/sim"
)

// rig builds a host + serial IP + remote memory system without the
// processor IPs, isolating the host software stack.
func rig(t *testing.T) (*Host, *serial.IP, *mem.IP) {
	t.Helper()
	clk := sim.NewClock()
	net, err := noc.New(clk, noc.Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	toNoC := serial.NewLine(clk, "tx")
	fromNoC := serial.NewLine(clk, "rx")
	sip, err := serial.NewIP(net, noc.Addr{X: 0, Y: 0}, toNoC, fromNoC)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mem.NewIP(net, noc.Addr{X: 1, Y: 1}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	h := New(clk, toNoC, fromNoC, 16)
	return h, sip, m
}

func TestSyncLocksBaud(t *testing.T) {
	h, sip, _ := rig(t)
	if sip.Synchronized() {
		t.Fatal("synchronized before sync byte")
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if !sip.Synchronized() || sip.Baud() != 16 {
		t.Fatalf("synchronized=%v baud=%d", sip.Synchronized(), sip.Baud())
	}
}

func TestCommandsRequireSync(t *testing.T) {
	h, _, _ := rig(t)
	if err := h.WriteMemory(noc.Addr{X: 1, Y: 1}, 0, []uint16{1}); err == nil {
		t.Error("write before sync accepted")
	}
	if _, err := h.ReadMemory(noc.Addr{X: 1, Y: 1}, 0, 1); err == nil {
		t.Error("read before sync accepted")
	}
	if err := h.Activate(noc.Addr{X: 0, Y: 1}); err == nil {
		t.Error("activate before sync accepted")
	}
}

func TestWriteReadMemory(t *testing.T) {
	h, _, m := rig(t)
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	data := []uint16{0x1111, 0x2222, 0x3333}
	if err := h.WriteMemory(noc.Addr{X: 1, Y: 1}, 0x40, data); err != nil {
		t.Fatal(err)
	}
	// Wait for the frame to cross the wire and the engine to apply it.
	if err := h.RunUntil(func() bool { return m.Banks().Read(0x42) == 0x3333 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	got, err := h.ReadMemory(noc.Addr{X: 1, Y: 1}, 0x40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range data {
		if got[i] != w {
			t.Errorf("word %d = %#x", i, got[i])
		}
	}
	if h.FramesSent != 2 || h.FramesRecv != 1 {
		t.Errorf("frame counters: sent=%d recv=%d", h.FramesSent, h.FramesRecv)
	}
}

func TestReadTimeoutErrorIsDescriptive(t *testing.T) {
	h, _, _ := rig(t)
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	// Router 01 has no endpoint: the read can never be answered.
	_, err := h.ReadMemory(noc.Addr{X: 0, Y: 1}, 0, 1)
	if err == nil {
		t.Fatal("read of absent IP succeeded")
	}
	if !strings.Contains(err.Error(), "01") {
		t.Errorf("error %q does not name the target", err)
	}
}

func TestLoadProgramWritesSegments(t *testing.T) {
	h, _, m := rig(t)
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	// Hand-build a two-segment program image.
	prog := testProgram(t)
	if err := h.LoadProgram(noc.Addr{X: 1, Y: 1}, prog); err != nil {
		t.Fatal(err)
	}
	if err := h.RunUntil(func() bool { return m.Banks().Read(0x0200) == 0xBEEF }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Banks().Read(0) == 0 {
		t.Error("first segment not written")
	}
}

func testProgram(t *testing.T) *r8asm.Program {
	t.Helper()
	p, err := r8asm.Assemble("NOP\nHALT\n.org 0x0200\n.word 0xBEEF")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestManualScanfPath(t *testing.T) {
	// Without a ScanfData hook the request queues in ScanfPending and
	// the user answers manually (the Figure 9 monitor's input box).
	h, _, _ := rig(t)
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	// Emulate an incoming scanf frame by feeding the parser directly
	// through handle (the serial path is covered elsewhere).
	h.handle(&noc.Message{Svc: noc.SvcScanf, Src: noc.Addr{X: 0, Y: 1}})
	if len(h.ScanfPending()) != 1 {
		t.Fatalf("pending = %v", h.ScanfPending())
	}
	if err := h.SendScanf(noc.Addr{X: 0, Y: 1}, 99); err != nil {
		t.Fatal(err)
	}
}

func TestPrintfEventLog(t *testing.T) {
	h, _, _ := rig(t)
	h.handle(&noc.Message{Svc: noc.SvcPrintf, Src: noc.Addr{X: 0, Y: 1}, Bytes: []byte("ab")})
	h.handle(&noc.Message{Svc: noc.SvcPrintf, Src: noc.Addr{X: 0, Y: 1}, Bytes: []byte("c")})
	if string(h.Printf(noc.Addr{X: 0, Y: 1})) != "abc" {
		t.Errorf("accumulated = %q", h.Printf(noc.Addr{X: 0, Y: 1}))
	}
	if n := len(h.PrintfEvents()); n != 2 {
		t.Errorf("events = %d", n)
	}
}

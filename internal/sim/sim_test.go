package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

// counter increments a register every cycle and drives it onto a wire.
type counter struct {
	n   uint64
	out *Wire[uint64]
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Eval()        { c.out.Set(c.n + 1) }
func (c *counter) Commit()      { c.n++ }

// follower copies its input wire into a register.
type follower struct {
	in   *Wire[uint64]
	seen []uint64
	next uint64
}

func (f *follower) Name() string { return "follower" }
func (f *follower) Eval()        { f.next = f.in.Get() }
func (f *follower) Commit()      { f.seen = append(f.seen, f.next) }

func TestWireRegistersOneCycle(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	c := &counter{out: w}
	f := &follower{in: w}
	clk.Register(c, f)

	clk.Run(4)
	// The follower must see each counter value exactly one cycle late:
	// cycle 1 it reads the initial 0, cycle 2 it reads 1 (staged during
	// cycle 1), etc.
	want := []uint64{0, 1, 2, 3}
	if len(f.seen) != len(want) {
		t.Fatalf("follower saw %d values, want %d", len(f.seen), len(want))
	}
	for i, v := range want {
		if f.seen[i] != v {
			t.Errorf("cycle %d: follower saw %d, want %d", i+1, f.seen[i], v)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	// Two clock domains with the same components registered in opposite
	// order must produce identical traces.
	run := func(swap bool) []uint64 {
		clk := NewClock()
		w := NewWire(clk, "w", uint64(0))
		c := &counter{out: w}
		f := &follower{in: w}
		if swap {
			clk.Register(f, c)
		} else {
			clk.Register(c, f)
		}
		clk.Run(16)
		return f.seen
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d: order-dependent result %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunUntil(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	c := &counter{out: w}
	clk.Register(c)

	if err := clk.RunUntil(func() bool { return c.n == 10 }, 100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if clk.Cycle() != 10 {
		t.Errorf("cycle = %d, want 10", clk.Cycle())
	}
	err := clk.RunUntil(func() bool { return false }, 5)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("RunUntil error = %v, want ErrTimeout", err)
	}
	if clk.Cycle() != 15 {
		t.Errorf("cycle after timeout = %d, want 15", clk.Cycle())
	}
}

func TestProbeSeesPostEdgeState(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	c := &counter{out: w}
	clk.Register(c)
	var got []uint64
	clk.Probe(func(cycle uint64) { got = append(got, w.Get()) })
	clk.Run(3)
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("probe %d saw %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWireHoldsValue(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", 42)
	clk.Run(5)
	if w.Get() != 42 {
		t.Errorf("undriven wire = %d, want 42", w.Get())
	}
	w.Set(7)
	if w.Get() != 42 {
		t.Errorf("wire visible before edge: %d, want 42", w.Get())
	}
	clk.Step()
	if w.Get() != 7 {
		t.Errorf("wire after edge = %d, want 7", w.Get())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(124)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(123).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%63) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

// counter increments a register every cycle and drives it onto a wire.
type counter struct {
	n   uint64
	out *Wire[uint64]
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Eval()        { c.out.Set(c.n + 1) }
func (c *counter) Commit()      { c.n++ }

// follower copies its input wire into a register.
type follower struct {
	in   *Wire[uint64]
	seen []uint64
	next uint64
}

func (f *follower) Name() string { return "follower" }
func (f *follower) Eval()        { f.next = f.in.Get() }
func (f *follower) Commit()      { f.seen = append(f.seen, f.next) }

func TestWireRegistersOneCycle(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	c := &counter{out: w}
	f := &follower{in: w}
	clk.Register(c, f)

	clk.Run(4)
	// The follower must see each counter value exactly one cycle late:
	// cycle 1 it reads the initial 0, cycle 2 it reads 1 (staged during
	// cycle 1), etc.
	want := []uint64{0, 1, 2, 3}
	if len(f.seen) != len(want) {
		t.Fatalf("follower saw %d values, want %d", len(f.seen), len(want))
	}
	for i, v := range want {
		if f.seen[i] != v {
			t.Errorf("cycle %d: follower saw %d, want %d", i+1, f.seen[i], v)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	// Two clock domains with the same components registered in opposite
	// order must produce identical traces.
	run := func(swap bool) []uint64 {
		clk := NewClock()
		w := NewWire(clk, "w", uint64(0))
		c := &counter{out: w}
		f := &follower{in: w}
		if swap {
			clk.Register(f, c)
		} else {
			clk.Register(c, f)
		}
		clk.Run(16)
		return f.seen
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d: order-dependent result %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunUntil(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	c := &counter{out: w}
	clk.Register(c)

	if err := clk.RunUntil(func() bool { return c.n == 10 }, 100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if clk.Cycle() != 10 {
		t.Errorf("cycle = %d, want 10", clk.Cycle())
	}
	err := clk.RunUntil(func() bool { return false }, 5)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("RunUntil error = %v, want ErrTimeout", err)
	}
	if clk.Cycle() != 15 {
		t.Errorf("cycle after timeout = %d, want 15", clk.Cycle())
	}
}

func TestProbeSeesPostEdgeState(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	c := &counter{out: w}
	clk.Register(c)
	var got []uint64
	clk.Probe(func(cycle uint64) { got = append(got, w.Get()) })
	clk.Run(3)
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("probe %d saw %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWireHoldsValue(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", 42)
	clk.Run(5)
	if w.Get() != 42 {
		t.Errorf("undriven wire = %d, want 42", w.Get())
	}
	w.Set(7)
	if w.Get() != 42 {
		t.Errorf("wire visible before edge: %d, want 42", w.Get())
	}
	clk.Step()
	if w.Get() != 7 {
		t.Errorf("wire after edge = %d, want 7", w.Get())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRand(124)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(123).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%63) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

// pulser implements Idler: it counts down `work` evals, then idles. It
// records the cycle numbers at which it was evaluated.
type pulser struct {
	clk   *Clock
	work  int
	evals []uint64
}

func (p *pulser) Name() string { return "pulser" }
func (p *pulser) Eval() {
	p.evals = append(p.evals, p.clk.Cycle()+1)
	if p.work > 0 {
		p.work--
	}
}
func (p *pulser) Commit()    {}
func (p *pulser) Idle() bool { return p.work == 0 }

func TestIdlerSleepsAndQuiesces(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 3}
	clk.Register(p)
	if clk.ActiveCount() != 1 {
		t.Fatalf("fresh component inactive")
	}
	clk.Run(10)
	if got := len(p.evals); got != 3 {
		t.Errorf("pulser evaluated %d times, want 3", got)
	}
	if clk.ActiveCount() != 0 {
		t.Errorf("idle component still active")
	}
	if !clk.Quiescent() {
		t.Error("clock not quiescent with all components asleep")
	}
	if err := clk.RunUntilQuiescent(5); err != nil {
		t.Errorf("RunUntilQuiescent on quiescent clock: %v", err)
	}
	if clk.Cycle() != 10 {
		t.Errorf("RunUntilQuiescent stepped a quiescent clock to %d", clk.Cycle())
	}
}

func TestWakeReactivates(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Run(5) // evaluates at cycle 1, then sleeps
	p.work = 2
	clk.Wake(p)
	clk.Run(5)
	want := []uint64{1, 6, 7}
	if len(p.evals) != len(want) {
		t.Fatalf("eval cycles %v, want %v", p.evals, want)
	}
	for i := range want {
		if p.evals[i] != want[i] {
			t.Fatalf("eval cycles %v, want %v", p.evals, want)
		}
	}
}

func TestWakeAtTimer(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Run(3) // evaluates at cycle 1, sleeps from cycle 1 on
	p.work = 1
	clk.WakeAt(10, p)
	if clk.Quiescent() {
		t.Error("armed timer should not be quiescent")
	}
	if err := clk.RunUntilQuiescent(100); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 10}
	if len(p.evals) != 2 || p.evals[0] != want[0] || p.evals[1] != want[1] {
		t.Fatalf("eval cycles %v, want %v", p.evals, want)
	}
}

func TestRunUntilQuiescentTimeout(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	clk.Register(&counter{out: w}) // counter never idles
	err := clk.RunUntilQuiescent(7)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if clk.Cycle() != 7 {
		t.Errorf("cycle = %d, want 7", clk.Cycle())
	}
}

// watcherComp sleeps immediately and logs the wire values it observes
// when woken.
type watcherComp struct {
	in   *Wire[uint64]
	clk  *Clock
	seen map[uint64]uint64 // cycle -> value observed
}

func (w *watcherComp) Name() string { return "watcher" }
func (w *watcherComp) Eval()        { w.seen[w.clk.Cycle()+1] = w.in.Get() }
func (w *watcherComp) Commit()      {}
func (w *watcherComp) Idle() bool   { return true }

// stepDriver drives a wire to a new value at chosen cycles.
type stepDriver struct {
	out    *Wire[uint64]
	clk    *Clock
	values map[uint64]uint64 // set out to v during the eval of this cycle
}

func (d *stepDriver) Name() string { return "driver" }
func (d *stepDriver) Eval() {
	if v, ok := d.values[d.clk.Cycle()+1]; ok {
		d.out.Set(v)
	}
}
func (d *stepDriver) Commit() {}

// TestWatchWakeMatchesDense: a sleeping watcher must observe a changed
// wire on exactly the cycle a dense simulation would have, and must not
// be woken by latches that do not change the value.
func TestWatchWakeMatchesDense(t *testing.T) {
	run := func(sparse bool) map[uint64]uint64 {
		clk := NewClock()
		clk.SetActivityScheduling(sparse)
		w := NewWire(clk, "w", uint64(0))
		d := &stepDriver{out: w, clk: clk, values: map[uint64]uint64{3: 7, 5: 7, 9: 8}}
		wc := &watcherComp{in: w, clk: clk, seen: make(map[uint64]uint64)}
		Watch(w, wc)
		clk.Register(d, wc)
		clk.Run(15)
		return wc.seen
	}
	dense := run(false)
	sparse := run(true)
	// Dense observes every cycle; keep only the cycles sparse ran and
	// require the observed values to agree there.
	for cyc, v := range sparse {
		if dense[cyc] != v {
			t.Errorf("cycle %d: sparse saw %d, dense saw %d", cyc, v, dense[cyc])
		}
	}
	// The change staged at cycle 3 latches at the end of 3, so the
	// watcher must run (and see 7) at cycle 4; same for 9 -> 10. The
	// re-stage of the same value at cycle 5 must not wake it.
	if v, ok := sparse[4]; !ok || v != 7 {
		t.Errorf("watcher at cycle 4: %v %v, want 7", v, ok)
	}
	if v, ok := sparse[10]; !ok || v != 8 {
		t.Errorf("watcher at cycle 10: %v %v, want 8", v, ok)
	}
	if _, ok := sparse[6]; ok {
		t.Error("watcher woken by a latch that did not change the value")
	}
}

// TestTimeWarpJumpsToTimer: with the domain dead and a timer armed,
// one Step must land exactly on the timer's cycle, evaluating the
// component on the same cycle a per-cycle run would.
func TestTimeWarpJumpsToTimer(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Step() // evaluates at cycle 1, then sleeps
	p.work = 1
	clk.WakeAt(1000, p)
	clk.Step() // dead domain: must warp straight to the timer
	if clk.Cycle() != 1000 {
		t.Fatalf("cycle after warped step = %d, want 1000", clk.Cycle())
	}
	want := []uint64{1, 1000}
	if len(p.evals) != 2 || p.evals[0] != want[0] || p.evals[1] != want[1] {
		t.Fatalf("eval cycles %v, want %v", p.evals, want)
	}
}

// TestTimeWarpOffStepsEveryCycle: SetTimeWarp(false) restores the
// one-cycle-per-Step reference behaviour on a dead domain.
func TestTimeWarpOffStepsEveryCycle(t *testing.T) {
	clk := NewClock()
	clk.SetTimeWarp(false)
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Step()
	p.work = 1
	clk.WakeAt(10, p)
	for i := 0; i < 5; i++ {
		clk.Step()
	}
	if clk.Cycle() != 6 {
		t.Fatalf("cycle = %d, want 6 (no warping)", clk.Cycle())
	}
	clk.Run(10)
	if clk.Cycle() != 16 {
		t.Fatalf("cycle = %d, want 16", clk.Cycle())
	}
	if len(p.evals) != 2 || p.evals[1] != 10 {
		t.Fatalf("eval cycles %v, want [1 10]", p.evals)
	}
}

// TestProbeRangeTilesSkippedSpans: per-cycle probes and range probes
// must together cover every simulated cycle exactly once, so a
// per-cycle accumulator integrating ranges stays bit-identical to
// dense evaluation.
func TestProbeRangeTilesSkippedSpans(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 2}
	clk.Register(p)
	covered := make(map[uint64]int)
	clk.Probe(func(cycle uint64) { covered[cycle]++ })
	clk.ProbeRange(func(from, to uint64) {
		if from > to {
			t.Fatalf("empty range [%d, %d]", from, to)
		}
		for c := from; c <= to; c++ {
			covered[c]++
		}
	})
	clk.WakeAt(40, p) // fires mid-run
	clk.Run(100)      // sleeps after cycle 2, warps 3..39 and 41..100
	if clk.Cycle() != 100 {
		t.Fatalf("cycle = %d, want 100", clk.Cycle())
	}
	for c := uint64(1); c <= 100; c++ {
		if covered[c] != 1 {
			t.Fatalf("cycle %d covered %d times, want exactly once", c, covered[c])
		}
	}
}

// TestRunWarpNeverOvershoots: Run's cycle budget must cap a warp even
// when the earliest timer lies beyond it.
func TestRunWarpNeverOvershoots(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Step()
	p.work = 1
	clk.WakeAt(1000, p)
	clk.Run(50)
	if clk.Cycle() != 51 {
		t.Fatalf("cycle = %d, want 51 (budget-capped)", clk.Cycle())
	}
	if len(p.evals) != 1 {
		t.Fatalf("timer fired early: evals %v", p.evals)
	}
	clk.Run(2000)
	if clk.Cycle() != 2051 {
		t.Fatalf("cycle = %d, want 2051", clk.Cycle())
	}
	if len(p.evals) != 2 || p.evals[1] != 1000 {
		t.Fatalf("eval cycles %v, want second at 1000", p.evals)
	}
}

// TestWakeAtCoalescesDuplicates: re-arming the same (component, cycle)
// deadline must not grow the timer heap — the leak a periodic
// component re-arming every Eval would otherwise cause.
func TestWakeAtCoalescesDuplicates(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Step()
	for i := 0; i < 100; i++ {
		clk.WakeAt(50, p)
	}
	if got := clk.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d after 100 duplicate arms, want 1", got)
	}
	p.work = 1
	if err := clk.RunUntilQuiescent(100); err != nil {
		t.Fatal(err)
	}
	if len(p.evals) != 2 || p.evals[1] != 50 {
		t.Fatalf("eval cycles %v, want second at 50", p.evals)
	}
	// After the timer fired, the same deadline cycle must be armable
	// again (for a new simulation phase at a later cycle).
	clk.WakeAt(200, p)
	clk.WakeAt(200, p)
	if got := clk.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d after re-arm, want 1", got)
	}
}

// TestWakeAtDistinctCyclesAllFire: distinct deadlines for one component
// are not coalesced away.
func TestWakeAtDistinctCyclesAllFire(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk, work: 1}
	clk.Register(p)
	clk.Step()
	clk.WakeAt(10, p)
	clk.WakeAt(30, p)
	clk.WakeAt(20, p)
	if got := clk.PendingTimers(); got != 3 {
		t.Fatalf("PendingTimers = %d, want 3", got)
	}
	if err := clk.RunUntilQuiescent(100); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 10, 20, 30}
	if len(p.evals) != len(want) {
		t.Fatalf("eval cycles %v, want %v", p.evals, want)
	}
	for i := range want {
		if p.evals[i] != want[i] {
			t.Fatalf("eval cycles %v, want %v", p.evals, want)
		}
	}
}

// TestWatchMultipleWatchers: every watcher of a wire must be woken by a
// value-changing edge, each observing the new value on the same cycle.
func TestWatchMultipleWatchers(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	d := &stepDriver{out: w, clk: clk, values: map[uint64]uint64{5: 9}}
	a := &watcherComp{in: w, clk: clk, seen: make(map[uint64]uint64)}
	b := &watcherComp{in: w, clk: clk, seen: make(map[uint64]uint64)}
	Watch(w, a, b)
	clk.Register(d, a, b)
	clk.Run(10)
	for name, wc := range map[string]*watcherComp{"a": a, "b": b} {
		if v, ok := wc.seen[6]; !ok || v != 9 {
			t.Errorf("watcher %s at cycle 6: %v %v, want 9", name, v, ok)
		}
	}
}

// TestWatchAfterStagedSet: a watcher registered between a staged Set
// and the edge that latches it must still be woken by that edge.
func TestWatchAfterStagedSet(t *testing.T) {
	clk := NewClock()
	w := NewWire(clk, "w", uint64(0))
	wc := &watcherComp{in: w, clk: clk, seen: make(map[uint64]uint64)}
	clk.Register(wc)
	clk.Run(3) // watcher asleep from cycle 1 on
	w.Set(7)   // staged outside Eval, awaiting the next edge
	Watch(w, wc)
	clk.Run(3)
	if v, ok := wc.seen[5]; !ok || v != 7 {
		t.Fatalf("watcher after late registration: seen %v, want 7 at cycle 5", wc.seen)
	}
}

// TestWatchDenseMode: with activity scheduling off the watcher
// machinery must be inert but harmless — the watcher (evaluated every
// cycle anyway) observes exactly what the sparse run's wakes showed it.
func TestWatchDenseMode(t *testing.T) {
	run := func(sparse bool) map[uint64]uint64 {
		clk := NewClock()
		clk.SetActivityScheduling(sparse)
		w := NewWire(clk, "w", uint64(0))
		d := &stepDriver{out: w, clk: clk, values: map[uint64]uint64{4: 3, 8: 11}}
		wc := &watcherComp{in: w, clk: clk, seen: make(map[uint64]uint64)}
		Watch(w, wc)
		clk.Register(d, wc)
		clk.Run(12)
		return wc.seen
	}
	dense, sparse := run(false), run(true)
	for cyc, v := range sparse {
		if dense[cyc] != v {
			t.Errorf("cycle %d: sparse saw %d, dense saw %d", cyc, v, dense[cyc])
		}
	}
	if v := dense[5]; v != 3 {
		t.Errorf("dense watcher at cycle 5 = %d, want 3", v)
	}
	if v := dense[9]; v != 11 {
		t.Errorf("dense watcher at cycle 9 = %d, want 11", v)
	}
}

// TestDenseKernelEquivalence runs the counter/follower pair under both
// kernels and requires identical traces.
func TestDenseKernelEquivalence(t *testing.T) {
	run := func(sparse bool) []uint64 {
		clk := NewClock()
		clk.SetActivityScheduling(sparse)
		w := NewWire(clk, "w", uint64(0))
		c := &counter{out: w}
		f := &follower{in: w}
		clk.Register(c, f)
		clk.Run(20)
		return f.seen
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d: sparse %d, dense %d", i, a[i], b[i])
		}
	}
}

package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Group couples several clock domains into one GALS system simulating a
// single shared timeline. Domains exchange state only through mirror
// wires (MirrorWire), whose one-cycle boundary latency is the lookahead
// that lets each domain advance — and warp its own dead spans —
// independently of its neighbours, up to min(upstream horizons) + 1.
//
// Run, RunUntilQuiescent and Step on any grouped Clock delegate here,
// so harness code built against a single Clock drives a sharded system
// unchanged. With SetParallel(false), the default, every domain
// executes cycle c before any executes c+1 and the results are
// bit-identical to registering everything on one Clock; with
// SetParallel(true) each domain runs on its own goroutine under the
// conservative horizon protocol, deterministic for a fixed partition.
type Group struct {
	clocks   []*Clock
	parallel bool
	// quantum is the chunk size (in cycles) a parallel
	// RunUntilQuiescent advances between quiescence checks; quiescence
	// is a cross-domain predicate, so parallel drains join the
	// goroutines at quantum boundaries to evaluate it. The cycle
	// counter may overshoot the quiescence point by up to a quantum;
	// post-quiescence steps change no state, so nothing observes this.
	quantum uint64

	// mu/cond/sleepers park domain goroutines blocked on an upstream
	// horizon. sleepers counts parked (or about-to-park) goroutines so
	// publishers can skip the lock-and-broadcast when nobody waits.
	mu       sync.Mutex
	cond     *sync.Cond
	sleepers int
}

// NewGroup creates a group of n empty clock domains sharing one
// timeline. Components and wires are then built on the individual
// domains (Clock(i)) exactly as on a standalone Clock; cross-domain
// signals are carried by MirrorWire.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("sim: NewGroup needs at least one domain")
	}
	g := &Group{quantum: 4096}
	g.cond = sync.NewCond(&g.mu)
	g.clocks = make([]*Clock, n)
	for i := range g.clocks {
		c := NewClock()
		c.group = g
		c.domIdx = i
		g.clocks[i] = c
	}
	return g
}

// Domains reports the number of clock domains in the group.
func (g *Group) Domains() int { return len(g.clocks) }

// Clock returns domain i.
func (g *Group) Clock(i int) *Clock { return g.clocks[i] }

// Cycle reports the shared timeline's cycle count. Domains agree
// whenever the group is joined (between Run calls).
func (g *Group) Cycle() uint64 { return g.clocks[0].cycle }

// SetParallel selects parallel execution (one goroutine per domain) for
// Run and RunUntilQuiescent. Off — the default — every call runs the
// domains in serial lockstep, bit-identical to a single-Clock build.
// RunUntil is always lockstep: its predicate reads cross-domain state
// after every cycle, which is exactly the synchronization parallel
// execution relaxes.
func (g *Group) SetParallel(on bool) { g.parallel = on }

// SetActivityScheduling applies Clock.SetActivityScheduling to every
// domain.
func (g *Group) SetActivityScheduling(on bool) {
	for _, c := range g.clocks {
		c.SetActivityScheduling(on)
	}
}

// SetTimeWarp applies Clock.SetTimeWarp to every domain.
func (g *Group) SetTimeWarp(on bool) {
	for _, c := range g.clocks {
		c.SetTimeWarp(on)
	}
}

// SetCancel applies Clock.SetCancel to every domain: one hook shared by
// the whole group. In a parallel run every domain goroutine consults
// the hook independently, so it must be safe for concurrent calls (a
// context Err poll is; a closure over a single Clock's Cycle is not —
// install per-domain closures with Clock.SetCancel for those).
//
// Cancellation abandons the run: a parallel run stopped by the hook may
// leave the domains at unequal cycle counts, so the caller must discard
// the simulation rather than continue it.
func (g *Group) SetCancel(fn func() bool) {
	for _, c := range g.clocks {
		c.SetCancel(fn)
	}
}

// canceled consults every domain's cancellation hook. It is only
// called from the lockstep loops (single-threaded) and between joined
// parallel chunks, never concurrently with domain goroutines.
func (g *Group) canceled() bool {
	for _, c := range g.clocks {
		if c.canceled() {
			return true
		}
	}
	return false
}

// stepLockstep executes exactly one cycle in every domain: every
// domain runs the state half of the cycle (Eval/Commit/latch), then —
// once every producer has latched — the mirror events of this cycle
// are delivered, and finally the observing half (probes, idle
// retirement) runs. Delivering between the halves makes a mirror's
// latched value visible to this cycle's probes on exactly the tick the
// source latched it, so dumps of boundary routers match an unsharded
// build byte for byte; the domain order within each sweep is
// immaterial.
func (g *Group) stepLockstep() {
	for _, c := range g.clocks {
		c.stepCore()
	}
	for _, c := range g.clocks {
		c.drainInbound()
	}
	for _, c := range g.clocks {
		c.stepFinish()
	}
}

// warpLockstep jumps every domain over a group-wide dead span: all
// domains dead, nothing staged, target capped by every domain's
// earliest timer and earliest pending mirror event — the same
// conditions a single Clock holding all components would apply.
func (g *Group) warpLockstep(limit uint64) {
	target := limit
	for _, c := range g.clocks {
		if c.dense || c.noWarp ||
			len(c.activeList) != 0 || len(c.pending) != 0 || len(c.dirty) != 0 {
			return
		}
		if len(c.timers) > 0 && c.timers[0].cycle < target {
			target = c.timers[0].cycle
		}
		if c.inQ != nil {
			if b := c.inboundBound(); b < target {
				target = b
			}
		}
	}
	if target == warpUnbounded || target <= g.clocks[0].cycle+1 {
		return
	}
	for _, c := range g.clocks {
		c.jumpTo(target)
	}
}

// Step advances the whole group to its next event: one lockstep cycle,
// preceded by a group-wide warp over a dead span.
func (g *Group) Step() {
	g.warpLockstep(warpUnbounded)
	g.stepLockstep()
}

// Run advances the shared timeline by exactly n cycles.
func (g *Group) Run(n uint64) {
	target := g.clocks[0].cycle + n
	if g.parallel {
		g.runParallel(target)
		return
	}
	for g.clocks[0].cycle < target {
		if g.canceled() {
			return
		}
		g.warpLockstep(target)
		g.stepLockstep()
	}
}

// RunUntil steps the group in lockstep until pred returns true, or
// fails with ErrTimeout after maxCycles. pred may read state anywhere
// in the system; lockstep keeps every domain at the same cycle when it
// runs, exactly as on a single Clock.
func (g *Group) RunUntil(pred func() bool, maxCycles uint64) error {
	target := g.clocks[0].cycle + maxCycles
	for g.clocks[0].cycle < target {
		if g.canceled() {
			return fmt.Errorf("%w at cycle %d", ErrCanceled, g.clocks[0].cycle)
		}
		g.warpLockstep(target)
		g.stepLockstep()
		if pred() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
}

// Quiescent reports whether no domain can make further progress: every
// domain locally quiescent and no mirror event in flight.
func (g *Group) Quiescent() bool {
	for _, c := range g.clocks {
		if !c.quiescentLocal() {
			return false
		}
	}
	return true
}

// RunUntilQuiescent advances until all in-flight activity has drained,
// or fails with ErrTimeout after maxCycles. In parallel mode the
// domains run in quantum-sized chunks between quiescence checks; when
// a chunk ends quiescent, the cycle counters are rewound to the last
// cycle any domain did real work — the exact cycle a lockstep run
// stops at — so the timeline of everything the caller does afterwards
// stays bit-identical to a serial run. The rewound span executed no
// component and changed no state; only probes attached to the group
// could observe it (a cross-mode VCD trace is unaffected: no change
// records are emitted for frozen signals).
func (g *Group) RunUntilQuiescent(maxCycles uint64) error {
	start := g.clocks[0].cycle
	target := start + maxCycles
	for g.clocks[0].cycle < target {
		if g.Quiescent() {
			g.rewindToQuiescence(start)
			return nil
		}
		if g.canceled() {
			return fmt.Errorf("%w at cycle %d", ErrCanceled, g.clocks[0].cycle)
		}
		if g.parallel {
			chunk := target
			if t := g.clocks[0].cycle + g.quantum; t < target {
				chunk = t
			}
			g.runParallel(chunk)
		} else {
			g.warpLockstep(target)
			g.stepLockstep()
		}
	}
	if g.Quiescent() {
		g.rewindToQuiescence(start)
		return nil
	}
	return fmt.Errorf("%w: not quiescent after %d cycles", ErrTimeout, maxCycles)
}

// rewindToQuiescence undoes the chunk-boundary overshoot of a parallel
// drain: it moves every domain's counter back to the group-wide last
// cycle that did real work, never below the drain's own start cycle
// (dead time before the call is the caller's, not the drain's).
// Lockstep drains stop on exactly that cycle already, so the rewind is
// a no-op for them.
func (g *Group) rewindToQuiescence(floor uint64) {
	q := floor
	for _, c := range g.clocks {
		if c.lastActive > q {
			q = c.lastActive
		}
	}
	for _, c := range g.clocks {
		if c.cycle > q {
			c.cycle = q
		}
	}
}

// runParallel advances every domain to exactly the target cycle, one
// goroutine per domain, under the conservative horizon protocol.
func (g *Group) runParallel(target uint64) {
	if len(g.clocks) == 1 {
		c := g.clocks[0]
		for c.cycle < target {
			if c.canceled() {
				return
			}
			c.warp(target)
			c.step()
		}
		return
	}
	for _, c := range g.clocks {
		c.horizon.Store(c.cycle)
	}
	var wg sync.WaitGroup
	wg.Add(len(g.clocks))
	for _, c := range g.clocks {
		go func(c *Clock) {
			defer wg.Done()
			c.runDomain(target)
		}(c)
	}
	wg.Wait()
}

// runDomain is one domain's parallel run loop, mirroring the lockstep
// three-sweep schedule per cycle. The domain warps and runs the state
// half of a cycle within min(upstream horizons)+1 — the one-cycle
// mirror lookahead — publishes its own horizon, then waits until every
// upstream domain has also completed that cycle (after which every
// mirror event of the cycle has been queued), delivers the events, and
// runs the observing half. Each domain publishes its horizon before
// waiting, and the domain with the minimum cycle always satisfies its
// wait (upstream horizons are at least the minimum), so the group as a
// whole cannot deadlock.
func (c *Clock) runDomain(target uint64) {
	g := c.group
	for c.cycle < target {
		// A cancelled domain bows out by publishing its horizon at the
		// run target: downstream domains never block on it again (they
		// advance at most to target themselves, on frozen mirror inputs)
		// and the group joins without deadlock. The caller that armed
		// the hook abandons the run's results, so the uneven stop cycles
		// across domains are never observed.
		if c.canceled() {
			c.horizon.Store(target)
			g.wakeSleepers()
			return
		}
		limit := target
		for _, u := range c.upstream {
			if h := g.clocks[u].horizon.Load() + 1; h < limit {
				limit = h
			}
		}
		c.warp(limit)
		c.stepCore()
		c.horizon.Store(c.cycle)
		g.wakeSleepers()
		if len(c.upstream) > 0 {
			c.waitUpstream(c.cycle)
			c.drainInbound()
		}
		c.stepFinish()
	}
}

// waitUpstream blocks until every upstream domain's horizon reaches
// cyc. It spins briefly (the common case: neighbours are at most a few
// cycles apart), then parks on the group's condition variable.
func (c *Clock) waitUpstream(cyc uint64) {
	g := c.group
	for spin := 0; ; spin++ {
		ok := true
		for _, u := range c.upstream {
			if g.clocks[u].horizon.Load() < cyc {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if spin < 64 {
			runtime.Gosched()
			continue
		}
		// Park. The recheck under the lock closes the race with a
		// publisher: either the horizon store is visible here, or the
		// publisher acquires the lock after us, sees sleepers > 0 and
		// broadcasts.
		g.mu.Lock()
		ok = true
		for _, u := range c.upstream {
			if g.clocks[u].horizon.Load() < cyc {
				ok = false
				break
			}
		}
		if ok {
			g.mu.Unlock()
			return
		}
		g.sleepers++
		g.cond.Wait()
		g.sleepers--
		g.mu.Unlock()
	}
}

// wakeSleepers wakes parked domains after a horizon advance.
func (g *Group) wakeSleepers() {
	g.mu.Lock()
	if g.sleepers > 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// crossEvent is one mirror-wire change crossing a domain boundary: the
// producing wire latched val at the end of cycle `cycle`, so the
// consuming domain applies it before executing the step that ends at
// cycle+1.
type crossEvent struct {
	cycle uint64
	sink  mirrorSink
	val   any
}

// mirrorSink is implemented by mirror wires: applyMirror publishes a
// boxed value of the wire's type in the consuming domain.
type mirrorSink interface{ applyMirror(val any) }

// crossQueue carries mirror events from one producing domain to one
// consuming domain, in latch order. The mutex is the happens-before
// edge for the value payload; ordering and capacity need no further
// protocol because the horizon handshake guarantees the consumer never
// needs an event the producer has not yet queued.
type crossQueue struct {
	mu   sync.Mutex
	evs  []crossEvent
	head int
}

func (q *crossQueue) push(cycle uint64, sink mirrorSink, val any) {
	q.mu.Lock()
	q.evs = append(q.evs, crossEvent{cycle: cycle, sink: sink, val: val})
	q.mu.Unlock()
}

// peekCycle reports the earliest pending event's latch cycle.
func (q *crossQueue) peekCycle() (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.evs) {
		return 0, false
	}
	return q.evs[q.head].cycle, true
}

// drainTo applies, in order, every event latched at or before cycle,
// reporting whether any was.
func (q *crossQueue) drainTo(cycle uint64) bool {
	q.mu.Lock()
	applied := false
	for q.head < len(q.evs) && q.evs[q.head].cycle <= cycle {
		ev := q.evs[q.head]
		q.evs[q.head] = crossEvent{} // drop payload references
		q.head++
		ev.sink.applyMirror(ev.val)
		applied = true
	}
	if q.head == len(q.evs) {
		q.evs = q.evs[:0]
		q.head = 0
	}
	q.mu.Unlock()
	return applied
}

// inQueueFrom returns (creating on demand) the consumer's event queue
// fed by the src domain, and records the upstream dependency for the
// horizon protocol.
func (c *Clock) inQueueFrom(src *Clock) *crossQueue {
	if c.inQ == nil {
		c.inQ = make([]*crossQueue, len(c.group.clocks))
	}
	if c.inQ[src.domIdx] == nil {
		c.inQ[src.domIdx] = &crossQueue{}
		c.upstream = append(c.upstream, src.domIdx)
	}
	return c.inQ[src.domIdx]
}

package sim

import "math"

// Rand is a small deterministic pseudo-random number generator
// (SplitMix64). Hardware models and workload generators use it instead
// of math/rand so that every simulation is reproducible from its seed
// alone and independent of the Go runtime version.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical sequences forever.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns the 1-based index of the first success in a
// sequence of independent Bernoulli(p) trials, sampled by inverting the
// geometric CDF from a single uniform draw. Event generators use it to
// jump straight to their next event cycle — and sleep until it —
// instead of drawing Bool(p) every cycle. It returns 0 when p <= 0
// (the event never happens) and 1 when p >= 1.
func (r *Rand) Geometric(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	u := r.Float64()
	g := math.Ceil(math.Log(1-u) / math.Log(1-p))
	if g < 1 {
		return 1
	}
	return uint64(g)
}

// Package sim provides the two-phase synchronous simulation kernel that
// every hardware model in this repository runs on.
//
// # Two-phase semantics
//
// The kernel mirrors register-transfer-level semantics: a component reads
// the *current* value of its input wires during Eval and computes its next
// state; Commit then latches all next states at once, like a global clock
// edge hitting every flip-flop. Because no Eval can observe another
// component's same-cycle output, simulation results are independent of
// component registration order, making every run bit-for-bit
// deterministic.
//
// # Activity scheduling
//
// Dense RTL simulation evaluates every component every cycle, which makes
// large, mostly-idle systems (a 16x16 mesh with one packet in flight)
// pay for hundreds of no-op Evals per cycle. The kernel therefore keeps
// an *active set*: a component that additionally implements Idler is put
// to sleep at the end of any cycle in which Idle() reports true, and is
// skipped entirely — no Eval, no Commit — until something wakes it.
//
// A sleeping component may be woken three ways:
//
//   - Wire.Watch / sim.Watch — a clock edge that changes a watched
//     wire's value wakes the watchers for the next cycle. This is how a
//     router sleeping on empty buffers is woken by the rising tx of an
//     incoming link: the upstream sender stages tx in cycle k, the edge
//     latches it, and the watcher evaluates in cycle k+1 — exactly the
//     cycle in which a dense simulation would first observe the new
//     value. Wake-on-change therefore preserves bit-identical results.
//   - Clock.Wake — an explicit wake, used when state is handed to a
//     sleeping component outside the wire protocol (e.g. a packet
//     staged on an endpoint's injection queue, or a received packet
//     completing for the endpoint's owning IP). A Wake issued during
//     the Eval phase joins the component to the *current* cycle: its
//     Commit runs this edge, so state staged on it by the caller
//     latches on the same edge it would have latched in a dense run.
//     (Such a component may see Commit without a same-cycle Eval; that
//     is safe by construction — a component asleep at Eval time had
//     quiescent combinational outputs, so its skipped Eval was a
//     no-op.) A Wake issued at any other time takes effect at the next
//     Step.
//   - Clock.WakeAt — a timer: the component is woken so that it is
//     active during the step that ends at the given cycle count.
//
// A component may therefore report Idle() exactly when (a) its Eval
// would stage no state change and drive no wire to a new value, and (b)
// every event that could change that fact also wakes it (via a watched
// wire, an explicit Wake from whoever hands it work, or a timer).
// Components that never satisfy this — or that predate the protocol —
// simply do not implement Idler and run every cycle, which is always
// correct, only slower — and, since they never retire from the active
// set, a domain containing one never reports Quiescent (quiescence
// callers then run to their cycle budgets).
//
// Wires participate too: a wire only latches on edges following a Set
// (its driver is asleep otherwise and the value holds by definition), so
// idle links cost nothing.
//
// Determinism is unaffected by any of this: the active set only ever
// skips Evals that stage nothing and Commits that latch nothing, wakes
// are applied at deterministic points of the cycle, and iteration stays
// in registration order. The same seed yields bit-identical results
// with activity scheduling on or off; SetActivityScheduling(false)
// restores the dense reference behaviour for differential testing.
package sim

import (
	"errors"
	"fmt"
)

// Component is a clocked hardware block. Eval must only read wire values
// published in previous cycles (Wire.Get) and stage new ones (Wire.Set);
// Commit latches internal registers. Components must not communicate
// outside of Wires.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Eval performs the combinational phase for the current cycle.
	Eval()
	// Commit performs the clock-edge phase, latching state computed by
	// Eval.
	Commit()
}

// Idler is optionally implemented by components that can sleep. Idle is
// consulted after every clock edge; a true result removes the component
// from the active set until a watched wire changes, Clock.Wake is
// called, or a Clock.WakeAt timer fires. See the package comment for
// the exact contract.
type Idler interface {
	Component
	// Idle reports whether the component's Eval would currently be a
	// no-op: no staged work, no pending input, all driven wires at
	// their rest values.
	Idle() bool
}

// latcher is the internal interface wires implement so the clock can
// latch them after all components commit.
type latcher interface{ latch() }

// wakeTimer is one pending WakeAt request.
type wakeTimer struct {
	cycle uint64
	idx   int
}

// Clock drives a set of components and wires with a shared synchronous
// clock. The zero value is ready to use.
type Clock struct {
	comps  []Component
	idlers []Idler // parallel to comps; nil entries never sleep
	active []bool  // parallel to comps: membership in activeList
	index  map[Component]int

	// activeList holds the indices of awake components in arbitrary
	// order (swap-removed on sleep), so Step costs O(active), not
	// O(registered). Order-independence of the two-phase protocol makes
	// the arbitrary order harmless.
	activeList []int
	inEval     bool
	dense      bool // activity scheduling disabled: evaluate everything

	wakePending []bool // parallel to comps; dedups pending
	pending     []int
	timers      []wakeTimer // min-heap on cycle

	dirty    []latcher // wires with a staged Set awaiting this edge
	allWires []latcher // every wire, latched unconditionally in dense mode

	cycle  uint64
	probes []func(cycle uint64)
}

// NewClock returns an empty clock domain.
func NewClock() *Clock { return &Clock{} }

// Register adds components to the clock domain. Registering the same
// component twice double-clocks it; callers must not do that. Newly
// registered components start active.
func (c *Clock) Register(comps ...Component) {
	if c.index == nil {
		c.index = make(map[Component]int)
	}
	for _, comp := range comps {
		i := len(c.comps)
		c.index[comp] = i
		c.comps = append(c.comps, comp)
		id, _ := comp.(Idler)
		c.idlers = append(c.idlers, id)
		c.active = append(c.active, true)
		c.wakePending = append(c.wakePending, false)
		c.activeList = append(c.activeList, i)
	}
}

// Probe registers a function invoked after every cycle commits, with the
// just-completed cycle number. Probes observe post-edge state; they are
// the hook used for waveform tracing and statistics. Probes run every
// cycle regardless of activity.
func (c *Clock) Probe(fn func(cycle uint64)) {
	c.probes = append(c.probes, fn)
}

// Cycle reports how many clock cycles have elapsed.
func (c *Clock) Cycle() uint64 { return c.cycle }

// ComponentCount reports how many components are registered.
func (c *Clock) ComponentCount() int { return len(c.comps) }

// ActiveCount reports how many components will be evaluated next cycle
// (pending wakes not yet applied). With activity scheduling disabled it
// is the total component count.
func (c *Clock) ActiveCount() int {
	if c.dense {
		return len(c.comps)
	}
	return len(c.activeList)
}

// SetActivityScheduling enables (the default) or disables the active-set
// optimization. Disabling it evaluates every component every cycle — the
// dense reference kernel, useful for differential testing and
// benchmarking. Both modes produce bit-identical simulations.
func (c *Clock) SetActivityScheduling(on bool) {
	c.dense = !on
	// Reset the active set to everything: correct for entering dense
	// mode, and the safe starting point when re-entering sparse mode
	// (idle components retire again on the next edges).
	c.activeList = c.activeList[:0]
	for i := range c.active {
		c.active[i] = true
		c.activeList = append(c.activeList, i)
	}
}

// Wake puts comp back into the active set. Called during the Eval phase
// it joins the current cycle (its Commit runs on this edge); called at
// any other time — from a wire watcher, a probe, or code outside Step —
// it takes effect at the next Step. Waking an active, nil, or unknown
// component is a no-op, so callers need not track sleep state.
func (c *Clock) Wake(comp Component) {
	if c.dense || comp == nil {
		return
	}
	i, ok := c.index[comp]
	if !ok {
		return
	}
	if c.inEval {
		c.activate(i)
		return
	}
	if !c.wakePending[i] {
		c.wakePending[i] = true
		c.pending = append(c.pending, i)
	}
}

// WakeAt schedules comp to be active during the step that ends at the
// given cycle count (i.e. it evaluates the transition to that cycle). A
// cycle not in the future degenerates to Wake at the next Step.
func (c *Clock) WakeAt(cycle uint64, comp Component) {
	if c.dense || comp == nil {
		return
	}
	i, ok := c.index[comp]
	if !ok {
		return
	}
	if cycle <= c.cycle+1 {
		c.Wake(comp)
		return
	}
	// Push onto the min-heap.
	c.timers = append(c.timers, wakeTimer{cycle: cycle, idx: i})
	for j := len(c.timers) - 1; j > 0; {
		parent := (j - 1) / 2
		if c.timers[parent].cycle <= c.timers[j].cycle {
			break
		}
		c.timers[parent], c.timers[j] = c.timers[j], c.timers[parent]
		j = parent
	}
}

func (c *Clock) activate(i int) {
	if !c.active[i] {
		c.active[i] = true
		c.activeList = append(c.activeList, i)
	}
}

// applyWakes moves pending and due timer wakes into the active set. It
// runs at the top of Step, so a wake staged in cycle k activates its
// component for cycle k+1.
func (c *Clock) applyWakes() {
	next := c.cycle + 1
	for len(c.timers) > 0 && c.timers[0].cycle <= next {
		c.activate(c.timers[0].idx)
		// Pop the heap root.
		last := len(c.timers) - 1
		c.timers[0] = c.timers[last]
		c.timers = c.timers[:last]
		for j := 0; ; {
			l, r := 2*j+1, 2*j+2
			small := j
			if l < last && c.timers[l].cycle < c.timers[small].cycle {
				small = l
			}
			if r < last && c.timers[r].cycle < c.timers[small].cycle {
				small = r
			}
			if small == j {
				break
			}
			c.timers[small], c.timers[j] = c.timers[j], c.timers[small]
			j = small
		}
	}
	if len(c.pending) > 0 {
		for _, i := range c.pending {
			c.wakePending[i] = false
			c.activate(i)
		}
		c.pending = c.pending[:0]
	}
}

// Step advances the simulation by exactly one clock cycle: wake, Eval
// the active set, Commit it, latch staged wires, then retire idle
// components.
func (c *Clock) Step() {
	if c.dense {
		for _, comp := range c.comps {
			comp.Eval()
		}
		for _, comp := range c.comps {
			comp.Commit()
		}
		// The dense reference latches every wire every cycle, exactly
		// like the original kernel; latch also resets the dirty marks,
		// so the list only needs truncating.
		for _, w := range c.allWires {
			w.latch()
		}
		c.dirty = c.dirty[:0]
		c.cycle++
		for _, p := range c.probes {
			p(c.cycle)
		}
		return
	}
	c.applyWakes()
	// Explicit index loops: a Wake during the Eval phase appends to
	// activeList, and the appended component must still be visited —
	// its Eval is a no-op (it was asleep, so its inputs are quiescent)
	// but its Commit latches whatever the waker staged on it, exactly
	// as in a dense run.
	c.inEval = true
	for k := 0; k < len(c.activeList); k++ {
		c.comps[c.activeList[k]].Eval()
	}
	c.inEval = false
	for k := 0; k < len(c.activeList); k++ {
		c.comps[c.activeList[k]].Commit()
	}
	// Only wires whose driver staged a value this cycle need latching;
	// watchers of wires whose latched value changes are woken here.
	if len(c.dirty) > 0 {
		for _, w := range c.dirty {
			w.latch()
		}
		c.dirty = c.dirty[:0]
	}
	c.cycle++
	for _, p := range c.probes {
		p(c.cycle)
	}
	for k := 0; k < len(c.activeList); {
		i := c.activeList[k]
		if id := c.idlers[i]; id != nil && id.Idle() {
			c.active[i] = false
			last := len(c.activeList) - 1
			c.activeList[k] = c.activeList[last]
			c.activeList = c.activeList[:last]
		} else {
			k++
		}
	}
}

// Run advances the simulation by n cycles.
func (c *Clock) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// ErrTimeout reports that RunUntil or RunUntilQuiescent exhausted its
// cycle budget before the stop condition became true.
var ErrTimeout = errors.New("sim: watchdog timeout")

// RunUntil steps the clock until pred returns true, or fails with
// ErrTimeout after maxCycles additional cycles. pred is evaluated after
// each cycle commits.
func (c *Clock) RunUntil(pred func() bool, maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		c.Step()
		if pred() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
}

// Quiescent reports whether the simulation can make no further progress
// on its own: every component is asleep (or reports Idle, in dense
// mode), no wakes are pending, no timers are armed and no wire has a
// staged value awaiting an edge. External stimulus — a Send on an
// endpoint, bytes queued on a UART — ends quiescence.
//
// A component that does not implement Idler never leaves the active
// set, so a domain containing one can never report quiescence (its
// simulation stays correct; only Quiescent/RunUntilQuiescent are
// unavailable and callers fall back to their cycle budgets).
func (c *Clock) Quiescent() bool {
	if len(c.dirty) > 0 {
		return false
	}
	if c.dense {
		for _, id := range c.idlers {
			if id == nil || !id.Idle() {
				return false
			}
		}
		return true
	}
	return len(c.activeList) == 0 && len(c.pending) == 0 && len(c.timers) == 0
}

// RunUntilQuiescent steps the clock until the simulation is quiescent —
// all in-flight activity has drained — or fails with ErrTimeout after
// maxCycles. It replaces the "run a generous fixed cycle count and hope
// everything drained" idiom: drivers stop exactly when the hardware
// does, without polling a predicate every cycle.
func (c *Clock) RunUntilQuiescent(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		if c.Quiescent() {
			return nil
		}
		c.Step()
	}
	if c.Quiescent() {
		return nil
	}
	return fmt.Errorf("%w: not quiescent after %d cycles", ErrTimeout, maxCycles)
}

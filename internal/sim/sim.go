// Package sim provides the two-phase synchronous simulation kernel that
// every hardware model in this repository runs on.
//
// # Two-phase semantics
//
// The kernel mirrors register-transfer-level semantics: a component reads
// the *current* value of its input wires during Eval and computes its next
// state; Commit then latches all next states at once, like a global clock
// edge hitting every flip-flop. Because no Eval can observe another
// component's same-cycle output, simulation results are independent of
// component registration order, making every run bit-for-bit
// deterministic.
//
// # Activity scheduling
//
// Dense RTL simulation evaluates every component every cycle, which makes
// large, mostly-idle systems (a 16x16 mesh with one packet in flight)
// pay for hundreds of no-op Evals per cycle. The kernel therefore keeps
// an *active set*: a component that additionally implements Idler is put
// to sleep at the end of any cycle in which Idle() reports true, and is
// skipped entirely — no Eval, no Commit — until something wakes it.
//
// A sleeping component may be woken three ways:
//
//   - Wire.Watch / sim.Watch — a clock edge that changes a watched
//     wire's value wakes the watchers for the next cycle. This is how a
//     router sleeping on empty buffers is woken by the rising tx of an
//     incoming link: the upstream sender stages tx in cycle k, the edge
//     latches it, and the watcher evaluates in cycle k+1 — exactly the
//     cycle in which a dense simulation would first observe the new
//     value. Wake-on-change therefore preserves bit-identical results.
//   - Clock.Wake — an explicit wake, used when state is handed to a
//     sleeping component outside the wire protocol (e.g. a packet
//     staged on an endpoint's injection queue, or a received packet
//     completing for the endpoint's owning IP). A Wake issued during
//     the Eval phase joins the component to the *current* cycle: its
//     Commit runs this edge, so state staged on it by the caller
//     latches on the same edge it would have latched in a dense run.
//     (Such a component may see Commit without a same-cycle Eval; that
//     is safe by construction — a component asleep at Eval time had
//     quiescent combinational outputs, so its skipped Eval was a
//     no-op.) A Wake issued at any other time takes effect at the next
//     Step.
//   - Clock.WakeAt — a timer: the component is woken so that it is
//     active during the step that ends at the given cycle count.
//
// A component may therefore report Idle() exactly when (a) its Eval
// would stage no state change and drive no wire to a new value, and (b)
// every event that could change that fact also wakes it (via a watched
// wire, an explicit Wake from whoever hands it work, or a timer).
// Components that never satisfy this — or that predate the protocol —
// simply do not implement Idler and run every cycle, which is always
// correct, only slower — and, since they never retire from the active
// set, a domain containing one never reports Quiescent (quiescence
// callers then run to their cycle budgets).
//
// Wires participate too: a wire only latches on edges following a Set
// (its driver is asleep otherwise and the value holds by definition), so
// idle links cost nothing.
//
// # Time warping
//
// Activity scheduling makes an idle cycle cheap; time warping makes it
// free. When a cycle about to execute is provably dead — the active set
// is empty, no wakes are pending and no wire has a staged value — the
// only thing that can ever re-start activity is the earliest armed
// WakeAt timer. Step, Run, RunUntil and RunUntilQuiescent therefore
// jump the cycle counter directly to that timer's cycle (bounded by the
// caller's cycle budget) instead of executing the dead span one no-op
// step at a time. A serial transfer that sleeps between bit edges, or a
// low-rate traffic sweep whose injectors sleep between packets, then
// costs executed steps proportional to its *events*, not to simulated
// time.
//
// Skipping is invisible to the simulation itself: during a dead span no
// component evaluates, no wire latches and no state can change, so the
// skipped steps would have done exactly nothing. The only observers
// that notice are per-cycle probes. The contract is:
//
//   - Probe functions run once per *executed* cycle. State is frozen
//     across a skipped span, so a probe that merely samples state loses
//     nothing (a VCD tracer emits no change records either way).
//   - Probes that *accumulate* per cycle (occupancy integrals, busy
//     counters) must also register a ProbeRange hook; it is called with
//     the inclusive cycle interval of every skipped span, before the
//     next executed step, so the accumulator can integrate the frozen
//     state over the span and stay bit-identical to dense evaluation.
//
// SetTimeWarp(false) disables the jump (every cycle is stepped, as in
// PR 1) for differential testing; dense mode never warps.
//
// Models extend the same idea below whole-clock granularity by
// *run-batching* their own periodic protocols: instead of stepping a
// multi-cycle exchange wire by wire, a model that can prove the next n
// cycles of the protocol are predetermined schedules WakeAt timers for
// the cycles on which state actually changes and sleeps in between. The
// UARTs batch a serial run this way (one timer per bit edge rather than
// per clock), and the NoC batches its 2-cycle link handshake into one
// event per flit while a wormhole connection is in steady state (see
// internal/noc: event-per-flit streaming). The contract is the one
// Idle() already imposes: every latch, counter update, and wire change
// the batched span produces must land on exactly the cycle the stepped
// model would produce it, so batching is invisible to differential
// comparison.
//
// # Clock domains and conservative parallelism
//
// A Clock is one clock domain: components, wires, an active set, a wake
// queue and a timer heap of its own. A Group couples several domains
// GALS-style — each domain is locally synchronous, and domains exchange
// state only over mirror wires (MirrorWire), which carry a value across
// the domain boundary with exactly the one-cycle latency an ordinary
// wire has inside a domain. That latency is the lookahead that makes
// conservative parallel simulation possible: a domain that has
// completed cycle h cannot affect a neighbour before cycle h+1, so the
// neighbour may freely simulate up to min(upstream horizons) + 1
// without ever seeing a value out of order (null-message style, after
// Chandy–Misra–Bryant). Within that bound each domain warps its own
// dead spans, so an idle region skips time even while another region is
// busy — the case a single domain can never warp.
//
// Group.SetParallel selects between two executions of the same
// semantics:
//
//   - Serial lockstep (the default): every domain executes cycle c
//     before any executes c+1, with a group-wide warp when every domain
//     is dead. This is bit-for-bit identical to registering all
//     components on one Clock — the differential reference.
//   - Parallel: one goroutine per domain, horizons exchanged through
//     atomics, blocked domains parking on a condition variable. Results
//     are deterministic for a fixed partition (each domain's execution
//     is sequential and cross-domain values apply at fixed cycles) and
//     bit-identical to lockstep in all simulation state; only the cycle
//     at which budgeted drains stop may overshoot, which no state
//     observes.
//
// The domain/horizon contract for models: a component must interact
// with other domains only through mirror wires (never by calling
// methods on, waking, or arming timers for a component registered on
// another Clock), and everything a component touches in Eval/Commit —
// its wires, its endpoint, its RNG — must live in its own domain. A
// model that honours the Idler contract within its domain stays
// warpable across domain edges for free: inbound mirror events bound
// the warp exactly like timers, so a sleeping domain executes precisely
// the cycles on which upstream values land.
//
// Determinism is unaffected by any of this: the active set only ever
// skips Evals that stage nothing and Commits that latch nothing, wakes
// are applied at deterministic points of the cycle, warped spans are
// provably free of state changes, and iteration stays in registration
// order. The same seed yields bit-identical results with activity
// scheduling on or off, with time warping on or off, and with any
// domain partition serial or parallel;
// SetActivityScheduling(false) restores the dense reference behaviour
// for differential testing.
package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Component is a clocked hardware block. Eval must only read wire values
// published in previous cycles (Wire.Get) and stage new ones (Wire.Set);
// Commit latches internal registers. Components must not communicate
// outside of Wires.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Eval performs the combinational phase for the current cycle.
	Eval()
	// Commit performs the clock-edge phase, latching state computed by
	// Eval.
	Commit()
}

// Idler is optionally implemented by components that can sleep. Idle is
// consulted after every clock edge; a true result removes the component
// from the active set until a watched wire changes, Clock.Wake is
// called, or a Clock.WakeAt timer fires. See the package comment for
// the exact contract.
type Idler interface {
	Component
	// Idle reports whether the component's Eval would currently be a
	// no-op: no staged work, no pending input, all driven wires at
	// their rest values.
	Idle() bool
}

// latcher is the internal interface wires implement so the clock can
// latch them after all components commit.
type latcher interface{ latch() }

// wakeTimer is one pending WakeAt request.
type wakeTimer struct {
	cycle uint64
	idx   int
}

// Clock drives a set of components and wires with a shared synchronous
// clock. The zero value is ready to use.
type Clock struct {
	comps  []Component
	idlers []Idler // parallel to comps; nil entries never sleep
	active []bool  // parallel to comps: membership in activeList
	index  map[Component]int

	// activeList holds the indices of awake components in arbitrary
	// order (swap-removed on sleep), so Step costs O(active), not
	// O(registered). Order-independence of the two-phase protocol makes
	// the arbitrary order harmless.
	activeList []int
	inEval     bool
	dense      bool // activity scheduling disabled: evaluate everything
	noWarp     bool // time warping disabled: step every cycle

	wakePending []bool // parallel to comps; dedups pending
	pending     []int
	timers      []wakeTimer // min-heap on cycle
	// lastArmed coalesces repeated WakeAt calls: the most recent timer
	// cycle pushed for each component and still pending. A periodic
	// component that re-arms the same deadline every Eval would
	// otherwise leak one heap slot per call.
	lastArmed []uint64

	dirty    []latcher // wires with a staged Set awaiting this edge
	allWires []latcher // every wire, latched unconditionally in dense mode

	// cancel, when non-nil, is consulted between executed steps of
	// Run/RunUntil/RunUntilQuiescent (every cancelCheckStride steps);
	// returning true stops the run early. See SetCancel.
	cancel      func() bool
	cancelCtr   int
	cancelFired bool // latched first true result; reset by SetCancel

	cycle uint64
	// lastActive is the most recent cycle whose step did real work
	// (components evaluated, a wire latched, a timer fired, a mirror
	// event arrived). A parallel RunUntilQuiescent rewinds the counters
	// to the maximum across domains when it detects quiescence, undoing
	// its chunk-boundary overshoot; see Group.RunUntilQuiescent.
	lastActive  uint64
	probes      []func(cycle uint64)
	rangeProbes []func(from, to uint64)

	// Domain coupling (nil/zero for a standalone clock). group links
	// the clock into a Group of domains; inQ holds one event queue per
	// upstream domain delivering mirror-wire changes; horizon publishes
	// the completed cycle to downstream domains during parallel runs.
	group    *Group
	domIdx   int
	inQ      []*crossQueue // one slot per domain; inQ[j] feeds from domain j
	upstream []int         // domain indices that mirror wires into this one
	horizon  atomic.Uint64
}

// NewClock returns an empty clock domain.
func NewClock() *Clock { return &Clock{} }

// Register adds components to the clock domain. Registering the same
// component twice double-clocks it; callers must not do that. Newly
// registered components start active.
func (c *Clock) Register(comps ...Component) {
	if c.index == nil {
		c.index = make(map[Component]int)
	}
	for _, comp := range comps {
		i := len(c.comps)
		c.index[comp] = i
		c.comps = append(c.comps, comp)
		id, _ := comp.(Idler)
		c.idlers = append(c.idlers, id)
		c.active = append(c.active, true)
		c.wakePending = append(c.wakePending, false)
		c.lastArmed = append(c.lastArmed, 0)
		c.activeList = append(c.activeList, i)
	}
}

// Probe registers a function invoked after every executed cycle
// commits, with the just-completed cycle number. Probes observe
// post-edge state; they are the hook used for waveform tracing and
// statistics. Probes run every executed cycle regardless of activity,
// but cycles skipped by time warping are reported through ProbeRange
// instead (state is frozen across a skipped span, so a sampling probe
// misses nothing; an accumulating probe must integrate the span).
func (c *Clock) Probe(fn func(cycle uint64)) {
	c.probes = append(c.probes, fn)
}

// ProbeRange registers a function invoked whenever time warping skips a
// dead span, with the inclusive interval [from, to] of skipped cycles.
// It runs before the step that follows the span executes. No component
// evaluated and no wire changed during [from, to] — the simulation
// state the hook observes is exactly the state that held throughout —
// so a per-cycle accumulator integrates the span as (to - from + 1)
// cycles of the current state and remains bit-identical to dense
// evaluation. Hooks are never called with an empty span.
func (c *Clock) ProbeRange(fn func(from, to uint64)) {
	c.rangeProbes = append(c.rangeProbes, fn)
}

// Cycle reports how many clock cycles have elapsed in this domain.
// Domains of a group all simulate the same timeline; their counters
// agree whenever the group is joined (between Run calls) and may differ
// transiently while a parallel run is in flight.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Domain reports the clock's index within its Group, 0 for a
// standalone clock.
func (c *Clock) Domain() int { return c.domIdx }

// Group returns the group the clock belongs to, or nil for a
// standalone clock.
func (c *Clock) Group() *Group { return c.group }

// ComponentCount reports how many components are registered. For a
// clock in a Group it aggregates every domain, so harness code holding
// any one domain keeps seeing the whole system.
func (c *Clock) ComponentCount() int {
	if c.group != nil {
		t := 0
		for _, d := range c.group.clocks {
			t += len(d.comps)
		}
		return t
	}
	return len(c.comps)
}

// ActiveCount reports how many components will be evaluated next cycle
// (pending wakes not yet applied). With activity scheduling disabled it
// is the total component count. For a clock in a Group it aggregates
// every domain, so existing harness predicates work unchanged on
// sharded systems.
func (c *Clock) ActiveCount() int {
	if c.group != nil {
		t := 0
		for _, d := range c.group.clocks {
			t += d.activeCountLocal()
		}
		return t
	}
	return c.activeCountLocal()
}

func (c *Clock) activeCountLocal() int {
	if c.dense {
		return len(c.comps)
	}
	return len(c.activeList)
}

// SetTimeWarp enables (the default) or disables dead-cycle skipping.
// With it off, Step/Run/RunUntil* execute every cycle one at a time even
// when the domain is provably dead — the PR 1 reference behaviour, kept
// for differential testing and speedup benchmarks. Both modes produce
// bit-identical simulations. Dense mode never warps regardless of this
// setting.
func (c *Clock) SetTimeWarp(on bool) { c.noWarp = !on }

// SetActivityScheduling enables (the default) or disables the active-set
// optimization. Disabling it evaluates every component every cycle — the
// dense reference kernel, useful for differential testing and
// benchmarking. Both modes produce bit-identical simulations.
func (c *Clock) SetActivityScheduling(on bool) {
	c.dense = !on
	// Reset the active set to everything: correct for entering dense
	// mode, and the safe starting point when re-entering sparse mode
	// (idle components retire again on the next edges).
	c.activeList = c.activeList[:0]
	for i := range c.active {
		c.active[i] = true
		c.activeList = append(c.activeList, i)
	}
}

// Wake puts comp back into the active set. Called during the Eval phase
// it joins the current cycle (its Commit runs on this edge); called at
// any other time — from a wire watcher, a probe, or code outside Step —
// it takes effect at the next Step. Waking an active, nil, or unknown
// component is a no-op, so callers need not track sleep state.
func (c *Clock) Wake(comp Component) {
	if c.dense || comp == nil {
		return
	}
	i, ok := c.index[comp]
	if !ok {
		return
	}
	c.wakeIndex(i)
}

// WakeAt schedules comp to be active during the step that ends at the
// given cycle count (i.e. it evaluates the transition to that cycle). A
// cycle not in the future degenerates to Wake at the next Step.
// Repeated WakeAt calls for the same component and cycle are coalesced
// into one timer, so a component may safely re-arm its deadline on
// every Eval without growing the timer heap.
//
// Timers are recorded in dense mode too: activation is moot (everything
// already runs every cycle) but an armed timer marks in-flight work —
// a UART mid-bit, a router mid routing-delay — and must hold off
// Quiescent until it fires, exactly as it does under activity
// scheduling.
func (c *Clock) WakeAt(cycle uint64, comp Component) {
	if comp == nil {
		return
	}
	i, ok := c.index[comp]
	if !ok {
		return
	}
	c.wakeAtIndex(cycle, i)
}

// wakeAtIndex is WakeAt for a pre-resolved component index.
func (c *Clock) wakeAtIndex(cycle uint64, i int) {
	if cycle <= c.cycle+1 {
		c.wakeIndex(i)
		return
	}
	if c.inEval && !c.dense && cycle == c.cycle+2 {
		// Next-step fast path: a component in its Eval phase (the step
		// ending at cycle+1) arming the immediately following step. The
		// pending list already has exactly that meaning — it is drained
		// by the next step's applyWakes — so the wake needs no timer.
		// This is the cadence of batched flit transfers (one event every
		// other cycle per streaming link), which would otherwise churn
		// the timer heap once per flit per hop.
		if !c.wakePending[i] {
			c.wakePending[i] = true
			c.pending = append(c.pending, i)
		}
		return
	}
	if c.lastArmed[i] == cycle {
		return // duplicate of a still-pending timer
	}
	c.lastArmed[i] = cycle
	// Push onto the min-heap.
	c.timers = append(c.timers, wakeTimer{cycle: cycle, idx: i})
	for j := len(c.timers) - 1; j > 0; {
		parent := (j - 1) / 2
		if c.timers[parent].cycle <= c.timers[j].cycle {
			break
		}
		c.timers[parent], c.timers[j] = c.timers[j], c.timers[parent]
		j = parent
	}
}

// Handle is a pre-resolved wake token for one registered component: the
// result of the Clock's map lookup, captured once so hot paths (a
// router arming its routing-delay deadline, a UART arming a bit edge, a
// traffic injector arming its next packet) wake without a per-event map
// lookup. The zero Handle is invalid and all its methods are no-ops.
type Handle struct {
	clk *Clock
	idx int
}

// Handle resolves comp to a wake token. An unregistered or nil
// component yields the invalid zero Handle.
func (c *Clock) Handle(comp Component) Handle {
	if comp == nil {
		return Handle{}
	}
	i, ok := c.index[comp]
	if !ok {
		return Handle{}
	}
	return Handle{clk: c, idx: i}
}

// Valid reports whether the handle names a registered component.
func (h Handle) Valid() bool { return h.clk != nil }

// Wake is Clock.Wake without the map lookup.
func (h Handle) Wake() {
	if h.clk != nil {
		h.clk.wakeIndex(h.idx)
	}
}

// WakeAt is Clock.WakeAt without the map lookup.
func (h Handle) WakeAt(cycle uint64) {
	if h.clk != nil {
		h.clk.wakeAtIndex(cycle, h.idx)
	}
}

func (c *Clock) activate(i int) {
	if !c.active[i] {
		c.active[i] = true
		c.activeList = append(c.activeList, i)
	}
}

// wakeIndex is Wake for a pre-resolved component index — the wire
// latch fast path, which would otherwise pay a map lookup per watcher
// per edge.
func (c *Clock) wakeIndex(i int) {
	if c.dense {
		return
	}
	if c.inEval {
		c.activate(i)
		return
	}
	if !c.wakePending[i] {
		c.wakePending[i] = true
		c.pending = append(c.pending, i)
	}
}

// applyWakes moves pending and due timer wakes into the active set. It
// runs at the top of Step, so a wake staged in cycle k activates its
// component for cycle k+1.
func (c *Clock) applyWakes() {
	next := c.cycle + 1
	for len(c.timers) > 0 && c.timers[0].cycle <= next {
		c.activate(c.timers[0].idx)
		if c.lastArmed[c.timers[0].idx] == c.timers[0].cycle {
			c.lastArmed[c.timers[0].idx] = 0
		}
		// Pop the heap root.
		last := len(c.timers) - 1
		c.timers[0] = c.timers[last]
		c.timers = c.timers[:last]
		for j := 0; ; {
			l, r := 2*j+1, 2*j+2
			small := j
			if l < last && c.timers[l].cycle < c.timers[small].cycle {
				small = l
			}
			if r < last && c.timers[r].cycle < c.timers[small].cycle {
				small = r
			}
			if small == j {
				break
			}
			c.timers[small], c.timers[j] = c.timers[j], c.timers[small]
			j = small
		}
	}
	if len(c.pending) > 0 {
		for _, i := range c.pending {
			c.wakePending[i] = false
			c.activate(i)
		}
		c.pending = c.pending[:0]
	}
}

// PendingTimers reports how many WakeAt timers are armed (after
// coalescing). It exists for tests and diagnostics. For a clock in a
// Group it aggregates every domain.
func (c *Clock) PendingTimers() int {
	if c.group != nil {
		t := 0
		for _, d := range c.group.clocks {
			t += len(d.timers)
		}
		return t
	}
	return len(c.timers)
}

// ErrCanceled reports that a run was stopped early by a cancellation
// hook installed with SetCancel — a wall-clock deadline, a context, or
// a simulated-cycle budget imposed from outside the simulation.
var ErrCanceled = errors.New("sim: run canceled")

// cancelCheckStride bounds how stale an observed cancellation can be:
// an armed hook is consulted on the first executed step of a run loop
// and then once every cancelCheckStride steps, keeping its cost off
// the per-step hot path. Cancellation aborts a run whose results the
// caller discards, so the exact stop cycle does not need to be
// deterministic — only bounded.
const cancelCheckStride = 64

// SetCancel installs (or, with nil, removes) a cancellation hook for
// this clock domain. The hook is consulted between executed steps of
// Run, RunUntil and RunUntilQuiescent; when it returns true the run
// stops early — Run simply returns with fewer cycles elapsed, the
// error-returning entry points return ErrCanceled. The hook must be
// cheap (a context Err poll, a cycle comparison) and, in a parallel
// group run, safe to call from the domain's goroutine: a hook that
// reads a Clock must read only its own.
//
// For a grouped clock the hook covers this domain only; use
// Group.SetCancel to apply one hook to every domain, or install a
// per-domain closure on each (the way a simulated-cycle budget is
// enforced without cross-goroutine cycle reads).
func (c *Clock) SetCancel(fn func() bool) {
	c.cancel = fn
	c.cancelCtr = 0
	c.cancelFired = false
}

// canceled consults the cancellation hook, at most once every
// cancelCheckStride calls. A true result latches: once a run has been
// cancelled, every later check answers true without re-consulting the
// hook, so all of the group's run loops observe the cancellation no
// matter which one's check happened to trigger it.
func (c *Clock) canceled() bool {
	if c.cancelFired {
		return true
	}
	if c.cancel == nil {
		return false
	}
	if c.cancelCtr > 0 {
		c.cancelCtr--
		return false
	}
	c.cancelCtr = cancelCheckStride - 1
	c.cancelFired = c.cancel()
	return c.cancelFired
}

// warpUnbounded caps nothing: Step outside Run/RunUntil has no cycle
// budget and may jump to any armed timer.
const warpUnbounded = ^uint64(0)

// warp jumps the cycle counter over a dead span. A span is dead when
// the active set is empty, no wakes are pending and no wire holds a
// staged value: nothing can change until the earliest armed timer
// fires, so the steps in between would execute nothing. The counter
// jumps so that the next executed step ends at that timer's cycle —
// or at limit, when the caller's budget (or the absence of any timer,
// under a finite limit) caps the jump first. Skipped spans are
// reported to ProbeRange hooks.
func (c *Clock) warp(limit uint64) {
	if c.dense || c.noWarp ||
		len(c.activeList) != 0 || len(c.pending) != 0 || len(c.dirty) != 0 {
		return
	}
	target := limit
	if len(c.timers) > 0 && c.timers[0].cycle < target {
		target = c.timers[0].cycle
	}
	if c.inQ != nil {
		if b := c.inboundBound(); b < target {
			target = b
		}
	}
	if target == warpUnbounded || target <= c.cycle+1 {
		return
	}
	c.jumpTo(target)
}

// jumpTo moves the counter so the next executed step ends at target,
// reporting the skipped span to ProbeRange hooks. Callers must have
// established that the span is dead.
func (c *Clock) jumpTo(target uint64) {
	from := c.cycle + 1
	c.cycle = target - 1
	// A warp can cross an arbitrary span of simulated time, so a
	// cycle-budget cancellation hook is re-consulted on the very next
	// check instead of waiting out the stride (warps are rare — one per
	// dead span — so this costs nothing on the hot path).
	c.cancelCtr = 0
	for _, p := range c.rangeProbes {
		p(from, target-1)
	}
}

// inboundBound caps a warp at the first pending mirror-wire event: an
// event latched upstream at cycle k is delivered at the end of this
// domain's step ending at k (between stepCore and stepFinish), so that
// step must execute. Like timers, inbound events bound the warp rather
// than forbid it.
func (c *Clock) inboundBound() uint64 {
	b := warpUnbounded
	for _, q := range c.inQ {
		if q == nil {
			continue
		}
		if k, ok := q.peekCycle(); ok && k < b {
			b = k
		}
	}
	return b
}

// drainInbound applies every pending mirror-wire event latched at or
// before the just-completed cycle. It runs between stepCore and
// stepFinish — after every producer has latched the cycle — so the
// mirrored value is visible to this cycle's probes on the latch tick
// itself, and the mirror's watchers are woken into pending, evaluating
// next cycle: exactly the timing of a local wire latched this cycle.
func (c *Clock) drainInbound() {
	for _, q := range c.inQ {
		if q != nil && q.drainTo(c.cycle) {
			c.lastActive = c.cycle
		}
	}
}

// Step advances the simulation to the next event. With time warping
// enabled (the default) and the domain momentarily dead — no active
// components, no pending wakes, no staged wires — the cycle counter
// first jumps so that this step executes the earliest armed WakeAt
// timer, skipping the dead cycles in between; otherwise (and always
// with SetTimeWarp(false)) exactly one cycle executes: wake, Eval the
// active set, Commit it, latch staged wires, then retire idle
// components.
func (c *Clock) Step() {
	if c.group != nil {
		c.group.Step()
		return
	}
	c.warp(warpUnbounded)
	c.step()
}

// step executes exactly one clock cycle. Grouped domains run the two
// halves with a mirror-event drain in between (see stepCore).
func (c *Clock) step() {
	c.stepCore()
	c.stepFinish()
}

// stepCore is the state-changing half of a cycle: wake, Eval, Commit,
// latch, advance the counter. For a grouped domain the group runner
// inserts the inbound mirror-event drain between stepCore and
// stepFinish — once every producer has latched this cycle — so the
// cycle's probes observe mirrored values on exactly the tick the
// source domain latched them, as an unsharded probe would.
func (c *Clock) stepCore() {
	if c.dense {
		// Timers have no activation effect in dense mode (everything is
		// already active) but due ones must still pop so Quiescent sees
		// the in-flight work they mark retire on schedule.
		c.applyWakes()
		for _, comp := range c.comps {
			comp.Eval()
		}
		for _, comp := range c.comps {
			comp.Commit()
		}
		// The dense reference latches every wire every cycle, exactly
		// like the original kernel; latch also resets the dirty marks,
		// so the list only needs truncating.
		for _, w := range c.allWires {
			w.latch()
		}
		c.dirty = c.dirty[:0]
		c.cycle++
		c.lastActive = c.cycle // dense cycles always count as work
		return
	}
	busy := len(c.activeList) != 0 || len(c.pending) != 0 || len(c.dirty) != 0 ||
		(len(c.timers) > 0 && c.timers[0].cycle <= c.cycle+1)
	c.applyWakes()
	// Explicit index loops: a Wake during the Eval phase appends to
	// activeList, and the appended component must still be visited —
	// its Eval is a no-op (it was asleep, so its inputs are quiescent)
	// but its Commit latches whatever the waker staged on it, exactly
	// as in a dense run.
	c.inEval = true
	for k := 0; k < len(c.activeList); k++ {
		c.comps[c.activeList[k]].Eval()
	}
	c.inEval = false
	for k := 0; k < len(c.activeList); k++ {
		c.comps[c.activeList[k]].Commit()
	}
	// Only wires whose driver staged a value this cycle need latching;
	// watchers of wires whose latched value changes are woken here.
	if len(c.dirty) > 0 {
		for _, w := range c.dirty {
			w.latch()
		}
		c.dirty = c.dirty[:0]
	}
	c.cycle++
	if busy {
		c.lastActive = c.cycle
	}
}

// stepFinish is the observing half of a cycle: probes, then idle
// retirement.
func (c *Clock) stepFinish() {
	for _, p := range c.probes {
		p(c.cycle)
	}
	if c.dense {
		return
	}
	for k := 0; k < len(c.activeList); {
		i := c.activeList[k]
		if id := c.idlers[i]; id != nil && id.Idle() {
			c.active[i] = false
			last := len(c.activeList) - 1
			c.activeList[k] = c.activeList[last]
			c.activeList = c.activeList[:last]
		} else {
			k++
		}
	}
}

// Run advances the simulation by exactly n cycles of simulated time.
// Dead spans inside the window are warped over (never past the window's
// end), so the number of executed steps may be far smaller than n. A
// cancellation hook (SetCancel) firing mid-run makes Run return early,
// with the cycle counter wherever the last executed step left it;
// callers that arm a hook re-check its condition after Run returns.
func (c *Clock) Run(n uint64) {
	if c.group != nil {
		c.group.Run(n)
		return
	}
	target := c.cycle + n
	for c.cycle < target {
		if c.canceled() {
			return
		}
		c.warp(target)
		c.step()
	}
}

// ErrTimeout reports that RunUntil or RunUntilQuiescent exhausted its
// cycle budget before the stop condition became true.
var ErrTimeout = errors.New("sim: watchdog timeout")

// RunUntil steps the clock until pred returns true, or fails with
// ErrTimeout after maxCycles additional cycles of simulated time. pred
// is evaluated after each executed cycle commits; cycles skipped by
// time warping cannot change state, so a predicate over simulation
// state flips at exactly the same cycle either way.
func (c *Clock) RunUntil(pred func() bool, maxCycles uint64) error {
	if c.group != nil {
		return c.group.RunUntil(pred, maxCycles)
	}
	target := c.cycle + maxCycles
	for c.cycle < target {
		if c.canceled() {
			return fmt.Errorf("%w at cycle %d", ErrCanceled, c.cycle)
		}
		c.warp(target)
		c.step()
		if pred() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
}

// Quiescent reports whether the simulation can make no further progress
// on its own: every component is asleep (or reports Idle, in dense
// mode), no wakes are pending, no timers are armed and no wire has a
// staged value awaiting an edge. External stimulus — a Send on an
// endpoint, bytes queued on a UART — ends quiescence.
//
// A component that does not implement Idler never leaves the active
// set, so a domain containing one can never report quiescence (its
// simulation stays correct; only Quiescent/RunUntilQuiescent are
// unavailable and callers fall back to their cycle budgets).
func (c *Clock) Quiescent() bool {
	if c.group != nil {
		return c.group.Quiescent()
	}
	return c.quiescentLocal()
}

// quiescentLocal is the single-domain quiescence test; a grouped domain
// is additionally held awake by undelivered inbound mirror events.
func (c *Clock) quiescentLocal() bool {
	if len(c.dirty) > 0 {
		return false
	}
	for _, q := range c.inQ {
		if q == nil {
			continue
		}
		if _, pending := q.peekCycle(); pending {
			return false
		}
	}
	if c.dense {
		if len(c.timers) != 0 {
			return false // armed timers mark in-flight work in any mode
		}
		for _, id := range c.idlers {
			if id == nil || !id.Idle() {
				return false
			}
		}
		return true
	}
	return len(c.activeList) == 0 && len(c.pending) == 0 && len(c.timers) == 0
}

// RunUntilQuiescent steps the clock until the simulation is quiescent —
// all in-flight activity has drained — or fails with ErrTimeout after
// maxCycles. It replaces the "run a generous fixed cycle count and hope
// everything drained" idiom: drivers stop exactly when the hardware
// does, without polling a predicate every cycle.
func (c *Clock) RunUntilQuiescent(maxCycles uint64) error {
	if c.group != nil {
		return c.group.RunUntilQuiescent(maxCycles)
	}
	target := c.cycle + maxCycles
	for c.cycle < target {
		if c.quiescentLocal() {
			return nil
		}
		if c.canceled() {
			return fmt.Errorf("%w at cycle %d", ErrCanceled, c.cycle)
		}
		c.warp(target)
		c.step()
	}
	if c.quiescentLocal() {
		return nil
	}
	return fmt.Errorf("%w: not quiescent after %d cycles", ErrTimeout, maxCycles)
}

// Package sim provides the two-phase synchronous simulation kernel that
// every hardware model in this repository runs on.
//
// The kernel mirrors register-transfer-level semantics: a component reads
// the *current* value of its input wires during Eval and computes its next
// state; Commit then latches all next states at once, like a global clock
// edge hitting every flip-flop. Because no Eval can observe another
// component's same-cycle output, simulation results are independent of
// component registration order, making every run bit-for-bit
// deterministic.
package sim

import (
	"errors"
	"fmt"
)

// Component is a clocked hardware block. Eval must only read wire values
// published in previous cycles (Wire.Get) and stage new ones (Wire.Set);
// Commit latches internal registers. Components must not communicate
// outside of Wires.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Eval performs the combinational phase for the current cycle.
	Eval()
	// Commit performs the clock-edge phase, latching state computed by
	// Eval.
	Commit()
}

// latcher is the internal interface wires implement so the clock can
// latch them after all components commit.
type latcher interface{ latch() }

// Clock drives a set of components and wires with a shared synchronous
// clock. The zero value is ready to use.
type Clock struct {
	comps  []Component
	wires  []latcher
	cycle  uint64
	probes []func(cycle uint64)
}

// NewClock returns an empty clock domain.
func NewClock() *Clock { return &Clock{} }

// Register adds components to the clock domain. Registering the same
// component twice double-clocks it; callers must not do that.
func (c *Clock) Register(comps ...Component) {
	c.comps = append(c.comps, comps...)
}

// Attach adds wires to the clock domain so their staged values latch on
// every cycle boundary. Wires created through NewWire on a clock are
// attached automatically.
func (c *Clock) Attach(wires ...latcher) {
	c.wires = append(c.wires, wires...)
}

// Probe registers a function invoked after every cycle commits, with the
// just-completed cycle number. Probes observe post-edge state; they are
// the hook used for waveform tracing and statistics.
func (c *Clock) Probe(fn func(cycle uint64)) {
	c.probes = append(c.probes, fn)
}

// Cycle reports how many clock cycles have elapsed.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Step advances the simulation by exactly one clock cycle.
func (c *Clock) Step() {
	for _, comp := range c.comps {
		comp.Eval()
	}
	for _, comp := range c.comps {
		comp.Commit()
	}
	for _, w := range c.wires {
		w.latch()
	}
	c.cycle++
	for _, p := range c.probes {
		p(c.cycle)
	}
}

// Run advances the simulation by n cycles.
func (c *Clock) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// ErrTimeout reports that RunUntil exhausted its cycle budget before the
// predicate became true.
var ErrTimeout = errors.New("sim: watchdog timeout")

// RunUntil steps the clock until pred returns true, or fails with
// ErrTimeout after maxCycles additional cycles. pred is evaluated after
// each cycle commits.
func (c *Clock) RunUntil(pred func() bool, maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		c.Step()
		if pred() {
			return nil
		}
	}
	return fmt.Errorf("%w after %d cycles", ErrTimeout, maxCycles)
}

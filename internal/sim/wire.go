package sim

// Wire is a single-driver registered signal. A component stages a value
// with Set during Eval; the value becomes visible through Get only after
// the cycle's Commit phase, exactly like a D flip-flop between two
// modules. A wire holds its value until the driver stages a new one.
//
// Wires cooperate with the activity scheduler: a wire only needs
// latching on edges following a Set (an undriven wire holds its value by
// definition), and watchers registered through Watch are woken whenever
// an edge changes the latched value — the sensitivity-list mechanism
// that lets a wire's reader sleep.
type Wire[T any] struct {
	cur, next T
	clk       *Clock
	name      string
	dirty     bool

	// eq and watchers implement Watch; eq is nil until the first
	// watcher registers. watcherIdx caches each watcher's component
	// index (resolved lazily, since Watch may run before Register) so
	// the latch-time wake avoids a map lookup per edge.
	eq         func(a, b T) bool
	watchers   []Component
	watcherIdx []int

	// mirrors forward every latched change into other clock domains
	// (one entry per MirrorWire made from this wire).
	mirrors []func(v T)
}

// NewWire creates a wire in clk's domain, carrying v both as the current
// and staged value.
func NewWire[T any](clk *Clock, name string, v T) *Wire[T] {
	w := &Wire[T]{cur: v, next: v, clk: clk, name: name}
	clk.allWires = append(clk.allWires, w)
	return w
}

// Name reports the wire's diagnostic name.
func (w *Wire[T]) Name() string { return w.name }

// Clock returns the clock domain the wire belongs to, so code handed
// only a wire (a UART given its line) can derive cycle counts and arm
// timers in the right domain.
func (w *Wire[T]) Clock() *Clock { return w.clk }

// Get returns the value latched at the previous clock edge.
func (w *Wire[T]) Get() T { return w.cur }

// Set stages v to become visible after the next clock edge. Only the
// wire's single driver may call Set.
func (w *Wire[T]) Set(v T) {
	w.next = v
	if !w.dirty {
		w.dirty = true
		w.clk.dirty = append(w.clk.dirty, w)
	}
}

// Peek returns the currently staged (pre-edge) value. It exists for
// tests and tracing only; synthesizable component logic must use Get.
func (w *Wire[T]) Peek() T { return w.next }

func (w *Wire[T]) latch() {
	if w.eq != nil && !w.eq(w.cur, w.next) {
		for k, comp := range w.watchers {
			if i := w.watcherIdx[k]; i >= 0 {
				w.clk.wakeIndex(i)
			} else if i, ok := w.clk.index[comp]; ok {
				w.watcherIdx[k] = i
				w.clk.wakeIndex(i)
			}
		}
		for _, m := range w.mirrors {
			m(w.next)
		}
	}
	w.cur = w.next
	w.dirty = false
}

// wakeWatchers is the mirror-apply counterpart of the latch-time wake:
// it wakes the wire's watchers without latching (a mirror has no staged
// value of its own).
func (w *Wire[T]) wakeWatchers() {
	for k, comp := range w.watchers {
		if i := w.watcherIdx[k]; i >= 0 {
			w.clk.wakeIndex(i)
		} else if i, ok := w.clk.index[comp]; ok {
			w.watcherIdx[k] = i
			w.clk.wakeIndex(i)
		}
	}
}

// applyMirror implements mirrorSink: the source wire latched val one
// boundary cycle ago; publish it in this domain and wake watchers for
// the step about to execute.
func (w *Wire[T]) applyMirror(val any) {
	v := val.(T)
	if !w.eq(w.cur, v) {
		w.cur = v
		w.next = v
		w.wakeWatchers()
	}
}

// Watch registers comps to be woken by the wire's clock whenever a
// clock edge changes the wire's latched value. The wake takes effect on
// the cycle in which the watcher first observes the new value through
// Get, so a sleeping watcher sees exactly what it would have seen
// evaluating densely. (A free function rather than a method because
// change detection needs T comparable, which the Wire type itself does
// not require.)
func Watch[T comparable](w *Wire[T], comps ...Component) {
	if w.eq == nil {
		w.eq = func(a, b T) bool { return a == b }
	}
	w.watchers = append(w.watchers, comps...)
	for range comps {
		w.watcherIdx = append(w.watcherIdx, -1)
	}
}

// MirrorWire couples src into another clock domain of the same Group:
// it returns a read-only wire on dst that tracks src with exactly the
// one-cycle latency an ordinary wire has inside a domain — a value
// staged on src during cycle k latches at the end of k and is observed
// by the mirror's readers (and wakes its watchers) in cycle k+1. That
// boundary latency is the group's conservative lookahead. The mirror
// has no driver; calling Set on it is a protocol violation, as is
// mirroring between clocks of different groups or within one domain.
func MirrorWire[T comparable](src *Wire[T], dst *Clock) *Wire[T] {
	if src.clk.group == nil || src.clk.group != dst.group {
		panic("sim: MirrorWire requires both clocks in one Group")
	}
	if src.clk == dst {
		panic("sim: MirrorWire within a single domain (use the wire directly)")
	}
	if src.eq == nil {
		src.eq = func(a, b T) bool { return a == b }
	}
	m := &Wire[T]{cur: src.cur, next: src.cur, clk: dst, name: src.name}
	m.eq = func(a, b T) bool { return a == b }
	q := dst.inQueueFrom(src.clk)
	srcClk := src.clk
	src.mirrors = append(src.mirrors, func(v T) {
		// latch runs before the cycle counter increments, so the edge
		// being latched ends cycle srcClk.cycle+1.
		q.push(srcClk.cycle+1, m, v)
	})
	return m
}

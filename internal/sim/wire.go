package sim

// Wire is a single-driver registered signal. A component stages a value
// with Set during Eval; the value becomes visible through Get only after
// the cycle's Commit phase, exactly like a D flip-flop between two
// modules. A wire holds its value until the driver stages a new one.
type Wire[T any] struct {
	cur, next T
	name      string
}

// NewWire creates a wire attached to clk, carrying v both as the current
// and staged value.
func NewWire[T any](clk *Clock, name string, v T) *Wire[T] {
	w := &Wire[T]{cur: v, next: v, name: name}
	clk.Attach(w)
	return w
}

// Name reports the wire's diagnostic name.
func (w *Wire[T]) Name() string { return w.name }

// Get returns the value latched at the previous clock edge.
func (w *Wire[T]) Get() T { return w.cur }

// Set stages v to become visible after the next clock edge. Only the
// wire's single driver may call Set.
func (w *Wire[T]) Set(v T) { w.next = v }

// Peek returns the currently staged (pre-edge) value. It exists for
// tests and tracing only; synthesizable component logic must use Get.
func (w *Wire[T]) Peek() T { return w.next }

func (w *Wire[T]) latch() { w.cur = w.next }

package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// beacon drives its output with an incrementing sequence number every
// period cycles, sleeping on a WakeAt timer in between.
type beacon struct {
	clk    *Clock
	h      Handle
	out    *Wire[int]
	period uint64
	next   uint64
	left   int
	seq    int
}

func (b *beacon) Name() string { return "beacon" }
func (b *beacon) Eval() {
	if b.left > 0 && b.clk.Cycle()+1 >= b.next {
		b.seq++
		b.out.Set(b.seq)
		b.left--
		b.next += b.period
		if b.left > 0 {
			b.h.WakeAt(b.next)
		}
	}
}
func (b *beacon) Commit()    {}
func (b *beacon) Idle() bool { return true }

// relay forwards in+1 to out when in changes, after an optional
// routing delay armed through a WakeAt timer.
type relay struct {
	name    string
	clk     *Clock
	h       Handle
	in, out *Wire[int]
	delay   uint64
	last    int
	pend    int
	due     uint64
	hasPend bool
}

func (r *relay) Name() string { return r.name }
func (r *relay) Eval() {
	if v := r.in.Get(); v != r.last {
		r.last = v
		if r.delay == 0 {
			r.out.Set(v + 1)
		} else {
			r.pend = v + 1
			r.due = r.clk.Cycle() + 1 + r.delay
			r.hasPend = true
			r.h.WakeAt(r.due)
		}
	}
	if r.hasPend && r.clk.Cycle()+1 >= r.due {
		r.out.Set(r.pend)
		r.hasPend = false
	}
}
func (r *relay) Commit()    {}
func (r *relay) Idle() bool { return !r.hasPend }

// tap records (cycle, value) every time its input changes.
type tap struct {
	clk  *Clock
	in   *Wire[int]
	last int
	seen [][2]uint64
}

func (t *tap) Name() string { return "tap" }
func (t *tap) Eval() {
	if v := t.in.Get(); v != t.last {
		t.last = v
		t.seen = append(t.seen, [2]uint64{t.clk.Cycle() + 1, uint64(v)})
	}
}
func (t *tap) Commit()    {}
func (t *tap) Idle() bool { return true }

// ringTrace builds a beacon → relay → relay → relay pipeline whose
// last output feeds back to a tap alongside the beacon (a full ring of
// domain dependencies when sharded), runs it, and returns both taps'
// traces. domains=0 builds the single-Clock reference; otherwise one
// domain per stage with mirror wires across boundaries.
func ringTrace(t *testing.T, domains int, parallel bool, run uint64) ([][2]uint64, [][2]uint64) {
	t.Helper()
	const stages = 3
	var clks [stages + 1]*Clock
	var g *Group
	if domains == 0 {
		c := NewClock()
		for i := range clks {
			clks[i] = c
		}
	} else {
		if domains != stages+1 {
			t.Fatalf("ringTrace wants %d domains, got %d", stages+1, domains)
		}
		g = NewGroup(domains)
		for i := range clks {
			clks[i] = g.Clock(i)
		}
		g.SetParallel(parallel)
	}

	b := &beacon{clk: clks[0], period: 40, next: 25, left: 12}
	b.out = NewWire(clks[0], "b.out", 0)
	clks[0].Register(b)
	b.h = clks[0].Handle(b)
	b.h.WakeAt(b.next)

	prev := b.out
	var lastOut *Wire[int]
	for i := 1; i <= stages; i++ {
		r := &relay{name: "relay", clk: clks[i], delay: uint64(i % 3)}
		if domains == 0 {
			r.in = prev
		} else {
			r.in = MirrorWire(prev, clks[i])
		}
		r.out = NewWire(clks[i], "r.out", 0)
		Watch(r.in, r)
		clks[i].Register(r)
		r.h = clks[i].Handle(r)
		prev = r.out
		lastOut = r.out
	}

	endTap := &tap{clk: clks[stages], in: lastOut}
	Watch(endTap.in, endTap)
	clks[stages].Register(endTap)

	homeTap := &tap{clk: clks[0]}
	if domains == 0 {
		homeTap.in = lastOut
	} else {
		homeTap.in = MirrorWire(lastOut, clks[0])
	}
	Watch(homeTap.in, homeTap)
	clks[0].Register(homeTap)

	clks[0].Run(run)
	return endTap.seen, homeTap.seen
}

func TestGroupLockstepMatchesSingleClock(t *testing.T) {
	wantEnd, wantHome := ringTrace(t, 0, false, 1000)
	if len(wantEnd) == 0 || len(wantHome) == 0 {
		t.Fatal("reference trace is empty; test is vacuous")
	}
	gotEnd, gotHome := ringTrace(t, 4, false, 1000)
	if !reflect.DeepEqual(wantEnd, gotEnd) {
		t.Errorf("end tap diverged:\nsingle: %v\ngroup:  %v", wantEnd, gotEnd)
	}
	if !reflect.DeepEqual(wantHome, gotHome) {
		t.Errorf("home tap diverged:\nsingle: %v\ngroup:  %v", wantHome, gotHome)
	}
}

func TestGroupParallelMatchesLockstep(t *testing.T) {
	wantEnd, wantHome := ringTrace(t, 4, false, 1000)
	gotEnd, gotHome := ringTrace(t, 4, true, 1000)
	if !reflect.DeepEqual(wantEnd, gotEnd) {
		t.Errorf("end tap diverged:\nlockstep: %v\nparallel: %v", wantEnd, gotEnd)
	}
	if !reflect.DeepEqual(wantHome, gotHome) {
		t.Errorf("home tap diverged:\nlockstep: %v\nparallel: %v", wantHome, gotHome)
	}
}

func TestGroupParallelDeterministicAcrossRunsAndProcs(t *testing.T) {
	ref, refHome := ringTrace(t, 4, true, 1000)
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		end, home := ringTrace(t, 4, true, 1000)
		runtime.GOMAXPROCS(old)
		if !reflect.DeepEqual(ref, end) || !reflect.DeepEqual(refHome, home) {
			t.Errorf("GOMAXPROCS=%d diverged from reference", procs)
		}
	}
}

// TestGroupWarpSkipsDeadSpans checks that each domain of a parallel
// group warps its own dead spans: with a 40-cycle beacon period the
// executed step count must be proportional to events, not cycles, and
// executed cycles plus ProbeRange spans must tile the run exactly.
func TestGroupWarpSkipsDeadSpans(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := NewGroup(2)
		c0, c1 := g.Clock(0), g.Clock(1)
		g.SetParallel(parallel)

		b := &beacon{clk: c0, period: 40, next: 20, left: 10}
		b.out = NewWire(c0, "b.out", 0)
		c0.Register(b)
		b.h = c0.Handle(b)
		b.h.WakeAt(b.next)

		r := &relay{name: "relay", clk: c1, delay: 2}
		r.in = MirrorWire(b.out, c1)
		r.out = NewWire(c1, "r.out", 0)
		Watch(r.in, r)
		c1.Register(r)
		r.h = c1.Handle(r)

		var executed [2]uint64
		var covered [2]uint64
		for i, c := range []*Clock{c0, c1} {
			i := i
			c.Probe(func(uint64) { executed[i]++; covered[i]++ })
			c.ProbeRange(func(from, to uint64) { covered[i] += to - from + 1 })
		}

		const run = 800
		c0.Run(run)
		for i := range executed {
			if covered[i] != run {
				t.Errorf("parallel=%v: domain %d probes+spans cover %d of %d cycles",
					parallel, i, covered[i], run)
			}
			if executed[i] > run/4 {
				t.Errorf("parallel=%v: domain %d executed %d steps of %d cycles; warp ineffective",
					parallel, i, executed[i], run)
			}
		}
	}
}

func TestGroupAggregation(t *testing.T) {
	g := NewGroup(3) // domain 2 stays empty
	c0, c1 := g.Clock(0), g.Clock(1)

	b := &beacon{clk: c0, period: 10, next: 5, left: 3}
	b.out = NewWire(c0, "b.out", 0)
	c0.Register(b)
	b.h = c0.Handle(b)
	b.h.WakeAt(b.next)

	r := &relay{name: "relay", clk: c1, delay: 3}
	r.in = MirrorWire(b.out, c1)
	r.out = NewWire(c1, "r.out", 0)
	Watch(r.in, r)
	c1.Register(r)
	r.h = c1.Handle(r)

	// Aggregates must be visible from any domain's clock.
	for _, c := range []*Clock{c0, c1, g.Clock(2)} {
		if got := c.ComponentCount(); got != 2 {
			t.Fatalf("ComponentCount = %d, want 2", got)
		}
	}
	if c1.PendingTimers() != 1 {
		t.Fatalf("PendingTimers = %d, want 1 (beacon armed in domain 0)", c1.PendingTimers())
	}
	if c0.Quiescent() {
		t.Fatal("group reports quiescent with an armed timer")
	}
	if err := c0.RunUntilQuiescent(10_000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !g.Clock(2).Quiescent() {
		t.Fatal("group not quiescent after drain")
	}
	if r.last == 0 {
		t.Fatal("relay never saw the beacon; mirror path broken")
	}
	if c0.ActiveCount() != 0 {
		t.Fatalf("ActiveCount = %d after quiescence", c0.ActiveCount())
	}
}

func TestHandleMatchesClockCalls(t *testing.T) {
	clk := NewClock()
	p := &pulser{clk: clk}
	clk.Register(p)
	h := clk.Handle(p)
	if !h.Valid() {
		t.Fatal("handle for registered component invalid")
	}
	clk.Step()
	if clk.ActiveCount() != 0 {
		t.Fatal("pulser did not retire")
	}
	h.Wake()
	clk.Step()
	// A woken pulser with no work retires again after one step.
	if clk.ActiveCount() != 0 {
		t.Fatal("handle Wake did not behave like Clock.Wake")
	}
	h.WakeAt(clk.Cycle() + 50)
	if clk.PendingTimers() != 1 {
		t.Fatal("handle WakeAt did not arm a timer")
	}
	clk.Run(60)
	if clk.PendingTimers() != 0 {
		t.Fatal("handle timer never fired")
	}

	var zero Handle
	if zero.Valid() {
		t.Fatal("zero handle claims validity")
	}
	zero.Wake()          // must not panic
	zero.WakeAt(1 << 20) // must not panic
	if got := clk.Handle(nil); got.Valid() {
		t.Fatal("Handle(nil) should be invalid")
	}
}

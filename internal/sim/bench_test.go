package sim

import "testing"

// benchIdler sleeps forever after its first Eval; benchSpinner never
// sleeps. Together they isolate the kernel's fixed per-Step cost from
// the per-component cost.
type benchIdler struct{ evals uint64 }

func (c *benchIdler) Name() string { return "idler" }
func (c *benchIdler) Eval()        { c.evals++ }
func (c *benchIdler) Commit()      {}
func (c *benchIdler) Idle() bool   { return true }

type benchSpinner struct{ evals uint64 }

func (c *benchSpinner) Name() string { return "spinner" }
func (c *benchSpinner) Eval()        { c.evals++ }
func (c *benchSpinner) Commit()      {}

// BenchmarkStepOverhead isolates the kernel's Step cost: "idle" is a
// domain of 256 sleeping components (the fixed dispatch overhead the
// time-warp kernel eliminates for dead spans), "busy" the same domain
// with every component evaluating every cycle, and "warp" the idle
// domain driven through Run with a far-future timer armed, measuring
// the cost of covering simulated time by jumping instead of stepping.
func BenchmarkStepOverhead(b *testing.B) {
	b.ReportAllocs()
	const n = 256
	b.Run("idle", func(b *testing.B) {
		b.ReportAllocs()
		clk := NewClock()
		for i := 0; i < n; i++ {
			clk.Register(&benchIdler{})
		}
		clk.Step() // everyone retires
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.Step()
		}
	})
	b.Run("busy", func(b *testing.B) {
		b.ReportAllocs()
		clk := NewClock()
		for i := 0; i < n; i++ {
			clk.Register(&benchSpinner{})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.Step()
		}
	})
	b.Run("warp", func(b *testing.B) {
		b.ReportAllocs()
		clk := NewClock()
		idler := &benchIdler{}
		clk.Register(idler)
		for i := 0; i < n-1; i++ {
			clk.Register(&benchIdler{})
		}
		clk.Step()
		const span = 1_000_000
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clk.WakeAt(clk.Cycle()+span, idler)
			clk.Run(span) // one warped jump plus one executed step
		}
		b.ReportMetric(span*float64(b.N)/b.Elapsed().Seconds(), "simcycles/sec")
	})
}

package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// ticker is a component that never sleeps, keeping its domain busy so
// run loops execute every cycle.
type ticker struct{ evals int }

func (t *ticker) Name() string { return "ticker" }
func (t *ticker) Eval()        { t.evals++ }
func (t *ticker) Commit()      {}

// napper sleeps forever on a far-future timer, so its domain is dead
// and every run warps.
type napper struct {
	clk   *Clock
	armed bool
}

func (n *napper) Name() string { return "napper" }
func (n *napper) Eval() {
	if !n.armed {
		n.armed = true
		n.clk.WakeAt(n.clk.Cycle()+1_000_000_000, n)
	}
}
func (n *napper) Commit()    {}
func (n *napper) Idle() bool { return n.armed }

func TestCancelStopsRunEarly(t *testing.T) {
	clk := NewClock()
	tk := &ticker{}
	clk.Register(tk)
	var calls int
	clk.SetCancel(func() bool {
		calls++
		return calls >= 3
	})
	clk.Run(1_000_000)
	if clk.Cycle() >= 1_000_000 {
		t.Fatalf("run was not cancelled: cycle %d", clk.Cycle())
	}
	// The hook fires on the first step and then every stride steps, so
	// the third call lands within three strides.
	if max := uint64(3 * cancelCheckStride); clk.Cycle() > max {
		t.Fatalf("cancel observed after %d cycles, want <= %d", clk.Cycle(), max)
	}
}

func TestCancelRunUntilReturnsErrCanceled(t *testing.T) {
	clk := NewClock()
	clk.Register(&ticker{})
	clk.SetCancel(func() bool { return true })
	err := clk.RunUntil(func() bool { return false }, 1_000_000)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunUntil = %v, want ErrCanceled", err)
	}
	err = clk.RunUntilQuiescent(1_000_000)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunUntilQuiescent = %v, want ErrCanceled", err)
	}
}

func TestCancelQuiescencePreemptsCancellation(t *testing.T) {
	// A domain that is already quiescent reports success even with a
	// triggered hook: the drain finished, cancellation has nothing to
	// stop.
	clk := NewClock()
	clk.SetCancel(func() bool { return true })
	if err := clk.RunUntilQuiescent(1000); err != nil {
		t.Fatalf("RunUntilQuiescent on quiescent clock = %v, want nil", err)
	}
}

func TestCancelContextHook(t *testing.T) {
	clk := NewClock()
	clk.Register(&ticker{})
	ctx, cancel := context.WithCancel(context.Background())
	clk.SetCancel(func() bool { return ctx.Err() != nil })
	clk.Run(500) // uncancelled: runs to completion
	if clk.Cycle() != 500 {
		t.Fatalf("cycle %d before cancel, want 500", clk.Cycle())
	}
	cancel()
	clk.Run(1_000_000)
	if clk.Cycle() >= 500+uint64(cancelCheckStride) {
		t.Fatalf("cancelled run advanced to %d", clk.Cycle())
	}
}

func TestCancelCycleBudgetHookWithWarp(t *testing.T) {
	// A cycle-budget hook bounds a warping run too: the warp jumps to
	// the armed timer inside the Run window and the next hook check
	// observes the budget exceeded.
	clk := NewClock()
	n := &napper{clk: clk}
	clk.Register(n)
	const budget = 10_000
	clk.SetCancel(func() bool { return clk.Cycle() >= budget })
	err := clk.RunUntil(func() bool { return false }, 1_000_000_000_000)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunUntil = %v, want ErrCanceled", err)
	}
	if clk.Cycle() > 1_000_000_001 {
		t.Fatalf("budgeted run escaped to cycle %d", clk.Cycle())
	}
}

func TestCancelClearHook(t *testing.T) {
	clk := NewClock()
	clk.Register(&ticker{})
	clk.SetCancel(func() bool { return true })
	clk.SetCancel(nil)
	clk.Run(100)
	if clk.Cycle() != 100 {
		t.Fatalf("cycle %d after clearing hook, want 100", clk.Cycle())
	}
}

// groupPair builds a two-domain group with a mirror wire from domain 0
// to domain 1 and a ticker in each, so both domains stay busy and the
// parallel horizon protocol is exercised.
func groupPair(t *testing.T) (*Group, *ticker, *ticker) {
	t.Helper()
	g := NewGroup(2)
	t0, t1 := &ticker{}, &ticker{}
	g.Clock(0).Register(t0)
	g.Clock(1).Register(t1)
	MirrorWire(NewWire(g.Clock(0), "x", false), g.Clock(1))
	return g, t0, t1
}

func TestCancelGroupLockstep(t *testing.T) {
	g, _, _ := groupPair(t)
	var n atomic.Int64
	g.SetCancel(func() bool { return n.Add(1) >= 4 })
	g.Run(1_000_000)
	if g.Cycle() >= 1_000_000 {
		t.Fatalf("lockstep run not cancelled: cycle %d", g.Cycle())
	}
	if err := g.RunUntil(func() bool { return false }, 1_000_000); !errors.Is(err, ErrCanceled) {
		t.Fatalf("group RunUntil = %v, want ErrCanceled", err)
	}
}

func TestCancelGroupParallelNoDeadlock(t *testing.T) {
	g, _, _ := groupPair(t)
	g.SetParallel(true)
	var n atomic.Int64
	// The hook fires on one domain's goroutine first; the other must
	// not deadlock waiting for the cancelled domain's horizon.
	g.SetCancel(func() bool { return n.Add(1) >= 10 })
	g.Run(200_000) // must terminate
	if err := g.RunUntilQuiescent(1_000_000); !errors.Is(err, ErrCanceled) {
		t.Fatalf("parallel RunUntilQuiescent = %v, want ErrCanceled", err)
	}
}

func TestCancelGroupParallelPerDomainHooks(t *testing.T) {
	// Per-domain cycle-budget closures: each goroutine reads only its
	// own clock, the pattern traffic.Run uses for simulated-cycle
	// deadlines on sharded meshes.
	g, _, _ := groupPair(t)
	g.SetParallel(true)
	const budget = 5_000
	for i := 0; i < g.Domains(); i++ {
		c := g.Clock(i)
		c.SetCancel(func() bool { return c.Cycle() >= budget })
	}
	g.Run(50_000_000) // must terminate well before 50M busy cycles
	for i := 0; i < g.Domains(); i++ {
		if cyc := g.Clock(i).Cycle(); cyc > budget+2*cancelCheckStride {
			t.Fatalf("domain %d ran to cycle %d past budget %d", i, cyc, budget)
		}
	}
}

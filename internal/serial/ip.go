package serial

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// auto-baud states.
const (
	abWait = iota // line idle, waiting for the sync byte's start bit
	abMeasure
	abSettle
	abDone
)

// IP is the Serial IP core (§2.2): it assembles NoC packets from host
// command bytes arriving on rxd and disassembles NoC packets into frame
// bytes on txd. Before anything else it measures the host baud rate
// from the 0x55 synchronization byte (§4).
type IP struct {
	ep  *noc.Endpoint
	utx *TX
	urx *RX

	parser  downParser
	abState int
	abCnt   int
	abDiv   int

	// Stats.
	FramesToNoC  uint64
	FramesToHost uint64
	EncodeErrors uint64
	PacketErrors uint64
}

// NewIP creates the Serial IP on the router at addr. rxd carries data
// from the host (the system's "tx" pin in Figure 1), txd to the host.
// The IP registers itself with the network's clock.
func NewIP(net *noc.Network, addr noc.Addr, rxd, txd *Line) (*IP, error) {
	ep, err := net.NewEndpoint(addr)
	if err != nil {
		return nil, err
	}
	ip := &IP{
		ep:      ep,
		utx:     NewTX(txd, 0),
		urx:     NewRX(rxd, 0),
		abState: abWait,
	}
	ip.urx.Recv = ip.feed
	ep.SetOwner(ip)
	// A start bit on the host line must wake the IP out of idle sleep,
	// both for auto-baud edge measurement and for frame reception.
	sim.Watch(rxd, ip)
	net.Clock().Register(ip)
	return ip, nil
}

// Baud reports the detected divisor (0 before synchronization).
func (ip *IP) Baud() int { return ip.abDiv }

// Synchronized reports whether auto-baud has completed.
func (ip *IP) Synchronized() bool { return ip.abState == abDone }

// Addr returns the IP's mesh address.
func (ip *IP) Addr() noc.Addr { return ip.ep.Addr() }

// Name implements sim.Component.
func (ip *IP) Name() string { return fmt.Sprintf("serialip%s", ip.ep.Addr()) }

// feed handles one received host byte.
func (ip *IP) feed(b byte) {
	m, tgt, ok := ip.parser.Feed(b)
	if !ok {
		return
	}
	ip.FramesToNoC++
	// Oversized writes are split into multiple service packets so the
	// 8-bit size flit can express them.
	if m.Svc == noc.SvcWriteMem && len(m.Words) > noc.MaxServiceWords {
		for _, span := range noc.SplitWords(m.Addr, m.Words) {
			sub := &noc.Message{Svc: noc.SvcWriteMem, Addr: span.Addr, Words: span.Words}
			if _, err := ip.ep.SendMessage(tgt, sub); err != nil {
				ip.EncodeErrors++
			}
		}
		return
	}
	if m.Svc == noc.SvcReadMem && m.Count > noc.MaxServiceWords {
		addr, left := m.Addr, m.Count
		for left > 0 {
			n := left
			if n > noc.MaxServiceWords {
				n = noc.MaxServiceWords
			}
			sub := &noc.Message{Svc: noc.SvcReadMem, Addr: addr, Count: n}
			if _, err := ip.ep.SendMessage(tgt, sub); err != nil {
				ip.EncodeErrors++
			}
			addr += uint16(n)
			left -= n
		}
		return
	}
	if _, err := ip.ep.SendMessage(tgt, m); err != nil {
		ip.EncodeErrors++
	}
}

// Eval implements sim.Component.
func (ip *IP) Eval() {
	ip.tickAutobaud()
	ip.urx.Tick()
	// NoC -> host direction.
	for {
		m, ok, err := ip.ep.RecvMessage()
		if !ok {
			break
		}
		if err != nil {
			ip.PacketErrors++
			continue
		}
		bs, err := EncodeUp(m)
		if err != nil {
			ip.EncodeErrors++
			continue
		}
		ip.FramesToHost++
		ip.utx.Queue(bs...)
	}
	ip.utx.Tick()
}

func (ip *IP) tickAutobaud() {
	if ip.abState == abDone {
		return
	}
	low := !ip.urx.line.Get()
	switch ip.abState {
	case abWait:
		if low {
			ip.abState = abMeasure
			ip.abCnt = 1
		}
	case abMeasure:
		if low {
			ip.abCnt++
			return
		}
		// The 0x55 sync byte's start bit is exactly one bit period: the
		// low span we just measured is the divisor.
		ip.abDiv = ip.abCnt
		ip.abState = abSettle
		ip.abCnt = 0
	case abSettle:
		// Wait for the rest of the sync byte to pass: three bit periods
		// of continuous idle-high only occur after the stop bit.
		if low {
			ip.abCnt = 0
			return
		}
		ip.abCnt++
		if ip.abCnt >= 3*ip.abDiv {
			ip.urx.SetDiv(ip.abDiv)
			ip.utx.div = ip.abDiv
			ip.abState = abDone
		}
	}
}

// Commit implements sim.Component.
func (ip *IP) Commit() {}

// Idle implements sim.Idler. The Serial IP sleeps when both UART
// directions are at rest and no NoC packet awaits disassembly. During
// auto-baud it may only sleep while still waiting for the sync byte's
// start-bit edge (abWait); the measure and settle states count line
// cycles and must run every cycle. Wake sources: the watched host line
// (start bits) and the endpoint owner hook (NoC packets).
func (ip *IP) Idle() bool {
	if ip.abState != abDone && ip.abState != abWait {
		return false
	}
	return ip.utx.Idle() && ip.urx.Idle() && ip.ep.Pending() == 0
}

package serial

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// auto-baud states.
const (
	abWait = iota // line idle, waiting for the sync byte's start bit
	abMeasure
	abSettle
	abDone
)

// IP is the Serial IP core (§2.2): it assembles NoC packets from host
// command bytes arriving on rxd and disassembles NoC packets into frame
// bytes on txd. Before anything else it measures the host baud rate
// from the 0x55 synchronization byte (§4).
//
// Auto-baud is edge-stamped rather than cycle-counted: the watched rxd
// line wakes the IP at every transition, so the low span of the sync
// byte's start bit is measured as the difference of two cycle stamps
// and the settle window as an absolute deadline (armed as a WakeAt
// timer) — letting the IP sleep through the constant spans in between,
// which the time-warp kernel then skips outright.
type IP struct {
	ep   *noc.Endpoint
	clk  *sim.Clock
	self sim.Handle
	utx  *TX
	urx  *RX

	parser      downParser
	abState     int
	abDiv       int
	abLowStart  uint64 // cycle of the first low Eval of the measured start bit
	abHighStart uint64 // cycle of the first counted high Eval of the settle run

	// Stats.
	FramesToNoC  uint64
	FramesToHost uint64
	EncodeErrors uint64
	PacketErrors uint64
}

// NewIP creates the Serial IP on the router at addr. rxd carries data
// from the host (the system's "tx" pin in Figure 1), txd to the host.
// The IP registers itself with the network's primary clock — on a
// sharded network that is domain 0, where the host and its UART lines
// live, so its endpoint is placed there too (the Local-port links
// cross to the router's domain like any boundary link).
func NewIP(net *noc.Network, addr noc.Addr, rxd, txd *Line) (*IP, error) {
	ep, err := net.NewEndpointFor(net.Clock(), addr)
	if err != nil {
		return nil, err
	}
	ip := &IP{
		ep:      ep,
		clk:     net.Clock(),
		utx:     NewTX(txd, 0),
		urx:     NewRX(rxd, 0),
		abState: abWait,
	}
	ip.urx.Recv = ip.feed
	ip.utx.Bind(ip)
	ip.urx.Bind(ip)
	ep.SetOwner(ip)
	// A start bit on the host line must wake the IP out of idle sleep,
	// both for auto-baud edge measurement and for frame reception.
	sim.Watch(rxd, ip)
	net.Clock().Register(ip)
	ip.self = ip.clk.Handle(ip)
	return ip, nil
}

// Baud reports the detected divisor (0 before synchronization).
func (ip *IP) Baud() int { return ip.abDiv }

// Synchronized reports whether auto-baud has completed.
func (ip *IP) Synchronized() bool { return ip.abState == abDone }

// Addr returns the IP's mesh address.
func (ip *IP) Addr() noc.Addr { return ip.ep.Addr() }

// Name implements sim.Component.
func (ip *IP) Name() string { return fmt.Sprintf("serialip%s", ip.ep.Addr()) }

// feed handles one received host byte.
func (ip *IP) feed(b byte) {
	m, tgt, ok := ip.parser.Feed(b)
	if !ok {
		return
	}
	ip.FramesToNoC++
	// Oversized writes are split into multiple service packets so the
	// 8-bit size flit can express them.
	if m.Svc == noc.SvcWriteMem && len(m.Words) > noc.MaxServiceWords {
		for _, span := range noc.SplitWords(m.Addr, m.Words) {
			sub := &noc.Message{Svc: noc.SvcWriteMem, Addr: span.Addr, Words: span.Words}
			if _, err := ip.ep.SendMessage(tgt, sub); err != nil {
				ip.EncodeErrors++
			}
		}
		return
	}
	if m.Svc == noc.SvcReadMem && m.Count > noc.MaxServiceWords {
		addr, left := m.Addr, m.Count
		for left > 0 {
			n := left
			if n > noc.MaxServiceWords {
				n = noc.MaxServiceWords
			}
			sub := &noc.Message{Svc: noc.SvcReadMem, Addr: addr, Count: n}
			if _, err := ip.ep.SendMessage(tgt, sub); err != nil {
				ip.EncodeErrors++
			}
			addr += uint16(n)
			left -= n
		}
		return
	}
	if _, err := ip.ep.SendMessage(tgt, m); err != nil {
		ip.EncodeErrors++
	}
}

// Eval implements sim.Component.
func (ip *IP) Eval() {
	ip.tickAutobaud()
	ip.urx.Tick()
	// NoC -> host direction.
	for {
		m, ok, err := ip.ep.RecvMessage()
		if !ok {
			break
		}
		if err != nil {
			ip.PacketErrors++
			continue
		}
		bs, err := EncodeUp(m)
		if err != nil {
			ip.EncodeErrors++
			continue
		}
		ip.FramesToHost++
		ip.utx.Queue(bs...)
	}
	ip.utx.Tick()
}

func (ip *IP) tickAutobaud() {
	if ip.abState == abDone {
		return
	}
	now := ip.clk.Cycle() + 1
	low := !ip.urx.line.Get()
	switch ip.abState {
	case abWait:
		if low {
			ip.abState = abMeasure
			ip.abLowStart = now
		}
	case abMeasure:
		if low {
			return // constant span; the rising edge wakes us
		}
		// The 0x55 sync byte's start bit is exactly one bit period: the
		// low span we just measured is the divisor.
		ip.abDiv = int(now - ip.abLowStart)
		ip.abState = abSettle
		// The transition Eval itself is not counted towards the settle
		// window (matching the per-cycle reference); the run starts on
		// the next Eval.
		ip.abHighStart = now + 1
		ip.armSettle()
	case abSettle:
		// Wait for the rest of the sync byte to pass: three bit periods
		// of continuous idle-high only occur after the stop bit.
		if low {
			ip.abHighStart = 0
			return
		}
		if ip.abHighStart == 0 {
			ip.abHighStart = now
			ip.armSettle()
			return
		}
		if now >= ip.abHighStart+uint64(3*ip.abDiv)-1 {
			ip.urx.SetDiv(ip.abDiv)
			ip.utx.div = ip.abDiv
			ip.abState = abDone
		}
	}
}

// armSettle wakes the IP at the cycle the current high run completes
// the settle window (stale timers from interrupted runs fire as
// harmless no-op Evals).
func (ip *IP) armSettle() {
	ip.self.WakeAt(ip.abHighStart + uint64(3*ip.abDiv) - 1)
}

// Commit implements sim.Component.
func (ip *IP) Commit() {}

// Idle implements sim.Idler. The Serial IP sleeps whenever both UART
// directions are dormant (fully at rest, or paced by an armed bit/
// sample timer) and no NoC packet awaits disassembly. Auto-baud never
// keeps it awake: the measured and settled spans are constant line
// levels, so every event that advances the state machine is either a
// transition of the watched host line or the armed settle deadline.
// Wake sources: the watched host line, UART WakeAt timers, and the
// endpoint owner hook (NoC packets).
func (ip *IP) Idle() bool {
	return ip.utx.Dormant() && ip.urx.Dormant() && ip.ep.Pending() == 0
}

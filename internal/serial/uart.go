// Package serial implements the MultiNoC Serial IP core (§2.2) and the
// RS-232 machinery under it: a bit-level UART line model (start bit,
// eight data bits LSB-first, stop bit), auto-baud detection from the
// 0x55 synchronization byte (§4), and the framing that turns host
// command bytes into NoC service packets and back.
package serial

import "repro/internal/sim"

// Line is one RS-232 signal (idle high). The paper's tx/rx pair is two
// Lines, one per direction.
type Line = sim.Wire[bool]

// NewLine creates an idle-high line in clk's domain.
func NewLine(clk *sim.Clock, name string) *Line {
	return sim.NewWire(clk, name, true)
}

// TX serializes bytes onto a line at a fixed divisor (clock cycles per
// bit). The owning component calls Tick once per cycle and Queue to
// append bytes; Queue is safe during the owner's Eval.
type TX struct {
	line *Line
	div  int

	queue []byte
	// shift register state: 1 start + 8 data + 1 stop.
	bits   uint16
	bitIdx int
	cnt    int
	active bool

	// Gap inserts idle cycles after each byte (used by the host to
	// separate the auto-baud byte from the first frame).
	Gap     int
	gapLeft int

	Sent uint64
}

// NewTX returns a transmitter for line at div clock cycles per bit.
func NewTX(line *Line, div int) *TX { return &TX{line: line, div: div} }

// Queue appends bytes for transmission.
func (t *TX) Queue(bs ...byte) { t.queue = append(t.queue, bs...) }

// Idle reports whether the transmitter has nothing to send.
func (t *TX) Idle() bool { return !t.active && len(t.queue) == 0 && t.gapLeft == 0 }

// QueueLen reports how many bytes await transmission.
func (t *TX) QueueLen() int { return len(t.queue) }

// Div reports the configured divisor.
func (t *TX) Div() int { return t.div }

// Tick advances the transmitter by one clock cycle.
func (t *TX) Tick() {
	if t.gapLeft > 0 {
		t.gapLeft--
		t.line.Set(true)
		return
	}
	if !t.active {
		if len(t.queue) == 0 {
			t.line.Set(true)
			return
		}
		b := t.queue[0]
		t.queue = t.queue[1:]
		// LSB first, framed by start (0) and stop (1).
		t.bits = uint16(b)<<1 | 1<<9
		t.bitIdx = 0
		t.cnt = 0
		t.active = true
	}
	t.line.Set(t.bits>>t.bitIdx&1 != 0)
	t.cnt++
	if t.cnt == t.div {
		t.cnt = 0
		t.bitIdx++
		if t.bitIdx == 10 {
			t.active = false
			t.Sent++
			t.gapLeft = t.Gap
		}
	}
}

// RX deserializes bytes from a line. SetDiv configures the divisor
// (possibly discovered by auto-baud); bytes appear via the Recv hook.
type RX struct {
	line *Line
	div  int

	state  int // 0 idle, 1 receiving
	cnt    int
	bitIdx int
	cur    uint16

	// Recv is called for every received byte during Tick.
	Recv func(b byte)

	Received   uint64
	FrameError uint64
}

// NewRX returns a receiver for line at div cycles per bit (0 = not yet
// known; Tick ignores traffic until SetDiv).
func NewRX(line *Line, div int) *RX { return &RX{line: line, div: div} }

// SetDiv sets the divisor, typically from auto-baud measurement.
func (r *RX) SetDiv(div int) { r.div = div }

// Idle reports that the receiver is between frames with the line at
// rest (idle high): Tick would be a no-op. The owning component may
// sleep in this state if it watches the line for the next start bit.
func (r *RX) Idle() bool { return r.state == 0 && r.line.Get() }

// Div reports the current divisor (0 when undetected).
func (r *RX) Div() int { return r.div }

// Tick advances the receiver by one clock cycle.
func (r *RX) Tick() {
	if r.div <= 0 {
		return
	}
	bit := r.line.Get()
	switch r.state {
	case 0:
		if !bit { // start bit edge
			r.state = 1
			r.cnt = r.div / 2 // sample mid-bit
			r.bitIdx = -1     // -1 = verifying start bit
			r.cur = 0
		}
	case 1:
		r.cnt--
		if r.cnt > 0 {
			return
		}
		r.cnt = r.div
		switch {
		case r.bitIdx == -1:
			if bit { // start bit vanished: glitch
				r.state = 0
				r.FrameError++
				return
			}
			r.bitIdx = 0
		case r.bitIdx < 8:
			if bit {
				r.cur |= 1 << r.bitIdx
			}
			r.bitIdx++
		default: // stop bit
			if bit {
				r.Received++
				if r.Recv != nil {
					r.Recv(byte(r.cur))
				}
			} else {
				r.FrameError++
			}
			r.state = 0
		}
	}
}

// Package serial implements the MultiNoC Serial IP core (§2.2) and the
// RS-232 machinery under it: a bit-level UART line model (start bit,
// eight data bits LSB-first, stop bit), auto-baud detection from the
// 0x55 synchronization byte (§4), and the framing that turns host
// command bytes into NoC service packets and back.
//
// The UART models are event-paced: the line only changes at bit edges,
// so between edges a transmitter or receiver has nothing to do. Both
// therefore schedule their next edge (or mid-bit sample) at an absolute
// cycle and, when bound to an owning component with Bind, arm a
// sim.Clock.WakeAt timer for it — letting the owner sleep through the
// divisor-many dead cycles inside every bit and the time-warp kernel
// skip them outright. Ticking every cycle (an unbound owner that never
// idles) exercises exactly the same state machine and produces a
// bit-identical line waveform.
package serial

import "repro/internal/sim"

// Line is one RS-232 signal (idle high). The paper's tx/rx pair is two
// Lines, one per direction.
type Line = sim.Wire[bool]

// NewLine creates an idle-high line in clk's domain.
func NewLine(clk *sim.Clock, name string) *Line {
	return sim.NewWire(clk, name, true)
}

// TX serializes bytes onto a line at a fixed divisor (clock cycles per
// bit). The owning component calls Tick once per cycle it is awake and
// Queue to append bytes; Queue is safe during the owner's Eval. Tick
// only acts at bit edges (scheduled at absolute cycles), so a bound
// owner sleeps between edges and is woken by the WakeAt timer TX arms.
type TX struct {
	line  *Line
	clk   *sim.Clock
	owner sim.Component // woken at bit edges; nil = owner must tick every cycle
	self  sim.Handle    // owner's wake token, resolved on first use
	div   int

	queue []byte
	// shift register state: 1 start + 8 data + 1 stop.
	bits   uint16
	bitIdx int
	active bool
	edgeAt uint64 // cycle at which the current bit period ends
	gapEnd uint64 // cycle before which no new byte may start

	// Gap inserts idle cycles after each byte (used by the host to
	// separate the auto-baud byte from the first frame).
	Gap int

	Sent uint64
}

// NewTX returns a transmitter for line at div clock cycles per bit.
func NewTX(line *Line, div int) *TX {
	return &TX{line: line, clk: line.Clock(), div: div}
}

// Bind names the component that owns (ticks) this transmitter. A bound
// transmitter arms a WakeAt timer for the owner at every scheduled bit
// edge, so the owner may report Idle between edges (see Dormant).
// Bind may precede the owner's Clock registration; the wake handle is
// resolved lazily on the first edge.
func (t *TX) Bind(owner sim.Component) { t.owner, t.self = owner, sim.Handle{} }

// Queue appends bytes for transmission.
func (t *TX) Queue(bs ...byte) { t.queue = append(t.queue, bs...) }

// Idle reports whether the transmitter has fully drained: nothing
// queued, no byte in flight and any post-byte gap elapsed.
func (t *TX) Idle() bool {
	return !t.active && len(t.queue) == 0 && t.clk.Cycle()+1 >= t.gapEnd
}

// Dormant reports whether the transmitter needs no Evals until an
// already-armed timer fires (mid-bit, mid-gap) or it is fully idle. A
// bound owner may sleep whenever Dormant; an unbound transmitter is
// only dormant when Idle, since nothing would wake its owner at the
// next edge.
func (t *TX) Dormant() bool {
	if t.owner == nil {
		return t.Idle()
	}
	if t.active || t.clk.Cycle()+1 < t.gapEnd {
		return true // edge or gap timer armed
	}
	return len(t.queue) == 0
}

// QueueLen reports how many bytes await transmission.
func (t *TX) QueueLen() int { return len(t.queue) }

// Div reports the configured divisor.
func (t *TX) Div() int { return t.div }

// setLine stages v only on change, so an idle transmitter does not keep
// its line on the kernel's dirty list.
func (t *TX) setLine(v bool) {
	if t.line.Peek() != v {
		t.line.Set(v)
	}
}

func (t *TX) wake(at uint64) {
	if t.owner == nil {
		return
	}
	if !t.self.Valid() {
		t.self = t.clk.Handle(t.owner)
	}
	t.self.WakeAt(at)
}

// drive stages the level of bit t.bitIdx, extends t.bitIdx through the
// run of equal bits that follows (the line does not move inside a run,
// so the next wake can land directly on the transition — or the frame
// end) and schedules the edge that ends the run.
func (t *TX) drive(now uint64) {
	v := t.bits>>t.bitIdx&1 != 0
	t.setLine(v)
	run := 1
	for t.bitIdx+1 < 10 && (t.bits>>(t.bitIdx+1)&1 != 0) == v {
		t.bitIdx++
		run++
	}
	t.edgeAt = now + uint64(run*t.div)
	t.wake(t.edgeAt)
}

// Tick advances the transmitter. Call once per cycle the owner is
// awake; mid-bit calls return immediately.
func (t *TX) Tick() {
	now := t.clk.Cycle() + 1 // the cycle this Eval's edge completes
	if t.active {
		if now < t.edgeAt {
			return
		}
		t.bitIdx++
		if t.bitIdx < 10 {
			t.drive(now)
			return
		}
		// Stop bit completed.
		t.active = false
		t.Sent++
		t.gapEnd = now + uint64(t.Gap)
	}
	if now < t.gapEnd {
		t.setLine(true)
		if len(t.queue) > 0 {
			t.wake(t.gapEnd) // start the next byte the moment the gap ends
		} else if now < t.gapEnd-1 {
			// Nothing to transmit at the gap's end, but Idle() flips
			// after cycle gapEnd-1 and drain loops poll it between
			// steps: wake the owner there so a warped run observes the
			// flip on exactly the cycle a stepped run does.
			t.wake(t.gapEnd - 1)
		}
		return
	}
	if len(t.queue) == 0 {
		t.setLine(true)
		return
	}
	b := t.queue[0]
	t.queue = t.queue[1:]
	// LSB first, framed by start (0) and stop (1).
	t.bits = uint16(b)<<1 | 1<<9
	t.bitIdx = 0
	t.active = true
	t.drive(now) // start bit (and the zero bits run-sharing its level)
}

// RX deserializes bytes from a line. SetDiv configures the divisor
// (possibly discovered by auto-baud); bytes appear via the Recv hook.
// Within a frame the receiver samples at absolute mid-bit cycles and,
// when bound, arms a WakeAt timer for its owner at each next sample.
type RX struct {
	line  *Line
	clk   *sim.Clock
	owner sim.Component
	self  sim.Handle // owner's wake token, resolved on first use
	div   int

	state    int // 0 idle, 1 receiving
	bitIdx   int
	cur      uint16
	sampleAt uint64 // cycle of the next mid-bit sample
	lastBit  bool   // line level observed by the previous Tick

	// Recv is called for every received byte during Tick.
	Recv func(b byte)

	Received   uint64
	FrameError uint64
}

// NewRX returns a receiver for line at div cycles per bit (0 = not yet
// known; Tick ignores traffic until SetDiv).
func NewRX(line *Line, div int) *RX {
	return &RX{line: line, clk: line.Clock(), div: div}
}

// Bind names the component that owns (ticks) this receiver, enabling
// mid-frame sleep between bit samples. Bind may precede the owner's
// Clock registration; the wake handle is resolved lazily.
func (r *RX) Bind(owner sim.Component) { r.owner, r.self = owner, sim.Handle{} }

// SetDiv sets the divisor, typically from auto-baud measurement.
func (r *RX) SetDiv(div int) { r.div = div }

// Idle reports that the receiver is between frames with the line at
// rest (idle high): Tick would be a no-op. The owning component may
// sleep in this state if it watches the line for the next start bit.
func (r *RX) Idle() bool { return r.state == 0 && r.line.Get() }

// Dormant reports whether the receiver needs no Evals until the line
// changes (watched by the owner) or the armed sample timer fires. A
// receiver with no divisor ignores the line entirely and is always
// dormant.
func (r *RX) Dormant() bool {
	if r.div <= 0 {
		return true
	}
	if r.state == 0 {
		return r.line.Get()
	}
	return r.owner != nil // sample timer armed
}

// Div reports the current divisor (0 when undetected).
func (r *RX) Div() int { return r.div }

func (r *RX) wake(at uint64) {
	if r.owner == nil {
		return
	}
	if !r.self.Valid() {
		r.self = r.clk.Handle(r.owner)
	}
	r.self.WakeAt(at)
}

// sample consumes one mid-bit sample with the given line level,
// advancing the frame state exactly as a per-cycle receiver would at
// that sample's cycle.
func (r *RX) sample(bit bool) {
	switch {
	case r.bitIdx == -1:
		if bit { // start bit vanished: glitch
			r.state = 0
			r.FrameError++
			return
		}
		r.bitIdx = 0
	case r.bitIdx < 8:
		if bit {
			r.cur |= 1 << r.bitIdx
		}
		r.bitIdx++
	default: // stop bit
		if bit {
			r.Received++
			if r.Recv != nil {
				r.Recv(byte(r.cur))
			}
		} else {
			r.FrameError++
		}
		r.state = 0
		return
	}
	r.sampleAt += uint64(r.div)
}

// Tick advances the receiver. Call once per cycle the owner is awake.
// The line can only move while its driver is awake to stage the change,
// and every change reaches the owner (a bound owner watches the line,
// an unbound owner ticks every cycle), so the level across the cycles
// since the previous Tick is exactly the level that Tick observed: all
// mid-bit samples that fell due in between are reconstructed from it,
// and the only timer a frame needs is its stop-bit sample.
func (r *RX) Tick() {
	if r.div <= 0 {
		return
	}
	now := r.clk.Cycle() + 1
	bit := r.line.Get()
	closedOnTime := false
	for r.state == 1 && r.sampleAt <= now {
		onTime := r.sampleAt == now
		if onTime {
			r.sample(bit) // a sample on this cycle sees the new level
		} else {
			r.sample(r.lastBit)
		}
		if r.state == 0 {
			closedOnTime = onTime
		}
	}
	if r.state == 0 && !bit { // start bit edge
		if closedOnTime {
			// The previous frame closed on a sample of this very cycle.
			// The per-cycle reference, already dispatched into its
			// receiving state, only sees this edge on the next cycle —
			// wake the owner there so the bound receiver detects the
			// start bit on exactly the same cycle.
			r.wake(now + 1)
		} else {
			// Either plain idle-line detection, or the edge that ended
			// a deferred catch-up: the reference closed the frame
			// cycles ago and would detect this very edge now.
			r.state = 1
			r.bitIdx = -1 // -1 = verifying start bit
			r.cur = 0
			r.sampleAt = now + uint64(r.div/2) // sample mid-bit
			// One timer per frame: the stop-bit sample, where the byte
			// completes even if the line never moves again.
			r.wake(r.sampleAt + uint64(9*r.div))
		}
	}
	r.lastBit = bit
}

package serial

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

// uartPair wires a TX to an RX over one line in a fresh clock domain.
func uartPair(div int) (*sim.Clock, *TX, *RX, *[]byte) {
	clk := sim.NewClock()
	line := NewLine(clk, "line")
	tx := NewTX(line, div)
	rx := NewRX(line, div)
	got := &[]byte{}
	rx.Recv = func(b byte) { *got = append(*got, b) }
	clk.Register(&uartDriver{tx: tx, rx: rx})
	return clk, tx, rx, got
}

// uartDriver ticks the UART pair as one component.
type uartDriver struct {
	tx *TX
	rx *RX
}

func (d *uartDriver) Name() string { return "uart" }
func (d *uartDriver) Eval()        { d.tx.Tick(); d.rx.Tick() }
func (d *uartDriver) Commit()      {}

func TestUARTByteTransfer(t *testing.T) {
	for _, div := range []int{4, 8, 16, 33} {
		clk, tx, _, got := uartPair(div)
		tx.Queue(0x55, 0x00, 0xFF, 'A')
		clk.Run(uint64(div * 10 * 6))
		want := []byte{0x55, 0x00, 0xFF, 'A'}
		if len(*got) != len(want) {
			t.Fatalf("div %d: received %d bytes, want %d", div, len(*got), len(want))
		}
		for i, b := range want {
			if (*got)[i] != b {
				t.Errorf("div %d byte %d: %#02x, want %#02x", div, i, (*got)[i], b)
			}
		}
	}
}

func TestUARTPropertyAllBytes(t *testing.T) {
	if err := quick.Check(func(b byte) bool {
		clk, tx, _, got := uartPair(8)
		tx.Queue(b)
		clk.Run(8 * 10 * 2)
		return len(*got) == 1 && (*got)[0] == b
	}, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestUARTGapKeepsLineIdle(t *testing.T) {
	clk, tx, _, got := uartPair(8)
	tx.Gap = 32
	tx.Queue(1, 2)
	clk.Run(8*10*2 + 100)
	if len(*got) != 2 {
		t.Fatalf("received %d bytes", len(*got))
	}
	if tx.Sent != 2 {
		t.Errorf("tx.Sent = %d", tx.Sent)
	}
}

func TestRXIgnoresTrafficWithoutDivisor(t *testing.T) {
	clk := sim.NewClock()
	line := NewLine(clk, "line")
	tx := NewTX(line, 8)
	rx := NewRX(line, 0) // divisor unknown
	n := 0
	rx.Recv = func(byte) { n++ }
	clk.Register(&uartDriver{tx: tx, rx: rx})
	tx.Queue(0xAA)
	clk.Run(8 * 10 * 2)
	if n != 0 {
		t.Error("RX decoded without a divisor")
	}
}

func TestDownParserFigureNineExample(t *testing.T) {
	// "00 01 01 00 20": read, target IP 01, count 1, address 0x0020.
	var p downParser
	var msg *noc.Message
	var tgt noc.Addr
	for _, b := range []byte{0x00, 0x01, 0x01, 0x00, 0x20} {
		if m, a, ok := p.Feed(b); ok {
			msg, tgt = m, a
		}
	}
	if msg == nil {
		t.Fatal("frame not decoded")
	}
	if msg.Svc != noc.SvcReadMem || msg.Count != 1 || msg.Addr != 0x0020 {
		t.Errorf("decoded %+v", msg)
	}
	if tgt != (noc.Addr{X: 0, Y: 1}) {
		t.Errorf("target = %s, want 01", tgt)
	}
}

func TestDownParserResync(t *testing.T) {
	var p downParser
	// Garbage command byte, then a valid activate frame.
	frames := 0
	for _, b := range []byte{0xEE, CmdActivate, 0x10} {
		if _, _, ok := p.Feed(b); ok {
			frames++
		}
	}
	if frames != 1 || p.Errors != 1 {
		t.Errorf("frames=%d errors=%d", frames, p.Errors)
	}
}

func TestEncodeDownDecodeRoundTrip(t *testing.T) {
	msgs := []*noc.Message{
		{Svc: noc.SvcReadMem, Addr: 0x0123, Count: 9},
		{Svc: noc.SvcWriteMem, Addr: 0x0040, Words: []uint16{1, 0xFFFF, 3}},
		{Svc: noc.SvcActivate},
		{Svc: noc.SvcScanfReturn, Words: []uint16{0xBEEF}},
	}
	tgt := noc.Addr{X: 1, Y: 0}
	for _, m := range msgs {
		bs, err := EncodeDown(tgt, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Svc, err)
		}
		var p downParser
		var got *noc.Message
		var gotTgt noc.Addr
		for _, b := range bs {
			if mm, a, ok := p.Feed(b); ok {
				got, gotTgt = mm, a
			}
		}
		if got == nil || got.Svc != m.Svc || gotTgt != tgt {
			t.Fatalf("%s: round trip failed: %+v", m.Svc, got)
		}
		if got.Addr != m.Addr || got.Count != m.Count || len(got.Words) != len(m.Words) {
			t.Errorf("%s: fields lost: %+v vs %+v", m.Svc, got, m)
		}
	}
}

func TestEncodeUpDecodeRoundTrip(t *testing.T) {
	msgs := []*noc.Message{
		{Svc: noc.SvcReadReturn, Src: noc.Addr{X: 1, Y: 1}, Addr: 7, Words: []uint16{10, 20}},
		{Svc: noc.SvcPrintf, Src: noc.Addr{X: 0, Y: 1}, Bytes: []byte("hi")},
		{Svc: noc.SvcScanf, Src: noc.Addr{X: 1, Y: 0}},
	}
	for _, m := range msgs {
		bs, err := EncodeUp(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Svc, err)
		}
		p := NewUpParser()
		var got *noc.Message
		for _, b := range bs {
			if mm, ok := p.Feed(b); ok {
				got = mm
			}
		}
		if got == nil || got.Svc != m.Svc || got.Src != m.Src {
			t.Fatalf("%s round trip failed: %+v", m.Svc, got)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := EncodeUp(&noc.Message{Svc: noc.SvcActivate}); err == nil {
		t.Error("activate encoded upstream")
	}
	if _, err := EncodeDown(noc.Addr{}, &noc.Message{Svc: noc.SvcPrintf}); err == nil {
		t.Error("printf encoded downstream")
	}
	if _, err := EncodeDown(noc.Addr{}, &noc.Message{Svc: noc.SvcReadMem, Count: 0}); err == nil {
		t.Error("zero-count read encoded")
	}
	if _, err := EncodeDown(noc.Addr{}, &noc.Message{Svc: noc.SvcScanfReturn, Words: []uint16{1, 2}}); err == nil {
		t.Error("two-word scanf return encoded")
	}
}

// TestSerialIPAutobaudAndFrames drives the real Serial IP with a TX on
// the host side of the line.
func TestSerialIPAutobaudAndFrames(t *testing.T) {
	clk := sim.NewClock()
	net, err := noc.New(clk, noc.Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	rxd := NewLine(clk, "rxd")
	txd := NewLine(clk, "txd")
	ip, err := NewIP(net, noc.Addr{X: 0, Y: 0}, rxd, txd)
	if err != nil {
		t.Fatal(err)
	}
	// A raw endpoint plays the target IP.
	tgt, err := net.NewEndpoint(noc.Addr{X: 1, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	const div = 12
	hostTx := NewTX(rxd, div)
	hostTx.Gap = 4 * div
	clk.Register(&uartDriver{tx: hostTx, rx: NewRX(txd, div)})

	hostTx.Queue(SyncByte)
	if err := clk.RunUntil(ip.Synchronized, 10*div*20); err != nil {
		t.Fatal("auto-baud never locked:", err)
	}
	if ip.Baud() != div {
		t.Errorf("detected divisor = %d, want %d", ip.Baud(), div)
	}
	hostTx.Gap = 0
	// Send an activate command to IP 10 and expect the packet there.
	bs, err := EncodeDown(noc.Addr{X: 1, Y: 0}, &noc.Message{Svc: noc.SvcActivate})
	if err != nil {
		t.Fatal(err)
	}
	hostTx.Queue(bs...)
	var got *noc.Message
	err = clk.RunUntil(func() bool {
		m, ok, err := tgt.RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		got = m
		return ok
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Svc != noc.SvcActivate {
		t.Errorf("received %s", got.Svc)
	}
	if ip.FramesToNoC != 1 {
		t.Errorf("FramesToNoC = %d", ip.FramesToNoC)
	}
}

func TestSerialIPSplitsLargeWrites(t *testing.T) {
	clk := sim.NewClock()
	net, err := noc.New(clk, noc.Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	rxd := NewLine(clk, "rxd")
	txd := NewLine(clk, "txd")
	ip, err := NewIP(net, noc.Addr{X: 0, Y: 0}, rxd, txd)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := net.NewEndpoint(noc.Addr{X: 1, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	const div = 8
	hostTx := NewTX(rxd, div)
	hostTx.Gap = 4 * div
	clk.Register(&uartDriver{tx: hostTx, rx: NewRX(txd, div)})
	hostTx.Queue(SyncByte)
	if err := clk.RunUntil(ip.Synchronized, 10*div*20); err != nil {
		t.Fatal(err)
	}
	hostTx.Gap = 0
	// 200 words exceed the 125-word packet limit: expect 2 packets.
	words := make([]uint16, 200)
	for i := range words {
		words[i] = uint16(i)
	}
	bs, err := EncodeDown(noc.Addr{X: 1, Y: 0}, &noc.Message{Svc: noc.SvcWriteMem, Addr: 0, Words: words})
	if err != nil {
		t.Fatal(err)
	}
	hostTx.Queue(bs...)
	var msgs []*noc.Message
	err = clk.RunUntil(func() bool {
		for {
			m, ok, err := tgt.RecvMessage()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			msgs = append(msgs, m)
		}
		return len(msgs) == 2
	}, 5_000_000)
	if err != nil {
		t.Fatalf("got %d packets: %v", len(msgs), err)
	}
	if len(msgs[0].Words)+len(msgs[1].Words) != 200 {
		t.Errorf("split lost words: %d + %d", len(msgs[0].Words), len(msgs[1].Words))
	}
	if msgs[1].Addr != uint16(len(msgs[0].Words)) {
		t.Errorf("second chunk address = %d", msgs[1].Addr)
	}
	for i, m := range msgs {
		for j, w := range m.Words {
			if w != uint16(int(m.Addr)+j) {
				t.Fatalf("chunk %d word %d = %d", i, j, w)
			}
		}
	}
}

// glitchDriver injects a short low pulse on the line, then transmits.
type glitchDriver struct {
	line                *Line
	rx                  *RX
	tx                  *TX
	cycle               int
	glitchAt, glitchLen int
}

func (d *glitchDriver) Name() string { return "glitch" }
func (d *glitchDriver) Eval() {
	d.cycle++
	if d.cycle >= d.glitchAt && d.cycle < d.glitchAt+d.glitchLen {
		d.line.Set(false) // noise pulse
	} else {
		d.tx.Tick()
	}
	d.rx.Tick()
}
func (d *glitchDriver) Commit() {}

func TestRXRecoversFromLineGlitch(t *testing.T) {
	// A sub-bit noise pulse must produce a frame error (start bit
	// vanishes at the mid-bit sample) and the next clean byte must
	// still decode.
	clk := sim.NewClock()
	line := NewLine(clk, "line")
	tx := NewTX(line, 16)
	rx := NewRX(line, 16)
	var got []byte
	rx.Recv = func(b byte) { got = append(got, b) }
	d := &glitchDriver{line: line, rx: rx, tx: tx, glitchAt: 5, glitchLen: 3}
	clk.Register(d)
	clk.Run(200) // glitch happens with an idle transmitter
	if rx.FrameError == 0 {
		t.Error("glitch not detected as frame error")
	}
	tx.Queue(0xA5)
	clk.Run(16 * 10 * 2)
	if len(got) != 1 || got[0] != 0xA5 {
		t.Fatalf("post-glitch byte = %v", got)
	}
}

// sleepyRX is a bound, activity-scheduled RX owner: it ticks its
// receiver only when woken (by the watched line or the RX's own
// timers) and sleeps whenever the receiver is dormant.
type sleepyRX struct {
	rx *RX
}

func (d *sleepyRX) Name() string { return "sleepyrx" }
func (d *sleepyRX) Eval()        { d.rx.Tick() }
func (d *sleepyRX) Commit()      {}
func (d *sleepyRX) Idle() bool   { return d.rx.Dormant() }

// TestBoundRXGlitchMatchesReference: a glitched start bit whose frame
// error is only discovered by a deferred catch-up sample must not eat
// the genuine start edge that triggered the catch-up — the bound,
// sleeping receiver must decode exactly what the per-cycle reference
// decodes, at the same cycles.
func TestBoundRXGlitchMatchesReference(t *testing.T) {
	const div = 16
	type result struct {
		bytes  []byte
		cycles []uint64
		errs   uint64
	}
	run := func(bound bool) result {
		clk := sim.NewClock()
		line := NewLine(clk, "line")
		tx := NewTX(line, div)
		rx := NewRX(line, div)
		var res result
		rx.Recv = func(b byte) {
			res.bytes = append(res.bytes, b)
			res.cycles = append(res.cycles, clk.Cycle()+1)
		}
		d := &glitchDriver{line: line, rx: rx, tx: tx, glitchAt: 5, glitchLen: 3}
		if bound {
			// Split roles: the glitch/TX side stays per-cycle (with an
			// inert receiver of its own), the RX under test is a
			// separate sleeping component woken only by the line and
			// its timers.
			d.rx = NewRX(line, 0)
			s := &sleepyRX{rx: rx}
			rx.Bind(s)
			sim.Watch(line, s)
			clk.Register(d, s)
		} else {
			clk.Register(d)
		}
		// Glitch with an idle transmitter, then — before the stale
		// stop-bit deadline of the aborted frame has passed — transmit
		// a byte with no mid-frame transitions (0x00), so the receiver
		// must recover the real start edge from the catch-up path.
		clk.Run(20)
		tx.Queue(0x00, 0xA5)
		clk.Run(div*10*3 + 100)
		res.errs = rx.FrameError
		return res
	}
	ref := run(false)
	got := run(true)
	if ref.errs == 0 {
		t.Fatal("reference saw no frame error; glitch scenario not exercised")
	}
	if len(ref.bytes) != 2 || ref.bytes[0] != 0x00 || ref.bytes[1] != 0xA5 {
		t.Fatalf("reference decoded %v, want [0x00 0xA5]", ref.bytes)
	}
	if got.errs != ref.errs {
		t.Errorf("frame errors: bound %d, reference %d", got.errs, ref.errs)
	}
	if len(got.bytes) != len(ref.bytes) {
		t.Fatalf("bound receiver decoded %v, reference %v", got.bytes, ref.bytes)
	}
	for i := range ref.bytes {
		if got.bytes[i] != ref.bytes[i] || got.cycles[i] != ref.cycles[i] {
			t.Errorf("byte %d: bound (%#02x at %d), reference (%#02x at %d)",
				i, got.bytes[i], got.cycles[i], ref.bytes[i], ref.cycles[i])
		}
	}
}

package serial

import (
	"fmt"

	"repro/internal/noc"
)

// Host-to-MultiNoC command codes (§2.2: "Four commands are handled by
// the host computer"). The byte layouts follow the Figure 9 example
// "00 01 01 00 20" = read, target IP 01, count 1, address 0x0020.
const (
	CmdRead        = 0x00 // tgt cnt addrH addrL
	CmdWrite       = 0x01 // tgt cnt addrH addrL (dataH dataL) x cnt
	CmdActivate    = 0x02 // tgt
	CmdScanfReturn = 0x03 // tgt dataH dataL
)

// MultiNoC-to-host frame codes ("The other three commands ... come from
// the HERMES NoC to the host"): the service numbers of the underlying
// packets.
const (
	UpReadReturn = byte(noc.SvcReadReturn) // src cnt addrH addrL data...
	UpPrintf     = byte(noc.SvcPrintf)     // src len bytes...
	UpScanf      = byte(noc.SvcScanf)      // src
)

// SyncByte is the value the host transmits first so the Serial IP can
// measure the baud rate (§4).
const SyncByte = 0x55

// downParser is the Serial IP's streaming decoder for host command
// frames. Feed returns a completed message (addressed to Target) when
// a frame closes.
type downParser struct {
	buf []byte

	Frames uint64
	Errors uint64
}

// need computes the total frame length once enough of the header is
// visible, or 0 if more bytes are required to know.
func downNeed(buf []byte) (int, error) {
	switch buf[0] {
	case CmdRead:
		return 5, nil
	case CmdWrite:
		if len(buf) < 3 {
			return 0, nil
		}
		return 5 + 2*int(buf[2]), nil
	case CmdActivate:
		return 2, nil
	case CmdScanfReturn:
		return 4, nil
	default:
		return 0, fmt.Errorf("serial: unknown host command %#02x", buf[0])
	}
}

// Feed consumes one byte; when it completes a frame it returns the
// decoded message and the target address.
func (p *downParser) Feed(b byte) (*noc.Message, noc.Addr, bool) {
	p.buf = append(p.buf, b)
	n, err := downNeed(p.buf)
	if err != nil {
		// Resynchronize: drop the bogus byte.
		p.Errors++
		p.buf = p.buf[:0]
		return nil, noc.Addr{}, false
	}
	if n == 0 || len(p.buf) < n {
		return nil, noc.Addr{}, false
	}
	buf := p.buf
	p.buf = p.buf[:0]
	p.Frames++
	tgt := noc.DecodeAddr(uint16(buf[1]))
	switch buf[0] {
	case CmdRead:
		return &noc.Message{
			Svc:   noc.SvcReadMem,
			Count: int(buf[2]),
			Addr:  uint16(buf[3])<<8 | uint16(buf[4]),
		}, tgt, true
	case CmdWrite:
		m := &noc.Message{
			Svc:  noc.SvcWriteMem,
			Addr: uint16(buf[3])<<8 | uint16(buf[4]),
		}
		for i := 5; i+1 < len(buf); i += 2 {
			m.Words = append(m.Words, uint16(buf[i])<<8|uint16(buf[i+1]))
		}
		return m, tgt, true
	case CmdActivate:
		return &noc.Message{Svc: noc.SvcActivate}, tgt, true
	default: // CmdScanfReturn
		return &noc.Message{
			Svc:   noc.SvcScanfReturn,
			Words: []uint16{uint16(buf[2])<<8 | uint16(buf[3])},
		}, tgt, true
	}
}

// EncodeUp serializes a NoC-to-host message into frame bytes.
func EncodeUp(m *noc.Message) ([]byte, error) {
	switch m.Svc {
	case noc.SvcReadReturn:
		if len(m.Words) > 255 {
			return nil, fmt.Errorf("serial: read return of %d words too long", len(m.Words))
		}
		out := []byte{UpReadReturn, byte(m.Src.Encode()), byte(len(m.Words)),
			byte(m.Addr >> 8), byte(m.Addr)}
		for _, w := range m.Words {
			out = append(out, byte(w>>8), byte(w))
		}
		return out, nil
	case noc.SvcPrintf:
		if len(m.Bytes) > 255 {
			return nil, fmt.Errorf("serial: printf of %d bytes too long", len(m.Bytes))
		}
		out := []byte{UpPrintf, byte(m.Src.Encode()), byte(len(m.Bytes))}
		return append(out, m.Bytes...), nil
	case noc.SvcScanf:
		return []byte{UpScanf, byte(m.Src.Encode())}, nil
	default:
		return nil, fmt.Errorf("serial: service %s cannot be sent to the host", m.Svc)
	}
}

// UpParser is the host-side streaming decoder for MultiNoC frames.
type UpParser struct {
	buf []byte

	Frames uint64
	Errors uint64
}

func upNeed(buf []byte) (int, error) {
	switch buf[0] {
	case UpReadReturn:
		if len(buf) < 3 {
			return 0, nil
		}
		return 5 + 2*int(buf[2]), nil
	case UpPrintf:
		if len(buf) < 3 {
			return 0, nil
		}
		return 3 + int(buf[2]), nil
	case UpScanf:
		return 2, nil
	default:
		return 0, fmt.Errorf("serial: unknown upstream frame %#02x", buf[0])
	}
}

// Feed consumes one byte, returning a decoded message when a frame
// completes. The message's Src field carries the originating IP.
func (p *UpParser) Feed(b byte) (*noc.Message, bool) {
	p.buf = append(p.buf, b)
	n, err := upNeed(p.buf)
	if err != nil {
		p.Errors++
		p.buf = p.buf[:0]
		return nil, false
	}
	if n == 0 || len(p.buf) < n {
		return nil, false
	}
	buf := p.buf
	p.buf = p.buf[:0]
	p.Frames++
	src := noc.DecodeAddr(uint16(buf[1]))
	switch buf[0] {
	case UpReadReturn:
		m := &noc.Message{Svc: noc.SvcReadReturn, Src: src,
			Addr: uint16(buf[3])<<8 | uint16(buf[4])}
		for i := 5; i+1 < len(buf); i += 2 {
			m.Words = append(m.Words, uint16(buf[i])<<8|uint16(buf[i+1]))
		}
		return m, true
	case UpPrintf:
		m := &noc.Message{Svc: noc.SvcPrintf, Src: src}
		m.Bytes = append(m.Bytes, buf[3:]...)
		return m, true
	default:
		return &noc.Message{Svc: noc.SvcScanf, Src: src}, true
	}
}

// EncodeDown serializes a host command into frame bytes (the inverse of
// downParser, used by the host model).
func EncodeDown(tgt noc.Addr, m *noc.Message) ([]byte, error) {
	t := byte(tgt.Encode())
	switch m.Svc {
	case noc.SvcReadMem:
		if m.Count < 1 || m.Count > 255 {
			return nil, fmt.Errorf("serial: read count %d out of byte range", m.Count)
		}
		return []byte{CmdRead, t, byte(m.Count), byte(m.Addr >> 8), byte(m.Addr)}, nil
	case noc.SvcWriteMem:
		if len(m.Words) < 1 || len(m.Words) > 255 {
			return nil, fmt.Errorf("serial: write of %d words out of byte range", len(m.Words))
		}
		out := []byte{CmdWrite, t, byte(len(m.Words)), byte(m.Addr >> 8), byte(m.Addr)}
		for _, w := range m.Words {
			out = append(out, byte(w>>8), byte(w))
		}
		return out, nil
	case noc.SvcActivate:
		return []byte{CmdActivate, t}, nil
	case noc.SvcScanfReturn:
		if len(m.Words) != 1 {
			return nil, fmt.Errorf("serial: scanf return wants 1 word, got %d", len(m.Words))
		}
		return []byte{CmdScanfReturn, t, byte(m.Words[0] >> 8), byte(m.Words[0])}, nil
	default:
		return nil, fmt.Errorf("serial: service %s cannot be sent by the host", m.Svc)
	}
}

// NewUpParser returns a streaming decoder for MultiNoC-to-host frames.
func NewUpParser() *UpParser { return &UpParser{} }

// Package floorplan implements the manual floorplanning step that §3
// of the paper calls out: fitting MultiNoC onto a 98%-full XC2S200E
// required hand placement, with the NoC centred, the Serial IP next to
// its pads, the processors beside the BlockRAM columns and the memory
// in the remaining area (Figure 7).
//
// The package models the FPGA as a coarse cell grid with fixed pad and
// BlockRAM-column sites, IP cores as rectangular blocks, and
// connectivity as nets whose cost is half-perimeter wirelength (HPWL).
// A deterministic simulated annealer searches placements; experiment E6
// checks that the annealed result both beats random placement and
// reproduces the paper's qualitative layout decisions.
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Point is a cell coordinate on the fabric.
type Point struct{ X, Y int }

// Block is a rectangular IP region of W x H cells.
type Block struct {
	Name string
	W, H int
	// NeedsBRAM pulls the block towards a BlockRAM column (Spartan-II
	// devices place BlockRAMs along the left and right die edges).
	NeedsBRAM bool
}

// Net connects the centres of the named blocks, optionally including a
// fixed point (an I/O pad site).
type Net struct {
	Blocks []string
	Pad    *Point
	Weight float64
}

// Fabric is the device grid.
type Fabric struct {
	W, H int
	// BRAMCols are the x coordinates of BlockRAM columns.
	BRAMCols []int
}

// Problem is a floorplanning instance.
type Problem struct {
	Fabric Fabric
	Blocks []Block
	Nets   []Net
	// BRAMWeight scales the pull of NeedsBRAM blocks towards a column.
	BRAMWeight float64
}

// Placement maps block names to top-left corners.
type Placement map[string]Point

// Copy clones the placement.
func (pl Placement) Copy() Placement {
	out := make(Placement, len(pl))
	for k, v := range pl {
		out[k] = v
	}
	return out
}

func (p *Problem) block(name string) *Block {
	for i := range p.Blocks {
		if p.Blocks[i].Name == name {
			return &p.Blocks[i]
		}
	}
	return nil
}

// Legal reports whether the placement is inside the fabric and
// overlap-free.
func (p *Problem) Legal(pl Placement) bool {
	type rect struct{ x0, y0, x1, y1 int }
	var rects []rect
	for _, b := range p.Blocks {
		at, ok := pl[b.Name]
		if !ok {
			return false
		}
		if at.X < 0 || at.Y < 0 || at.X+b.W > p.Fabric.W || at.Y+b.H > p.Fabric.H {
			return false
		}
		rects = append(rects, rect{at.X, at.Y, at.X + b.W, at.Y + b.H})
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			if a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1 {
				return false
			}
		}
	}
	return true
}

// centre returns a block's centre in half-cell units to stay integral.
func centre(b *Block, at Point) (float64, float64) {
	return float64(at.X) + float64(b.W)/2, float64(at.Y) + float64(b.H)/2
}

// Cost is the weighted HPWL over all nets plus the BRAM-affinity
// penalty. Lower is better; illegal placements return +Inf.
func (p *Problem) Cost(pl Placement) float64 {
	if !p.Legal(pl) {
		return math.Inf(1)
	}
	total := 0.0
	for _, n := range p.Nets {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		add := func(x, y float64) {
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		for _, name := range n.Blocks {
			b := p.block(name)
			if b == nil {
				return math.Inf(1)
			}
			add(centre(b, pl[name]))
		}
		if n.Pad != nil {
			add(float64(n.Pad.X), float64(n.Pad.Y))
		}
		w := n.Weight
		if w == 0 {
			w = 1
		}
		total += w * ((maxX - minX) + (maxY - minY))
	}
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if !b.NeedsBRAM {
			continue
		}
		total += p.BRAMWeight * p.bramDistance(b, pl[b.Name])
	}
	return total
}

// bramDistance is the horizontal gap between the block and the nearest
// BlockRAM column (0 when the block covers the column).
func (p *Problem) bramDistance(b *Block, at Point) float64 {
	best := math.Inf(1)
	for _, col := range p.Fabric.BRAMCols {
		var d float64
		switch {
		case col < at.X:
			d = float64(at.X - col)
		case col >= at.X+b.W:
			d = float64(col - (at.X + b.W - 1))
		default:
			d = 0
		}
		best = math.Min(best, d)
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// RandomPlacement builds a legal placement by random insertion. Early
// blocks can paint later ones into a corner (two large blocks in the
// middle may leave no legal window for a third), so a failed insertion
// sequence restarts from scratch.
func (p *Problem) RandomPlacement(r *sim.Rand) (Placement, error) {
	// Place the largest blocks first for better packing odds.
	order := make([]int, len(p.Blocks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ba, bb := p.Blocks[order[a]], p.Blocks[order[b]]
		return ba.W*ba.H > bb.W*bb.H
	})
	for restart := 0; restart < 50; restart++ {
		pl := make(Placement)
		ok := true
		for _, i := range order {
			b := p.Blocks[i]
			placed := false
			for try := 0; try < 400; try++ {
				at := Point{X: r.Intn(p.Fabric.W - b.W + 1), Y: r.Intn(p.Fabric.H - b.H + 1)}
				pl[b.Name] = at
				if p.legalSoFar(pl) {
					placed = true
					break
				}
				delete(pl, b.Name)
			}
			if !placed {
				ok = false
				break
			}
		}
		if ok {
			return pl, nil
		}
	}
	return nil, fmt.Errorf("floorplan: no legal random placement on %dx%d fabric after 50 restarts",
		p.Fabric.W, p.Fabric.H)
}

// legalSoFar checks legality over only the blocks present in pl.
func (p *Problem) legalSoFar(pl Placement) bool {
	sub := Problem{Fabric: p.Fabric}
	for _, b := range p.Blocks {
		if _, ok := pl[b.Name]; ok {
			sub.Blocks = append(sub.Blocks, b)
		}
	}
	return sub.Legal(pl)
}

// Result is an annealing outcome.
type Result struct {
	Placement Placement
	Cost      float64
	Initial   float64
	Moves     int
	Accepted  int
}

// Anneal runs deterministic simulated annealing from a random legal
// start. iters counts attempted moves; the schedule is geometric.
func (p *Problem) Anneal(seed uint64, iters int) (Result, error) {
	r := sim.NewRand(seed)
	cur, err := p.RandomPlacement(r)
	if err != nil {
		return Result{}, err
	}
	curCost := p.Cost(cur)
	best := cur.Copy()
	bestCost := curCost
	res := Result{Initial: curCost}

	t0 := curCost / 2
	if t0 <= 0 {
		t0 = 1
	}
	tEnd := 0.01
	for i := 0; i < iters; i++ {
		temp := t0 * math.Pow(tEnd/t0, float64(i)/float64(iters))
		cand := cur.Copy()
		if len(p.Blocks) > 1 && r.Bool(0.3) {
			// Swap two block corners.
			a := p.Blocks[r.Intn(len(p.Blocks))].Name
			b := p.Blocks[r.Intn(len(p.Blocks))].Name
			cand[a], cand[b] = cand[b], cand[a]
		} else {
			// Nudge one block.
			b := p.Blocks[r.Intn(len(p.Blocks))]
			at := cand[b.Name]
			at.X += r.Intn(7) - 3
			at.Y += r.Intn(7) - 3
			cand[b.Name] = at
		}
		res.Moves++
		cc := p.Cost(cand)
		if math.IsInf(cc, 1) {
			continue
		}
		if cc <= curCost || r.Float64() < math.Exp((curCost-cc)/temp) {
			cur, curCost = cand, cc
			res.Accepted++
			if cc < bestCost {
				best, bestCost = cand.Copy(), cc
			}
		}
	}
	res.Placement = best
	res.Cost = bestCost
	return res, nil
}

// Render draws the placement as ASCII art (the Figure 7 view).
func (p *Problem) Render(pl Placement) string {
	grid := make([][]byte, p.Fabric.H)
	for y := range grid {
		grid[y] = make([]byte, p.Fabric.W)
		for x := range grid[y] {
			grid[y][x] = '.'
		}
	}
	for _, col := range p.Fabric.BRAMCols {
		for y := 0; y < p.Fabric.H; y++ {
			grid[y][col] = ':'
		}
	}
	for _, b := range p.Blocks {
		at, ok := pl[b.Name]
		if !ok {
			continue
		}
		c := b.Name[0] - 'a' + 'A'
		if b.Name[0] >= 'A' && b.Name[0] <= 'Z' {
			c = b.Name[0]
		}
		for y := at.Y; y < at.Y+b.H && y < p.Fabric.H; y++ {
			for x := at.X; x < at.X+b.W && x < p.Fabric.W; x++ {
				grid[y][x] = c
			}
		}
	}
	out := ""
	for y := p.Fabric.H - 1; y >= 0; y-- {
		out += string(grid[y]) + "\n"
	}
	return out
}

// MultiNoC returns the Figure 7 instance: the XC2S200E as a 24x18 cell
// grid with BlockRAM columns at both edges and the serial pads at the
// bottom-left corner.
func MultiNoC() *Problem {
	pad := Point{X: 0, Y: 0}
	return &Problem{
		Fabric:     Fabric{W: 24, H: 18, BRAMCols: []int{0, 23}},
		BRAMWeight: 6,
		Blocks: []Block{
			{Name: "noc", W: 7, H: 7},
			{Name: "proc1", W: 7, H: 9, NeedsBRAM: true},
			{Name: "proc2", W: 7, H: 9, NeedsBRAM: true},
			{Name: "mem", W: 4, H: 5, NeedsBRAM: true},
			{Name: "serial", W: 4, H: 4},
		},
		Nets: []Net{
			{Blocks: []string{"serial", "noc"}},
			{Blocks: []string{"proc1", "noc"}},
			{Blocks: []string{"proc2", "noc"}},
			{Blocks: []string{"mem", "noc"}},
			// The serial IP must sit next to the transmission pins "to
			// reduce global wire length and routing congestion" (§3).
			{Blocks: []string{"serial"}, Pad: &pad, Weight: 4},
		},
	}
}

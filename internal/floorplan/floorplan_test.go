package floorplan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLegalityChecks(t *testing.T) {
	p := &Problem{
		Fabric: Fabric{W: 10, H: 10},
		Blocks: []Block{{Name: "a", W: 3, H: 3}, {Name: "b", W: 3, H: 3}},
	}
	ok := Placement{"a": {0, 0}, "b": {5, 5}}
	if !p.Legal(ok) {
		t.Error("legal placement rejected")
	}
	overlap := Placement{"a": {0, 0}, "b": {2, 2}}
	if p.Legal(overlap) {
		t.Error("overlap accepted")
	}
	out := Placement{"a": {8, 8}, "b": {0, 0}}
	if p.Legal(out) {
		t.Error("out-of-bounds accepted")
	}
	missing := Placement{"a": {0, 0}}
	if p.Legal(missing) {
		t.Error("missing block accepted")
	}
	if !math.IsInf(p.Cost(overlap), 1) {
		t.Error("illegal placement cost not +Inf")
	}
}

func TestCostIsHPWL(t *testing.T) {
	p := &Problem{
		Fabric: Fabric{W: 20, H: 20},
		Blocks: []Block{{Name: "a", W: 2, H: 2}, {Name: "b", W: 2, H: 2}},
		Nets:   []Net{{Blocks: []string{"a", "b"}}},
	}
	near := Placement{"a": {0, 0}, "b": {2, 0}}
	far := Placement{"a": {0, 0}, "b": {18, 18}}
	if p.Cost(near) >= p.Cost(far) {
		t.Errorf("HPWL ordering wrong: near %.1f, far %.1f", p.Cost(near), p.Cost(far))
	}
	// Centres at (1,1) and (3,1): HPWL = 2.
	if got := p.Cost(near); math.Abs(got-2) > 1e-9 {
		t.Errorf("cost = %.2f, want 2", got)
	}
}

func TestBRAMDistance(t *testing.T) {
	p := &Problem{Fabric: Fabric{W: 10, H: 10, BRAMCols: []int{0, 9}}}
	b := &Block{Name: "m", W: 2, H: 2, NeedsBRAM: true}
	if d := p.bramDistance(b, Point{0, 0}); d != 0 {
		t.Errorf("block on column: distance %f", d)
	}
	if d := p.bramDistance(b, Point{4, 0}); d != 4 {
		t.Errorf("centre block: distance %f, want 4 (to either edge)", d)
	}
	if d := p.bramDistance(b, Point{8, 0}); d != 0 {
		t.Errorf("block covering right column: distance %f", d)
	}
}

func TestRandomPlacementIsLegal(t *testing.T) {
	p := MultiNoC()
	r := sim.NewRand(5)
	for i := 0; i < 20; i++ {
		pl, err := p.RandomPlacement(r)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Legal(pl) {
			t.Fatal("random placement illegal")
		}
	}
}

func TestRandomPlacementImpossible(t *testing.T) {
	p := &Problem{
		Fabric: Fabric{W: 4, H: 4},
		Blocks: []Block{{Name: "a", W: 4, H: 4}, {Name: "b", W: 2, H: 2}},
	}
	if _, err := p.RandomPlacement(sim.NewRand(1)); err == nil {
		t.Error("impossible instance placed")
	}
}

// TestE6AnnealBeatsRandom is experiment E6's quantitative half: the
// §3 observation that automatic-effort-only placement was insufficient
// and deliberate floorplanning was required — annealing must clearly
// beat the average random floorplan.
func TestE6AnnealBeatsRandom(t *testing.T) {
	p := MultiNoC()
	res, err := p.Anneal(42, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Legal(res.Placement) {
		t.Fatal("annealed placement illegal")
	}
	r := sim.NewRand(7)
	sum := 0.0
	const n = 50
	for i := 0; i < n; i++ {
		pl, err := p.RandomPlacement(r)
		if err != nil {
			t.Fatal(err)
		}
		sum += p.Cost(pl)
	}
	avg := sum / n
	if res.Cost > 0.6*avg {
		t.Errorf("anneal cost %.1f not well below random average %.1f", res.Cost, avg)
	}
	if res.Cost > res.Initial {
		t.Errorf("anneal made things worse: %.1f -> %.1f", res.Initial, res.Cost)
	}
}

// TestE6FigureSevenReasoning is experiment E6's qualitative half: the
// optimized floorplan must reproduce the paper's placement logic.
func TestE6FigureSevenReasoning(t *testing.T) {
	p := MultiNoC()
	res, err := p.Anneal(42, 20000)
	if err != nil {
		t.Fatal(err)
	}
	pl := res.Placement

	// Processors and memory hug a BlockRAM column.
	for _, name := range []string{"proc1", "proc2", "mem"} {
		b := p.block(name)
		if d := p.bramDistance(b, pl[name]); d > 1 {
			t.Errorf("%s ended %d cells from a BlockRAM column", name, int(d))
		}
	}
	// The serial IP sits near the pad corner.
	sx, sy := centre(p.block("serial"), pl["serial"])
	if sx+sy > 14 {
		t.Errorf("serial centre (%.1f,%.1f) far from the pad corner", sx, sy)
	}
	// The NoC is more central than any BRAM-bound block: its distance
	// to the die centre is smallest.
	cx, cy := float64(p.Fabric.W)/2, float64(p.Fabric.H)/2
	dist := func(name string) float64 {
		x, y := centre(p.block(name), pl[name])
		return math.Abs(x-cx) + math.Abs(y-cy)
	}
	for _, other := range []string{"proc1", "proc2"} {
		if dist("noc") >= dist(other) {
			t.Errorf("NoC (%.1f) not more central than %s (%.1f)", dist("noc"), other, dist(other))
		}
	}
}

func TestAnnealDeterminism(t *testing.T) {
	p := MultiNoC()
	a, err := p.Anneal(9, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Anneal(9, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("same seed, different cost: %.2f vs %.2f", a.Cost, b.Cost)
	}
	for k, v := range a.Placement {
		if b.Placement[k] != v {
			t.Errorf("placements differ at %s", k)
		}
	}
}

func TestRender(t *testing.T) {
	p := MultiNoC()
	pl, err := p.RandomPlacement(sim.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Render(pl)
	if !strings.Contains(s, "N") || !strings.Contains(s, "S") || !strings.Contains(s, ":") {
		t.Errorf("render missing blocks or BRAM columns:\n%s", s)
	}
	if lines := strings.Count(s, "\n"); lines != p.Fabric.H {
		t.Errorf("render has %d lines, want %d", lines, p.Fabric.H)
	}
}

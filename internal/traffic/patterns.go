package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/noc"
	"repro/internal/sim"
)

// PatternSpec selects a traffic pattern by name with its parameters —
// the serializable counterpart of the Pattern function type, and the
// contract of the pattern library: a spec that survives a JSON round
// trip describes the same workload, so sweep jobs
// (experiments.TrafficJob) and nocsim flags both speak it. Names:
//
//	uniform    uniform random, destination != source
//	transpose  (x,y) → (y,x), diagonal falls back to uniform
//	bitcomp    (x,y) → (W-1-x, H-1-y), centre falls back to uniform
//	bitrev     node index bit-reversed over log2(W*H) bits
//	           (power-of-two node count required)
//	hotspot    weighted hotspot set (Hotspots), remainder uniform
//	bursty     uniform destinations under an on/off arrival process
//	           (Burst, defaulted when nil)
//	trace      deterministic replay of recorded injections (Trace)
//	multicast  every injection is a SendMulti to Group
//
// Burst may also be combined with any destination-pattern name
// (uniform, transpose, bitcomp, bitrev, hotspot) to modulate its
// arrivals; trace and multicast fix their own arrival process. The
// zero value (empty Name) means "no spec": Config falls back to its
// programmatic Pattern field.
type PatternSpec struct {
	Name string `json:"name"`
	// Hotspots weights the hotspot pattern: each spot receives Weight
	// of all generated packets (weights sum to at most 1), the rest go
	// uniformly to the whole mesh.
	Hotspots []HotspotSpec `json:"hotspots,omitempty"`
	// Burst parameterizes the on/off arrival process.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Trace is the injection log replayed by the trace pattern.
	Trace []TraceEntry `json:"trace,omitempty"`
	// Group is the multicast destination set.
	Group []noc.Addr `json:"group,omitempty"`
	// MulticastUnicast delivers multicast groups by unicast replication
	// (the differential oracle) instead of path-based forwarding.
	MulticastUnicast bool `json:"multicastUnicast,omitempty"`
}

// HotspotSpec is one weighted hotspot destination.
type HotspotSpec struct {
	X      int     `json:"x"`
	Y      int     `json:"y"`
	Weight float64 `json:"weight"`
}

// BurstSpec parameterizes the bursty on/off arrival process: packets
// arrive in bursts whose length in packets is geometric with mean Len,
// injected at the Peak offered rate while the burst lasts, separated
// by geometrically distributed off periods sized so the long-run
// offered rate still equals Config.Rate. The geometric draws keep the
// injector warp-friendly: it sleeps on a WakeAt timer between
// arrivals exactly like the uniform Bernoulli injector.
type BurstSpec struct {
	// Len is the mean burst length in packets (≥ 1). 0 means the
	// default of 8.
	Len float64 `json:"len,omitempty"`
	// Peak is the on-state offered rate in flits/cycle/node (must
	// exceed Config.Rate). 0 means the default of 0.5.
	Peak float64 `json:"peak,omitempty"`
}

// defaulted fills zero Burst fields with the library defaults.
func (b BurstSpec) defaulted() BurstSpec {
	if b.Len == 0 {
		b.Len = 8
	}
	if b.Peak == 0 {
		b.Peak = 0.5
	}
	return b
}

// TraceEntry is one recorded packet injection: at Cycle, the node at
// Src sent Payload payload flits to Dst. A trace is the unit of
// record/replay: RunRecorded collects one per successful injection,
// WriteTrace/ReadTrace serialize them as NDJSON, and the trace pattern
// replays them deterministically.
type TraceEntry struct {
	Cycle   uint64   `json:"c"`
	Src     noc.Addr `json:"src"`
	Dst     noc.Addr `json:"dst"`
	Payload int      `json:"p"`
}

// WriteTrace serializes a trace as NDJSON, one entry per line.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range entries {
		if err := enc.Encode(entries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses an NDJSON trace written by WriteTrace. Blank lines
// are skipped.
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	var entries []TraceEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e TraceEntry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// specNames is the set of pattern names the library accepts.
var specNames = map[string]bool{
	"uniform": true, "transpose": true, "bitcomp": true, "bitrev": true,
	"hotspot": true, "bursty": true, "trace": true, "multicast": true,
}

// Validate reports the first reason the spec cannot drive a run on the
// given mesh, nil when it is well-formed. Config.Validate calls it when
// a spec is set, so malformed pattern parameters surface as client
// errors (sweepd 400s) instead of failed jobs.
func (s PatternSpec) Validate(ncfg noc.Config) error {
	if !specNames[s.Name] {
		return fmt.Errorf("traffic: unknown pattern %q", s.Name)
	}
	inMesh := func(a noc.Addr) bool {
		return a.X >= 0 && a.X < ncfg.Width && a.Y >= 0 && a.Y < ncfg.Height
	}
	switch s.Name {
	case "bitrev":
		n := ncfg.Width * ncfg.Height
		if n&(n-1) != 0 {
			return fmt.Errorf("traffic: bitrev needs a power-of-two node count, got %dx%d", ncfg.Width, ncfg.Height)
		}
	case "hotspot":
		if len(s.Hotspots) == 0 {
			return fmt.Errorf("traffic: hotspot pattern without hotspots")
		}
		var sum float64
		for i, h := range s.Hotspots {
			if !inMesh(noc.Addr{X: h.X, Y: h.Y}) {
				return fmt.Errorf("traffic: hotspot %d at (%d,%d) outside the %dx%d mesh",
					i, h.X, h.Y, ncfg.Width, ncfg.Height)
			}
			if h.Weight <= 0 || h.Weight > 1 {
				return fmt.Errorf("traffic: hotspot %d weight %v outside (0,1]", i, h.Weight)
			}
			sum += h.Weight
		}
		if sum > 1 {
			return fmt.Errorf("traffic: hotspot weights sum to %v > 1", sum)
		}
	case "trace":
		if len(s.Trace) == 0 {
			return fmt.Errorf("traffic: trace pattern with an empty trace")
		}
		if s.Burst != nil {
			return fmt.Errorf("traffic: trace replay fixes its own arrival process; Burst must be nil")
		}
		maxPay := noc.MaxPayload(ncfg.FlitBits)
		for i, e := range s.Trace {
			if e.Cycle < 1 {
				return fmt.Errorf("traffic: trace entry %d at cycle %d (must be ≥ 1)", i, e.Cycle)
			}
			if !inMesh(e.Src) || !inMesh(e.Dst) {
				return fmt.Errorf("traffic: trace entry %d (%s→%s) off the %dx%d mesh",
					i, e.Src, e.Dst, ncfg.Width, ncfg.Height)
			}
			if e.Payload < 1 || e.Payload > maxPay {
				return fmt.Errorf("traffic: trace entry %d payload %d outside [1,%d]", i, e.Payload, maxPay)
			}
		}
	case "multicast":
		if len(s.Group) == 0 {
			return fmt.Errorf("traffic: multicast pattern with an empty destination set")
		}
		if s.Burst != nil {
			return fmt.Errorf("traffic: multicast injection uses geometric gaps; Burst must be nil")
		}
		seen := make(map[noc.Addr]bool, len(s.Group))
		for i, d := range s.Group {
			if !inMesh(d) {
				return fmt.Errorf("traffic: multicast destination %d (%s) outside the %dx%d mesh",
					i, d, ncfg.Width, ncfg.Height)
			}
			if seen[d] {
				return fmt.Errorf("traffic: duplicate multicast destination %s", d)
			}
			seen[d] = true
		}
	}
	if b := s.resolveBurst(); b != nil {
		if b.Len < 1 {
			return fmt.Errorf("traffic: burst length %v below 1 packet", b.Len)
		}
		if b.Peak <= 0 || b.Peak > 1 {
			return fmt.Errorf("traffic: burst peak rate %v outside (0,1]", b.Peak)
		}
	}
	return nil
}

// resolveBurst returns the effective burst parameters: the explicit
// Burst field (defaulted), the library default for the bursty pattern,
// nil when arrivals are not modulated.
func (s PatternSpec) resolveBurst() *BurstSpec {
	if s.Burst != nil {
		b := s.Burst.defaulted()
		return &b
	}
	if s.Name == "bursty" {
		b := BurstSpec{}.defaulted()
		return &b
	}
	return nil
}

// destPattern resolves the spec's destination pattern, nil for the
// modes that carry their own destinations (trace, multicast).
func (s PatternSpec) destPattern(ncfg noc.Config) (Pattern, error) {
	switch s.Name {
	case "uniform", "bursty":
		return Uniform, nil
	case "transpose":
		return Transpose, nil
	case "bitcomp":
		return BitComplement, nil
	case "bitrev":
		return BitReverse, nil
	case "hotspot":
		return WeightedHotspots(s.Hotspots), nil
	case "trace", "multicast":
		return nil, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", s.Name)
	}
}

// BitReverse sends the node whose linear index (y*W + x) is i to the
// node at index bit-reverse(i) over log2(W*H) bits — the classic
// FFT-shuffle stress pattern. It requires a power-of-two node count
// (PatternSpec.Validate enforces it); fixed points fall back to
// uniform like the other deterministic permutations.
func BitReverse(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr {
	n := cfg.Width * cfg.Height
	if n&(n-1) != 0 || n < 2 {
		return Uniform(src, r, cfg)
	}
	width := bits.Len(uint(n)) - 1
	idx := uint(src.Y*cfg.Width + src.X)
	rev := bits.Reverse(idx) >> (bits.UintSize - width)
	d := noc.Addr{X: int(rev) % cfg.Width, Y: int(rev) / cfg.Width}
	if d == src {
		return Uniform(src, r, cfg)
	}
	return d
}

// WeightedHotspots generalizes Hotspot to a weighted spot set: a packet
// targets spot i with probability Weight_i (a spot equal to the source
// redraws uniformly, as Hotspot does), and the remaining
// 1 - sum(weights) of traffic is uniform.
func WeightedHotspots(spots []HotspotSpec) Pattern {
	cum := make([]float64, len(spots))
	var sum float64
	for i, h := range spots {
		sum += h.Weight
		cum[i] = sum
	}
	return func(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr {
		u := r.Float64()
		for i, c := range cum {
			if u < c {
				d := noc.Addr{X: spots[i].X, Y: spots[i].Y}
				if d == src {
					return Uniform(src, r, cfg)
				}
				return d
			}
		}
		return Uniform(src, r, cfg)
	}
}

// sortTrace orders entries by cycle, preserving input order within a
// cycle — the canonical on-disk and per-node replay order.
func sortTrace(entries []TraceEntry) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Cycle < entries[j].Cycle })
}

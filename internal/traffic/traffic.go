// Package traffic provides synthetic workload generation and
// measurement harnesses for Hermes NoC experiments: injection-rate
// sweeps under a library of traffic patterns, single-packet latency
// probes for validating the paper's latency formula, and the
// five-connection peak-throughput setup behind the 1 Gbit/s router
// claim (§2.1).
//
// # Pattern library
//
// Patterns are selected by name through PatternSpec (Config.Spec), so a
// workload survives a JSON round trip and sweeps by name: "uniform",
// "transpose", "bitcomp" and "bitrev" are the classic permutations;
// "hotspot" draws destinations from a weighted spot set with the
// remaining probability uniform; "bursty" modulates arrivals with an
// on/off process (geometric burst lengths, rate-conserving off gaps)
// whose next injection cycle is always known, so it composes with the
// time-warp kernel; "trace" replays an NDJSON injection log recorded by
// RunRecorded (identical injections reproduce a bit-identical Result);
// and "multicast" sends every packet to a destination group via
// noc.Endpoint.SendMulti — path-based forwarding by default, unicast
// replication as the differential oracle. Every pattern draws its
// randomness only on injection cycles, which keeps the RNG stream — and
// therefore the Result — bit-identical across all kernel modes
// (TestPatternCrossKernelIdentical).
package traffic

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Pattern picks a destination for a packet injected at src.
type Pattern func(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr

// Uniform sends to any node but the source, uniformly.
func Uniform(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr {
	for {
		d := noc.Addr{X: r.Intn(cfg.Width), Y: r.Intn(cfg.Height)}
		if d != src {
			return d
		}
	}
}

// Transpose sends (x,y) to (y,x); diagonal nodes fall back to uniform.
func Transpose(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr {
	d := noc.Addr{X: src.Y, Y: src.X}
	if d == src || d.X >= cfg.Width || d.Y >= cfg.Height {
		return Uniform(src, r, cfg)
	}
	return d
}

// BitComplement sends (x,y) to (W-1-x, H-1-y); the centre falls back to
// uniform.
func BitComplement(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr {
	d := noc.Addr{X: cfg.Width - 1 - src.X, Y: cfg.Height - 1 - src.Y}
	if d == src {
		return Uniform(src, r, cfg)
	}
	return d
}

// Hotspot sends a fraction of traffic to a fixed node, the rest
// uniformly.
func Hotspot(spot noc.Addr, fraction float64) Pattern {
	return func(src noc.Addr, r *sim.Rand, cfg noc.Config) noc.Addr {
		if src != spot && r.Bool(fraction) {
			return spot
		}
		return Uniform(src, r, cfg)
	}
}

// Config parameterizes a load experiment.
type Config struct {
	// Pattern picks destinations (Uniform if nil).
	Pattern Pattern
	// Spec selects a pattern by name with parameters — the serializable
	// form used by sweep jobs and command-line flags. A non-empty
	// Spec.Name overrides Pattern and may also change the arrival
	// process (bursty, trace) or switch injection to multicast groups.
	Spec PatternSpec
	// OnNetwork, when non-nil, is called with the freshly built network
	// (endpoints and injectors attached) before the first cycle runs —
	// an instrumentation hook for differential tests to attach VCD
	// probes or capture router statistics.
	OnNetwork func(*noc.Network)
	// Rate is the offered load in flits/cycle/node (link capacity is
	// 0.5 flits/cycle, so saturation sits well below that).
	Rate float64
	// PayloadFlits is the packet payload size.
	PayloadFlits int
	// Seed makes the workload reproducible.
	Seed uint64
	// Warmup, Measure and Drain are phase lengths in cycles.
	Warmup  int
	Measure int
	Drain   int
	// QueueCap skips injection at a node whose endpoint queue already
	// holds this many flits (source-queue backpressure). 0 means 64.
	QueueCap int
	// DenseKernel disables the kernel's activity scheduling for this
	// run, evaluating every component every cycle. The results are
	// bit-identical either way (see TestSparseKernelMatchesDense); the
	// dense kernel exists as the reference for differential tests and
	// speedup benchmarks.
	DenseKernel bool
	// NoTimeWarp disables the kernel's dead-cycle skipping for this
	// run: every cycle is stepped one at a time even when the whole
	// mesh sleeps between injections. Results are bit-identical either
	// way (see TestTimeWarpMatchesNoWarp); the option exists for
	// differential tests and speedup benchmarks.
	NoTimeWarp bool
	// NoFlitStreaming disables the event-per-flit streaming fast path
	// for this run: every flit crosses every link via the stepped
	// 2-cycle tx/ack handshake. Results are bit-identical either way
	// (see TestStreamingMatchesStepped); the option exists for
	// differential tests and speedup benchmarks.
	NoFlitStreaming bool
	// Domains shards the mesh into that many clock domains (contiguous
	// column strips); 0 or 1 builds the classic single-domain network.
	// Sharding alone does not change results: the cross-domain links
	// keep identical cycle timing.
	Domains int
	// Parallel runs the sharded domains on one goroutine each under
	// the kernel's conservative horizon protocol (requires Domains >
	// 1 to have any effect). Results are bit-identical to the serial
	// lockstep run of the same partition.
	Parallel bool
	// Ctx, when non-nil, bounds the run in wall-clock time: once the
	// context is cancelled (or its deadline passes) the kernel stops at
	// its next cancellation check and Run returns the context's error.
	// A finished run is never failed retroactively.
	Ctx context.Context
	// MaxCycles, when non-zero, bounds the run in simulated time: a run
	// whose clock reaches this cycle count fails with ErrCycleBudget.
	// It is a safety net against runaway configurations (a drain that
	// never quiesces, a saturated mesh crawling through its measure
	// phase); a successful run needs MaxCycles > Warmup+Measure+Drain.
	MaxCycles uint64
}

// ErrCycleBudget reports that a run exceeded its Config.MaxCycles
// simulated-cycle budget.
var ErrCycleBudget = errors.New("traffic: simulated-cycle budget exceeded")

// Validate reports the first invalid field of the experiment
// configuration against the mesh it will run on, nil when usable.
// Run calls it itself; services accepting configurations from the
// network call it up front so a malformed job is rejected as a client
// error before any simulator state is built.
func (c Config) Validate(ncfg noc.Config) error {
	if err := ncfg.Validate(); err != nil {
		return err
	}
	switch {
	case math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) || c.Rate < 0:
		return fmt.Errorf("traffic: invalid injection rate %v", c.Rate)
	case c.Rate > 1:
		return fmt.Errorf("traffic: injection rate %v exceeds 1 flit/cycle/node", c.Rate)
	case c.PayloadFlits <= 0:
		return fmt.Errorf("traffic: payload must be positive, got %d", c.PayloadFlits)
	case c.PayloadFlits > noc.MaxPayload(ncfg.FlitBits):
		return fmt.Errorf("traffic: payload of %d flits exceeds max %d for %d-bit flits",
			c.PayloadFlits, noc.MaxPayload(ncfg.FlitBits), ncfg.FlitBits)
	case c.Warmup < 0:
		return fmt.Errorf("traffic: negative warmup %d", c.Warmup)
	case c.Measure < 1:
		return fmt.Errorf("traffic: measurement window must be at least 1 cycle, got %d", c.Measure)
	case c.QueueCap < 0:
		return fmt.Errorf("traffic: negative queue cap %d", c.QueueCap)
	case c.Domains < 0:
		return fmt.Errorf("traffic: negative domain count %d", c.Domains)
	case c.Domains > ncfg.Width:
		return fmt.Errorf("traffic: %d domains exceed the mesh's %d column strips", c.Domains, ncfg.Width)
	}
	if c.Spec.Name != "" {
		if err := c.Spec.Validate(ncfg); err != nil {
			return err
		}
		if b := c.Spec.resolveBurst(); b != nil && c.Rate >= b.Peak {
			return fmt.Errorf("traffic: offered rate %v must stay below the burst peak rate %v",
				c.Rate, b.Peak)
		}
	}
	return nil
}

// Result reports a load experiment.
type Result struct {
	// Offered is the load the generator attempted, flits/cycle/node.
	Offered float64
	// Accepted is the load actually injected, flits/cycle/node.
	Accepted float64
	// Delivered is the throughput: flits ejected per cycle per node
	// during the measurement window.
	Delivered float64
	// Latency summarizes packets injected during the measurement
	// window.
	Latency noc.LatencyStats
	// MeasuredPackets is the number of packets behind Latency.
	MeasuredPackets int
}

// injMode selects an injector's arrival process.
type injMode int

const (
	// modeGap is the Bernoulli reference: geometric gaps at the
	// configured rate.
	modeGap injMode = iota
	// modeBurst is the on/off process of BurstSpec: geometric gaps at
	// the peak rate while a burst lasts, a longer geometric off period
	// between bursts, tuned so the long-run offered rate matches.
	modeBurst
	// modeTrace replays a recorded injection log cycle for cycle.
	modeTrace
)

// injector drives one node's packet arrival process as a clocked
// component. Rather than drawing a Bernoulli(p) sample every cycle, it
// draws the geometric gap to its next injection cycle, arms a WakeAt
// timer for it and sleeps — so a low-rate sweep leaves the whole clock
// domain dead between injections and the time-warp kernel jumps the
// gaps outright. All three modes (Bernoulli gaps, bursty on/off, trace
// replay) keep that shape: the next injection cycle is always known
// when Eval returns, so the component is warp-friendly. The process is
// identical under dense evaluation (Eval runs every cycle but acts
// only at the scheduled cycle) and with time warping off, keeping the
// Results bit-identical across all kernel modes.
type injector struct {
	clk      *sim.Clock
	self     sim.Handle // pre-resolved wake token for timer re-arming
	ep       *noc.Endpoint
	rng      *sim.Rand
	pattern  Pattern
	ncfg     noc.Config
	prob     float64 // per-cycle packet probability (modeGap)
	payload  int
	queueCap int

	mode injMode
	// pOn/pGap are the modeBurst per-cycle probabilities inside a burst
	// and for the off gap between bursts; burstLen is the mean burst
	// length in packets; burstLeft counts packets left in the current
	// burst.
	pOn, pGap float64
	burstLen  float64
	burstLeft int
	// trace holds this node's modeTrace entries in cycle order;
	// traceIdx is the replay cursor.
	trace    []TraceEntry
	traceIdx int
	// group, when non-nil, makes every injection a SendMulti to this
	// destination set.
	group []noc.Addr
	// recording collects one TraceEntry per successful unicast send
	// when enabled (RunRecorded).
	recording bool
	recorded  []TraceEntry

	// measureFrom/measureTo bound the measurement window and lastAt the
	// whole injection phase, all in cycle numbers of the Eval they
	// apply to (inclusive).
	measureFrom, measureTo, lastAt uint64

	next uint64 // cycle of the next injection attempt; 0 = finished

	// Per-injector tallies, aggregated by Run in node order so the
	// result is independent of the active set's evaluation order.
	measuredInjected uint64
	measured         []*noc.PacketMeta
}

// Name implements sim.Component.
func (in *injector) Name() string { return "inj" + in.ep.Addr().String() }

// schedule draws the gap to the next injection attempt after now.
func (in *injector) schedule(now uint64) {
	var gap uint64
	switch in.mode {
	case modeTrace:
		if in.traceIdx >= len(in.trace) {
			in.next = 0
			return
		}
		// Entries are cycle-sorted and Eval consumes every entry due at
		// its cycle, so the cursor's cycle is strictly in the future.
		in.next = in.trace[in.traceIdx].Cycle
		in.self.WakeAt(in.next)
		return
	case modeBurst:
		if in.burstLeft <= 0 {
			// Burst over: draw the next burst's length and sleep through
			// the off period.
			in.burstLeft = int(in.rng.Geometric(1 / in.burstLen))
			gap = in.rng.Geometric(in.pGap)
		} else {
			gap = in.rng.Geometric(in.pOn)
		}
		in.burstLeft--
	default:
		gap = in.rng.Geometric(in.prob)
	}
	if gap == 0 || now+gap > in.lastAt {
		in.next = 0 // injection phase over: no timer, permanently idle
		return
	}
	in.next = now + gap
	in.self.WakeAt(in.next)
}

// tally records a successful unicast injection for measurement and,
// when recording, the replay trace.
func (in *injector) tally(meta *noc.PacketMeta, now uint64, payload int) {
	if in.recording {
		in.recorded = append(in.recorded, TraceEntry{
			Cycle: now, Src: in.ep.Addr(), Dst: meta.Dst, Payload: payload,
		})
	}
	if now >= in.measureFrom && now <= in.measureTo {
		in.measuredInjected += uint64(payload + 2)
		in.measured = append(in.measured, meta)
	}
}

// Eval implements sim.Component.
func (in *injector) Eval() {
	now := in.clk.Cycle() + 1
	if in.next == 0 || now < in.next {
		return
	}
	switch {
	case in.mode == modeTrace:
		// Replay bypasses the queue-cap check: the recorded run already
		// applied backpressure, so every entry is injected verbatim.
		for in.traceIdx < len(in.trace) && in.trace[in.traceIdx].Cycle == now {
			e := in.trace[in.traceIdx]
			in.traceIdx++
			if meta, err := in.ep.Send(e.Dst, make([]uint16, e.Payload)); err == nil {
				in.tally(meta, now, e.Payload)
			}
		}
	case in.ep.QueuedFlits() > in.queueCap:
		// Source-queue backpressure: skip this opportunity.
	case in.group != nil:
		if g, err := in.ep.SendMulti(in.group, make([]uint16, in.payload)); err == nil {
			if now >= in.measureFrom && now <= in.measureTo {
				in.measuredInjected += uint64((in.payload + 2) * len(g.Legs))
				in.measured = append(in.measured, g.Legs...)
			}
		}
	default:
		dst := in.pattern(in.ep.Addr(), in.rng, in.ncfg)
		if meta, err := in.ep.Send(dst, make([]uint16, in.payload)); err == nil {
			in.tally(meta, now, in.payload)
		}
	}
	in.schedule(now)
}

// Commit implements sim.Component.
func (in *injector) Commit() {}

// Idle implements sim.Idler: the injector sleeps whenever its next
// injection is beyond the coming cycle (a WakeAt timer is armed for
// it), and forever once the injection phase ends.
func (in *injector) Idle() bool {
	return in.next == 0 || in.next > in.clk.Cycle()+1
}

// Run executes a load experiment on a fresh network.
func Run(ncfg noc.Config, tcfg Config) (Result, error) {
	res, _, err := run(ncfg, tcfg, false)
	return res, err
}

// RunRecorded executes a load experiment while recording every
// successful packet injection, returning the merged trace (cycle
// order, ties in node order) alongside the result. Replaying the trace
// — Config.Spec = PatternSpec{Name: "trace", Trace: rec} with the same
// mesh and kernel options — injects the identical packet sequence and
// therefore reproduces the recorded run's Result bit for bit
// (TestTraceReplayReproducesRecordedRun). Multicast workloads cannot
// be recorded: a trace entry is a unicast send.
func RunRecorded(ncfg noc.Config, tcfg Config) (Result, []TraceEntry, error) {
	if tcfg.Spec.Name == "multicast" {
		return Result{}, nil, fmt.Errorf("traffic: cannot record a multicast workload as a unicast trace")
	}
	return run(ncfg, tcfg, true)
}

func run(ncfg noc.Config, tcfg Config, record bool) (Result, []TraceEntry, error) {
	if tcfg.Pattern == nil {
		tcfg.Pattern = Uniform
	}
	if tcfg.QueueCap == 0 {
		tcfg.QueueCap = 64
	}
	if tcfg.Drain < 0 {
		tcfg.Drain = 0 // a negative drain ran zero cycles before the uint64 budget
	}
	if err := tcfg.Validate(ncfg); err != nil {
		return Result{}, nil, err
	}
	// Resolve the pattern spec into the injectors' destination pattern,
	// arrival mode and multicast group.
	mode := modeGap
	burst := tcfg.Spec.resolveBurst()
	if burst != nil {
		mode = modeBurst
	}
	var group []noc.Addr
	var traceBySrc map[noc.Addr][]TraceEntry
	if s := tcfg.Spec; s.Name != "" {
		if p, err := s.destPattern(ncfg); err != nil {
			return Result{}, nil, err
		} else if p != nil {
			tcfg.Pattern = p
		}
		switch s.Name {
		case "trace":
			mode = modeTrace
			traceBySrc = make(map[noc.Addr][]TraceEntry)
			for _, e := range s.Trace {
				traceBySrc[e.Src] = append(traceBySrc[e.Src], e)
			}
			for _, es := range traceBySrc {
				sortTrace(es)
			}
		case "multicast":
			group = s.Group
		}
	}
	var (
		clk *sim.Clock
		net *noc.Network
		err error
	)
	// armCancel installs the wall-clock/cycle-budget cancellation hook
	// on one clock domain. Each domain's closure reads only its own
	// cycle counter, so the hook is safe on parallel runs.
	armCancel := func(c *sim.Clock) {
		ctx, limit := tcfg.Ctx, tcfg.MaxCycles
		if ctx == nil && limit == 0 {
			return
		}
		c.SetCancel(func() bool {
			if ctx != nil && ctx.Err() != nil {
				return true
			}
			return limit > 0 && c.Cycle() >= limit
		})
	}
	if tcfg.Domains > 1 {
		// Sharded build: contiguous column strips, one clock domain per
		// strip, each injector registered in its endpoint's domain so
		// its RNG stream and timer heap stay domain-local.
		g := sim.NewGroup(tcfg.Domains)
		g.SetActivityScheduling(!tcfg.DenseKernel)
		g.SetTimeWarp(!tcfg.NoTimeWarp)
		g.SetParallel(tcfg.Parallel)
		net, err = noc.NewSharded(g, ncfg, noc.StripDomains(ncfg, tcfg.Domains, 0))
		clk = g.Clock(0)
		for i := 0; i < g.Domains(); i++ {
			armCancel(g.Clock(i))
		}
	} else {
		clk = sim.NewClock()
		clk.SetActivityScheduling(!tcfg.DenseKernel)
		clk.SetTimeWarp(!tcfg.NoTimeWarp)
		armCancel(clk)
		net, err = noc.New(clk, ncfg)
	}
	if err != nil {
		return Result{}, nil, err
	}
	if tcfg.NoFlitStreaming {
		net.SetFlitStreaming(false)
	}
	if group != nil {
		net.SetPathMulticast(!tcfg.Spec.MulticastUnicast)
	}
	// overBudget classifies a cancelled (or budget-straddling) run after
	// each phase: context errors win, then the cycle budget. The kernel
	// checks its hook with a bounded stride, so the final cycle count
	// may slightly overshoot the exact limit.
	overBudget := func() error {
		if tcfg.Ctx != nil && tcfg.Ctx.Err() != nil {
			return fmt.Errorf("traffic: run canceled: %w", tcfg.Ctx.Err())
		}
		if tcfg.MaxCycles > 0 && clk.Cycle() >= tcfg.MaxCycles {
			return fmt.Errorf("%w: cycle %d of %d", ErrCycleBudget, clk.Cycle(), tcfg.MaxCycles)
		}
		return nil
	}
	warmup, measure := uint64(tcfg.Warmup), uint64(tcfg.Measure)
	var injectors []*injector
	for x := 0; x < ncfg.Width; x++ {
		for y := 0; y < ncfg.Height; y++ {
			ep, err := net.NewEndpoint(noc.Addr{X: x, Y: y})
			if err != nil {
				return Result{}, nil, err
			}
			in := &injector{
				clk:       ep.Clock(),
				ep:        ep,
				rng:       sim.NewRand(tcfg.Seed + uint64(x*31+y)),
				pattern:   tcfg.Pattern,
				ncfg:      ncfg,
				prob:      tcfg.Rate / float64(tcfg.PayloadFlits+2),
				payload:   tcfg.PayloadFlits,
				queueCap:  tcfg.QueueCap,
				mode:      mode,
				group:     group,
				recording: record,
				// Injection opportunities span cycles 1..warmup+measure;
				// the measurement window is its tail.
				measureFrom: warmup + 1,
				measureTo:   warmup + measure,
				lastAt:      warmup + measure,
			}
			if burst != nil {
				f := float64(tcfg.PayloadFlits + 2)
				in.pOn = burst.Peak / f
				in.burstLen = burst.Len
				// The off period is sized for rate conservation: one
				// on/off cycle carries Len*f flits on average and must
				// span Len*f/Rate cycles, of which the burst itself takes
				// Len/pOn.
				gapMean := burst.Len*f/tcfg.Rate - burst.Len/in.pOn
				if gapMean < 1 {
					gapMean = 1
				}
				in.pGap = 1 / gapMean
			}
			if mode == modeTrace {
				in.trace = traceBySrc[noc.Addr{X: x, Y: y}]
			}
			in.clk.Register(in)
			in.self = in.clk.Handle(in)
			in.schedule(0)
			injectors = append(injectors, in)
		}
	}

	if tcfg.OnNetwork != nil {
		tcfg.OnNetwork(net)
	}

	clk.Run(warmup)
	if err := overBudget(); err != nil {
		return Result{}, nil, err
	}
	startDelivered := deliveredFlits(net)
	clk.Run(measure)
	if err := overBudget(); err != nil {
		return Result{}, nil, err
	}
	endDelivered := deliveredFlits(net)
	// Drain so measured packets complete. Quiescence means every
	// in-flight flit has been delivered and the mesh is back to sleep,
	// so this stops as soon as the drain is actually done; the Drain
	// budget only bounds it (a timeout leaves late packets unmeasured,
	// exactly as the old fixed-length drain did — but a cancelled or
	// over-budget drain fails the run).
	if err := clk.RunUntilQuiescent(uint64(tcfg.Drain)); errors.Is(err, sim.ErrCanceled) {
		if berr := overBudget(); berr != nil {
			return Result{}, nil, berr
		}
		return Result{}, nil, err
	}

	// Aggregate per-injector tallies in node order, so the Result does
	// not depend on the order the active set evaluated the injectors.
	var measuredInjected uint64
	var measured []*noc.PacketMeta
	for _, in := range injectors {
		measuredInjected += in.measuredInjected
		measured = append(measured, in.measured...)
	}
	nNodes := float64(len(injectors))
	res := Result{
		Offered:         tcfg.Rate,
		Accepted:        float64(measuredInjected) / float64(tcfg.Measure) / nNodes,
		Delivered:       float64(endDelivered-startDelivered) / float64(tcfg.Measure) / nNodes,
		Latency:         noc.Latencies(measured),
		MeasuredPackets: len(measured),
	}
	var rec []TraceEntry
	if record {
		// Merge per-injector records in node order, then cycle order —
		// the canonical trace, independent of evaluation order.
		for _, in := range injectors {
			rec = append(rec, in.recorded...)
		}
		sortTrace(rec)
	}
	return res, rec, nil
}

// deliveredFlits approximates delivered flit volume from completed
// packet metadata.
func deliveredFlits(net *noc.Network) uint64 {
	var t uint64
	for _, m := range net.Completed() {
		t += uint64(m.Len)
	}
	return t
}

// ProbeLatency measures one packet's network latency on an otherwise
// idle mesh — the setting of the paper's minimal-latency formula.
func ProbeLatency(ncfg noc.Config, src, dst noc.Addr, payload int) (uint64, error) {
	clk := sim.NewClock()
	net, err := noc.New(clk, ncfg)
	if err != nil {
		return 0, err
	}
	s, err := net.NewEndpoint(src)
	if err != nil {
		return 0, err
	}
	if _, err := net.NewEndpoint(dst); err != nil && src != dst {
		return 0, err
	}
	meta, err := s.Send(dst, make([]uint16, payload))
	if err != nil {
		return 0, err
	}
	// The mesh quiesces a handful of cycles after the tail flit ejects,
	// so running to quiescence replaces the per-cycle delivery poll.
	if err := clk.RunUntilQuiescent(1_000_000); err != nil {
		return 0, err
	}
	if meta.EjectCycle == 0 {
		return 0, fmt.Errorf("traffic: network quiescent but packet %d undelivered", meta.ID)
	}
	return meta.NetworkLatency(), nil
}

// PeakResult reports the five-connection router saturation experiment.
type PeakResult struct {
	// FlitsPerCycle is the centre router's aggregate forwarding rate.
	FlitsPerCycle float64
	// MeasuredGbps converts it at the configured flit width and clock.
	MeasuredGbps float64
	// TheoreticalGbps is the paper's 5-port peak (1 Gbit/s for
	// MultiNoC's parameters).
	TheoreticalGbps float64
	// Efficiency is measured/theoretical.
	Efficiency float64
}

// PeakThroughput drives all five ports of the centre router of a 3x3
// mesh simultaneously (W->E, E->W, S->N, N->S and Local->Local) with
// back-to-back maximum-size packets, reproducing the §2.1 claim that a
// router peaks at 5 x flit/2-cycles (1 Gbit/s at 50 MHz, 8-bit flits).
func PeakThroughput(ncfg noc.Config, packets int) (PeakResult, error) {
	if ncfg.Width < 3 || ncfg.Height < 3 {
		return PeakResult{}, fmt.Errorf("traffic: peak experiment needs a 3x3 mesh")
	}
	clk := sim.NewClock()
	net, err := noc.New(clk, ncfg)
	if err != nil {
		return PeakResult{}, err
	}
	flows := [][2]noc.Addr{
		{{X: 0, Y: 1}, {X: 2, Y: 1}}, // enters centre W, exits E
		{{X: 2, Y: 1}, {X: 0, Y: 1}}, // E -> W
		{{X: 1, Y: 0}, {X: 1, Y: 2}}, // S -> N
		{{X: 1, Y: 2}, {X: 1, Y: 0}}, // N -> S
		{{X: 1, Y: 1}, {X: 1, Y: 1}}, // Local -> Local
	}
	eps := map[noc.Addr]*noc.Endpoint{}
	for _, f := range flows {
		for _, a := range f {
			if eps[a] == nil {
				ep, err := net.NewEndpoint(a)
				if err != nil {
					return PeakResult{}, err
				}
				eps[a] = ep
			}
		}
	}
	payload := noc.MaxPayload(ncfg.FlitBits)
	if payload > 255 {
		payload = 255
	}
	want := uint64(len(flows) * packets)
	for _, f := range flows {
		for p := 0; p < packets; p++ {
			if _, err := eps[f[0]].Send(f[1], make([]uint16, payload)); err != nil {
				return PeakResult{}, err
			}
		}
	}
	// Warm the connections up, then measure the centre router over a
	// window well inside the streaming phase.
	centre := net.Router(noc.Addr{X: 1, Y: 1})
	clk.Run(200)
	startFlits := centre.Stats().TotalFlits()
	startCycle := clk.Cycle()
	if err := clk.RunUntil(func() bool { return net.Delivered() == want }, 100_000_000); err != nil {
		return PeakResult{}, err
	}
	// Stop counting at the last delivery.
	flits := centre.Stats().TotalFlits() - startFlits
	cycles := clk.Cycle() - startCycle
	rate := float64(flits) / float64(cycles)
	res := PeakResult{
		FlitsPerCycle:   rate,
		MeasuredGbps:    rate * float64(ncfg.FlitBits) * ncfg.ClockMHz / 1000,
		TheoreticalGbps: noc.RouterPeakGbps(ncfg),
	}
	res.Efficiency = res.MeasuredGbps / res.TheoreticalGbps
	return res, nil
}

package traffic

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

func TestPatterns(t *testing.T) {
	cfg := noc.Defaults(4, 4)
	r := sim.NewRand(1)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			src := noc.Addr{X: x, Y: y}
			for i := 0; i < 50; i++ {
				if d := Uniform(src, r, cfg); d == src {
					t.Fatal("uniform returned source")
				}
			}
			if d := Transpose(src, r, cfg); d == src {
				t.Errorf("transpose(%s) = source", src)
			}
			if d := BitComplement(src, r, cfg); d == src {
				t.Errorf("bitcomplement(%s) = source", src)
			}
			hot := Hotspot(noc.Addr{X: 3, Y: 3}, 1.0)
			if src != (noc.Addr{X: 3, Y: 3}) {
				if d := hot(src, r, cfg); d != (noc.Addr{X: 3, Y: 3}) {
					t.Errorf("hotspot(%s) = %s", src, d)
				}
			}
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	cfg := noc.Defaults(5, 5)
	r := sim.NewRand(2)
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			if x == y {
				continue
			}
			src := noc.Addr{X: x, Y: y}
			d := Transpose(src, r, cfg)
			if Transpose(d, r, cfg) != src {
				t.Errorf("transpose not involutive at %s", src)
			}
		}
	}
}

func TestLowLoadLatencyNearFormula(t *testing.T) {
	// At very light uniform load, mean latency must sit near the
	// zero-load formula value for the mean hop count.
	ncfg := noc.Defaults(4, 4)
	res, err := Run(ncfg, Config{
		Rate: 0.01, PayloadFlits: 8, Seed: 7,
		Warmup: 2000, Measure: 10000, Drain: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredPackets < 50 {
		t.Fatalf("only %d packets measured", res.MeasuredPackets)
	}
	// 4x4 uniform mean hop count (routers, incl. endpoints) is ~3.67;
	// formula latency for 10 flits ~ 14*3.67+20 ~ 71. Allow generous
	// slack for occasional contention.
	if res.Latency.MeanCycles < 40 || res.Latency.MeanCycles > 120 {
		t.Errorf("mean latency %.1f outside sane low-load band", res.Latency.MeanCycles)
	}
}

func TestThroughputSaturates(t *testing.T) {
	// Offered load far beyond capacity must deliver less than offered
	// (saturation), while tiny load delivers what is offered.
	ncfg := noc.Defaults(4, 4)
	low, err := Run(ncfg, Config{Rate: 0.02, PayloadFlits: 8, Seed: 3,
		Warmup: 2000, Measure: 8000, Drain: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if low.Delivered < low.Offered*0.8 {
		t.Errorf("low load not delivered: offered %.3f delivered %.3f", low.Offered, low.Delivered)
	}
	high, err := Run(ncfg, Config{Rate: 0.45, PayloadFlits: 8, Seed: 3,
		Warmup: 2000, Measure: 8000, Drain: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if high.Delivered > high.Offered*0.9 {
		t.Errorf("no saturation visible: offered %.3f delivered %.3f", high.Offered, high.Delivered)
	}
	// Past saturation the backlog piles up in the source queues, so the
	// congestion signal is total latency (queueing + network).
	if high.Latency.MeanTotalCycles < 2*low.Latency.MeanTotalCycles {
		t.Errorf("saturated total latency %.1f not clearly above low-load %.1f",
			high.Latency.MeanTotalCycles, low.Latency.MeanTotalCycles)
	}
}

func TestProbeLatencyMatchesFormula(t *testing.T) {
	ncfg := noc.Defaults(5, 5)
	for _, tc := range []struct {
		dst     noc.Addr
		payload int
	}{
		{noc.Addr{X: 1, Y: 0}, 4},
		{noc.Addr{X: 4, Y: 0}, 16},
		{noc.Addr{X: 4, Y: 4}, 64},
	} {
		got, err := ProbeLatency(ncfg, noc.Addr{X: 0, Y: 0}, tc.dst, tc.payload)
		if err != nil {
			t.Fatal(err)
		}
		want := noc.FormulaLatency(ncfg, noc.HopCount(noc.Addr{}, tc.dst), tc.payload+2)
		diff := int64(got) - int64(want)
		if diff < -4 || diff > 4 {
			t.Errorf("dst %s payload %d: measured %d, formula %d", tc.dst, tc.payload, got, want)
		}
	}
}

func TestPeakThroughputNearOneGbps(t *testing.T) {
	// Experiment E2: five simultaneous connections through one router
	// must approach the paper's 1 Gbit/s theoretical peak.
	res, err := PeakThroughput(noc.Defaults(3, 3), 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.TheoreticalGbps != 1.0 {
		t.Errorf("theoretical peak = %.3f Gbit/s, want 1.0", res.TheoreticalGbps)
	}
	if res.Efficiency < 0.90 || res.Efficiency > 1.001 {
		t.Errorf("efficiency %.3f outside [0.90, 1.0] (measured %.3f Gbit/s)",
			res.Efficiency, res.MeasuredGbps)
	}
}

// TestBufferDepthImprovesThroughput is experiment E3's assertion: the
// paper says "larger buffers can provide enhanced NoC performance" —
// under saturating load, each doubling of the input buffers raises the
// delivered throughput (blocked flits hold fewer routers hostage).
func TestBufferDepthImprovesThroughput(t *testing.T) {
	depths := []int{1, 2, 4, 8, 16}
	var delivered []float64
	for _, depth := range depths {
		ncfg := noc.Defaults(4, 4)
		ncfg.BufDepth = depth
		res, err := Run(ncfg, Config{Rate: 0.40, PayloadFlits: 8, Seed: 11,
			Warmup: 3000, Measure: 10000, Drain: 30000})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeasuredPackets < 100 {
			t.Fatalf("depth %d: only %d packets", depth, res.MeasuredPackets)
		}
		delivered = append(delivered, res.Delivered)
	}
	for i := 1; i < len(depths); i++ {
		if delivered[i] <= delivered[i-1] {
			t.Errorf("depth %d delivered %.3f, not above depth %d's %.3f",
				depths[i], delivered[i], depths[i-1], delivered[i-1])
		}
	}
	if delivered[len(delivered)-1] < 1.5*delivered[0] {
		t.Errorf("depth 16 (%.3f) not clearly above depth 1 (%.3f)",
			delivered[len(delivered)-1], delivered[0])
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(noc.Defaults(2, 2), Config{Rate: 0.1}); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := PeakThroughput(noc.Defaults(2, 2), 5); err == nil {
		t.Error("2x2 peak experiment accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Result {
		r, err := Run(noc.Defaults(3, 3), Config{Rate: 0.1, PayloadFlits: 6, Seed: 99,
			Warmup: 500, Measure: 2000, Drain: 3000})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Accepted != b.Accepted || a.Latency.MeanCycles != b.Latency.MeanCycles ||
		a.MeasuredPackets != b.MeasuredPackets {
		t.Errorf("nondeterministic results: %+v vs %+v", a, b)
	}
}

func TestHotspotCongestsWorseThanUniform(t *testing.T) {
	// Concentrating 20% of traffic on one node must saturate earlier
	// than uniform at the same offered rate (classic hotspot shape).
	ncfg := noc.Defaults(4, 4)
	common := Config{Rate: 0.18, PayloadFlits: 8, Seed: 9,
		Warmup: 3000, Measure: 10000, Drain: 30000}
	uni := common
	uniRes, err := Run(ncfg, uni)
	if err != nil {
		t.Fatal(err)
	}
	hot := common
	hot.Pattern = Hotspot(noc.Addr{X: 1, Y: 1}, 0.2)
	hotRes, err := Run(ncfg, hot)
	if err != nil {
		t.Fatal(err)
	}
	if hotRes.Delivered >= uniRes.Delivered {
		t.Errorf("hotspot delivered %.3f, uniform %.3f — expected hotspot to congest",
			hotRes.Delivered, uniRes.Delivered)
	}
	if hotRes.Latency.MeanTotalCycles <= uniRes.Latency.MeanTotalCycles {
		t.Errorf("hotspot total latency %.1f not above uniform %.1f",
			hotRes.Latency.MeanTotalCycles, uniRes.Latency.MeanTotalCycles)
	}
}

// TestRunDeterminism: two identically-seeded experiments must produce
// identical Results, bit for bit — the kernel's determinism contract
// survives activity scheduling.
func TestRunDeterminism(t *testing.T) {
	cfg := noc.Defaults(8, 8)
	tcfg := Config{
		Rate: 0.05, PayloadFlits: 8, Seed: 99,
		Warmup: 500, Measure: 3000, Drain: 20000,
	}
	a, err := Run(cfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed results differ:\n  %+v\n  %+v", a, b)
	}
}

// TestSparseKernelMatchesDense: the activity-scheduled kernel must be
// indistinguishable from dense evaluation — same delivered counts, same
// latency distribution — across loads from near-idle to saturation.
func TestSparseKernelMatchesDense(t *testing.T) {
	for _, rate := range []float64{0.002, 0.05, 0.40} {
		cfg := noc.Defaults(6, 6)
		tcfg := Config{
			Rate: rate, PayloadFlits: 8, Seed: 42,
			Warmup: 500, Measure: 3000, Drain: 30000,
		}
		tcfg.DenseKernel = false
		sparse, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		tcfg.DenseKernel = true
		dense, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if sparse != dense {
			t.Fatalf("rate %.3f: kernels diverge:\n  sparse %+v\n  dense  %+v", rate, sparse, dense)
		}
		if sparse.MeasuredPackets == 0 {
			t.Fatalf("rate %.3f: experiment measured no packets", rate)
		}
	}
}

// TestTimeWarpMatchesNoWarp: skipping dead cycles must be invisible —
// the same experiment with time warping on and off (activity scheduling
// on in both) produces bit-identical Results across loads, including
// near-idle rates where almost all simulated time is warped.
func TestTimeWarpMatchesNoWarp(t *testing.T) {
	for _, rate := range []float64{0.002, 0.05, 0.40} {
		cfg := noc.Defaults(6, 6)
		tcfg := Config{
			Rate: rate, PayloadFlits: 8, Seed: 42,
			Warmup: 500, Measure: 3000, Drain: 30000,
		}
		tcfg.NoTimeWarp = false
		warp, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		tcfg.NoTimeWarp = true
		dense, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if warp != dense {
			t.Fatalf("rate %.3f: time-warp changed the experiment:\n  warp   %+v\n  nowarp %+v", rate, warp, dense)
		}
		if warp.MeasuredPackets == 0 {
			t.Fatalf("rate %.3f: experiment measured no packets", rate)
		}
	}
}

// TestQuiescentMatchesDenseRunUntil: draining a mesh with
// RunUntilQuiescent on the activity kernel delivers exactly the packets
// (and per-packet latencies) that the dense kernel's predicate-polling
// RunUntil delivers.
func TestQuiescentMatchesDenseRunUntil(t *testing.T) {
	const packets = 40
	run := func(dense bool) (uint64, []uint64) {
		cfg := noc.Defaults(4, 4)
		clk := sim.NewClock()
		clk.SetActivityScheduling(!dense)
		net, err := noc.New(clk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var eps []*noc.Endpoint
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				ep, err := net.NewEndpoint(noc.Addr{X: x, Y: y})
				if err != nil {
					t.Fatal(err)
				}
				eps = append(eps, ep)
			}
		}
		rng := sim.NewRand(7)
		var metas []*noc.PacketMeta
		for i := 0; i < packets; i++ {
			src := eps[rng.Intn(len(eps))]
			dst := noc.Addr{X: rng.Intn(4), Y: rng.Intn(4)}
			if dst == src.Addr() {
				continue
			}
			m, err := src.Send(dst, make([]uint16, 6))
			if err != nil {
				t.Fatal(err)
			}
			metas = append(metas, m)
			clk.Run(uint64(rng.Intn(30)))
		}
		if dense {
			want := uint64(len(metas))
			if err := clk.RunUntil(func() bool { return net.Delivered() == want }, 1_000_000); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := clk.RunUntilQuiescent(1_000_000); err != nil {
				t.Fatal(err)
			}
		}
		var lats []uint64
		for _, m := range metas {
			if m.EjectCycle == 0 {
				t.Fatalf("dense=%v: packet %d undelivered", dense, m.ID)
			}
			lats = append(lats, m.NetworkLatency())
		}
		return net.Delivered(), lats
	}
	dDel, dLats := run(true)
	sDel, sLats := run(false)
	if dDel != sDel {
		t.Fatalf("delivered: dense %d, quiescent %d", dDel, sDel)
	}
	for i := range dLats {
		if dLats[i] != sLats[i] {
			t.Fatalf("packet %d latency: dense %d, quiescent %d", i, dLats[i], sLats[i])
		}
	}
}

// TestResetStatsClearsDelivered: ResetStats after a warmup must zero
// both the completed log and the delivered counter, so post-reset rates
// are not skewed by warmup deliveries.
func TestResetStatsClearsDelivered(t *testing.T) {
	cfg := noc.Defaults(3, 3)
	clk := sim.NewClock()
	net, err := noc.New(clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.NewEndpoint(noc.Addr{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewEndpoint(noc.Addr{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Send(noc.Addr{X: 2, Y: 2}, make([]uint16, 4)); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntilQuiescent(100_000); err != nil {
		t.Fatal(err)
	}
	if net.Delivered() != 1 || len(net.Completed()) != 1 {
		t.Fatalf("warmup: delivered %d, completed %d", net.Delivered(), len(net.Completed()))
	}
	net.ResetStats()
	if net.Delivered() != 0 || len(net.Completed()) != 0 {
		t.Fatalf("after ResetStats: delivered %d, completed %d", net.Delivered(), len(net.Completed()))
	}
}

// TestNegativeDrainRunsZeroDrainCycles: a negative Drain must behave
// like the pre-quiescence harness (zero drain cycles), not wrap into an
// unbounded uint64 budget.
func TestNegativeDrainRunsZeroDrainCycles(t *testing.T) {
	res, err := Run(noc.Defaults(3, 3), Config{
		Rate: 0.30, PayloadFlits: 8, Seed: 1,
		Warmup: 100, Measure: 500, Drain: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredPackets == 0 {
		t.Fatal("no packets measured")
	}
}

package traffic

import (
	"sync"
	"testing"

	"repro/internal/noc"
)

// TestConcurrentRunsMatchSerial pins the isolation property the sweep
// service builds on: any number of simulations, each on its own
// sim.Clock, can run concurrently in one process and produce results
// bit-identical to running them one at a time. Under -race this also
// proves the kernel keeps no shared mutable state between clocks.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = Config{
			Rate: 0.02 + 0.01*float64(i), PayloadFlits: 4, Seed: uint64(i + 1),
			Warmup: 100, Measure: 500, Drain: 5000,
		}
	}
	cfgs[3].Domains = 2 // one sharded run among the plain ones
	ncfg := noc.Defaults(4, 4)

	serial := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(ncfg, cfg)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = res
	}

	concurrent := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			concurrent[i], errs[i] = Run(ncfg, cfg)
		}()
	}
	wg.Wait()
	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if concurrent[i] != serial[i] {
			t.Errorf("run %d diverged under concurrency:\n got %+v\nwant %+v",
				i, concurrent[i], serial[i])
		}
	}
}

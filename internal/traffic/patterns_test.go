package traffic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/vcd"
)

// specObs is everything a pattern differential compares: the experiment
// Result, every router's statistics and a VCD dump of a boundary
// router.
type specObs struct {
	res   Result
	stats []noc.RouterStats
	vcd   []byte
}

// runSpecKernel runs one spec under one kernel configuration and
// captures the full observable surface via the OnNetwork hook.
func runSpecKernel(t *testing.T, ncfg noc.Config, tcfg Config) specObs {
	t.Helper()
	var net *noc.Network
	var buf bytes.Buffer
	var w *vcd.Writer
	tcfg.OnNetwork = func(n *noc.Network) {
		net = n
		w = vcd.NewWriter(&buf)
		// (2,1) sits on the strip boundary of both the 2- and 4-way
		// partitions of a 4-wide mesh.
		noc.AttachVCD(n, w, noc.Addr{X: 2, Y: 1})
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(ncfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	o := specObs{res: res, vcd: buf.Bytes()}
	for x := 0; x < ncfg.Width; x++ {
		for y := 0; y < ncfg.Height; y++ {
			o.stats = append(o.stats, net.Router(noc.Addr{X: x, Y: y}).Stats())
		}
	}
	return o
}

// TestPatternCrossKernelIdentical: every pattern of the library must
// produce a bit-identical Result, identical per-router statistics and a
// byte-identical boundary-router VCD dump on every kernel mode —
// dense, sparse without time warp, sharded lockstep, parallel — with
// flit streaming on or off. The reference is the serial sparse
// time-warped streaming kernel.
func TestPatternCrossKernelIdentical(t *testing.T) {
	ncfg := noc.Defaults(4, 4) // power-of-two node count, so bitrev is legal
	base := Config{
		Rate: 0.05, PayloadFlits: 4, Seed: 42,
		Warmup: 200, Measure: 1200, Drain: 20000,
	}
	// The trace spec replays a recording of the uniform workload.
	recCfg := base
	recCfg.Spec = PatternSpec{Name: "uniform"}
	_, rec, err := RunRecorded(ncfg, recCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) == 0 {
		t.Fatal("recorded trace is empty; trace differential is vacuous")
	}

	group := []noc.Addr{{X: 0, Y: 0}, {X: 3, Y: 1}, {X: 1, Y: 3}, {X: 3, Y: 3}}
	specs := []struct {
		label string
		spec  PatternSpec
		rate  float64
	}{
		{"uniform", PatternSpec{Name: "uniform"}, 0.05},
		{"transpose", PatternSpec{Name: "transpose"}, 0.05},
		{"bitcomp", PatternSpec{Name: "bitcomp"}, 0.05},
		{"bitrev", PatternSpec{Name: "bitrev"}, 0.05},
		{"hotspot", PatternSpec{Name: "hotspot", Hotspots: []HotspotSpec{
			{X: 1, Y: 1, Weight: 0.3}, {X: 2, Y: 3, Weight: 0.2},
		}}, 0.05},
		{"bursty", PatternSpec{Name: "bursty", Burst: &BurstSpec{Len: 4, Peak: 0.4}}, 0.05},
		{"bursty-transpose", PatternSpec{Name: "transpose", Burst: &BurstSpec{Len: 6, Peak: 0.3}}, 0.04},
		{"multicast-path", PatternSpec{Name: "multicast", Group: group}, 0.02},
		{"multicast-oracle", PatternSpec{Name: "multicast", Group: group, MulticastUnicast: true}, 0.02},
		{"trace", PatternSpec{Name: "trace", Trace: rec}, 0.05},
	}
	kernels := []struct {
		name string
		mod  func(*Config)
	}{
		{"stepped", func(c *Config) { c.NoFlitStreaming = true }},
		{"dense", func(c *Config) { c.DenseKernel = true }},
		{"nowarp", func(c *Config) { c.NoTimeWarp = true }},
		{"sharded2", func(c *Config) { c.Domains = 2 }},
		{"parallel2", func(c *Config) { c.Domains = 2; c.Parallel = true }},
		{"sharded4", func(c *Config) { c.Domains = 4 }},
		{"parallel4", func(c *Config) { c.Domains = 4; c.Parallel = true }},
		{"parallel4-stepped", func(c *Config) {
			c.Domains = 4
			c.Parallel = true
			c.NoFlitStreaming = true
		}},
	}
	for _, s := range specs {
		s := s
		t.Run(s.label, func(t *testing.T) {
			tcfg := base
			tcfg.Spec = s.spec
			tcfg.Rate = s.rate
			ref := runSpecKernel(t, ncfg, tcfg)
			if ref.res.MeasuredPackets == 0 {
				t.Fatalf("%s: reference run measured no packets; differential is vacuous", s.label)
			}
			for _, k := range kernels {
				kcfg := tcfg
				k.mod(&kcfg)
				got := runSpecKernel(t, ncfg, kcfg)
				if got.res != ref.res {
					t.Errorf("%s/%s: results diverged:\n  ref %+v\n  got %+v", s.label, k.name, ref.res, got.res)
				}
				for i := range ref.stats {
					if got.stats[i] != ref.stats[i] {
						t.Errorf("%s/%s: router %d stats diverged:\n  ref %+v\n  got %+v",
							s.label, k.name, i, ref.stats[i], got.stats[i])
					}
				}
				if !bytes.Equal(got.vcd, ref.vcd) {
					t.Errorf("%s/%s: boundary VCD dump differs from reference (%d vs %d bytes)",
						s.label, k.name, len(got.vcd), len(ref.vcd))
				}
			}
		})
	}
}

// TestWeightedHotspotHistogram: destination frequencies of the weighted
// hotspot pattern must match the configured weights, with the
// remainder spread over the rest of the mesh.
func TestWeightedHotspotHistogram(t *testing.T) {
	ncfg := noc.Defaults(8, 8)
	spots := []HotspotSpec{{X: 2, Y: 3, Weight: 0.3}, {X: 7, Y: 0, Weight: 0.15}}
	pat := WeightedHotspots(spots)
	r := sim.NewRand(9)
	src := noc.Addr{X: 0, Y: 0}
	const n = 200_000
	counts := make(map[noc.Addr]int)
	for i := 0; i < n; i++ {
		d := pat(src, r, ncfg)
		if d == src {
			t.Fatalf("hotspot pattern returned the source")
		}
		counts[d]++
	}
	for i, h := range spots {
		got := float64(counts[noc.Addr{X: h.X, Y: h.Y}]) / n
		// The uniform remainder also lands on the spot occasionally:
		// weight + (1-sum)/63 within a 1% absolute tolerance.
		want := h.Weight + (1-0.45)/63
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("spot %d frequency %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
	// A non-spot node sees only its uniform share.
	other := float64(counts[noc.Addr{X: 4, Y: 4}]) / n
	if want := (1 - 0.45) / 63; other < want-0.005 || other > want+0.005 {
		t.Errorf("non-spot frequency %.4f, want %.4f ± 0.005", other, want)
	}
}

// TestDeterministicPatternsBijective: transpose, bit-complement and
// bit-reverse must be involutions on their non-fallback domain and map
// the mesh onto itself without collisions.
func TestDeterministicPatternsBijective(t *testing.T) {
	r := sim.NewRand(1)
	for _, mesh := range []struct{ w, h int }{{4, 4}, {8, 4}, {8, 8}} {
		ncfg := noc.Defaults(mesh.w, mesh.h)
		pats := []struct {
			name  string
			pat   Pattern
			fixed func(a noc.Addr) bool
		}{
			{"transpose", Transpose, func(a noc.Addr) bool {
				return a.X == a.Y || a.Y >= mesh.w || a.X >= mesh.h
			}},
			{"bitcomp", BitComplement, func(a noc.Addr) bool {
				return a.X == mesh.w-1-a.X && a.Y == mesh.h-1-a.Y
			}},
			{"bitrev", BitReverse, func(a noc.Addr) bool {
				n := uint(mesh.w * mesh.h)
				idx := uint(a.Y*mesh.w + a.X)
				return bits.Reverse(idx)>>(bits.UintSize-(bits.Len(n)-1)) == idx
			}},
		}
		for _, p := range pats {
			seen := make(map[noc.Addr]noc.Addr)
			for x := 0; x < mesh.w; x++ {
				for y := 0; y < mesh.h; y++ {
					src := noc.Addr{X: x, Y: y}
					if p.fixed(src) {
						continue // falls back to uniform: excluded from the permutation
					}
					d := p.pat(src, r, ncfg)
					if d.X < 0 || d.X >= mesh.w || d.Y < 0 || d.Y >= mesh.h {
						t.Fatalf("%dx%d %s: %s maps off-mesh to %s", mesh.w, mesh.h, p.name, src, d)
					}
					if prev, dup := seen[d]; dup {
						t.Fatalf("%dx%d %s: %s and %s both map to %s", mesh.w, mesh.h, p.name, prev, src, d)
					}
					seen[d] = src
					if back := p.pat(d, r, ncfg); !p.fixed(d) && back != src {
						t.Fatalf("%dx%d %s: not an involution: %s→%s→%s", mesh.w, mesh.h, p.name, src, d, back)
					}
				}
			}
		}
	}
}

// TestBurstyArrivalProcess: recorded bursty injections must conserve
// the configured long-run rate while clustering into bursts whose mean
// length matches the configured geometric distribution. With the peak
// far above the offered rate the gap distribution is sharply bimodal,
// so a threshold cleanly separates intra-burst gaps from off periods.
func TestBurstyArrivalProcess(t *testing.T) {
	ncfg := noc.Defaults(2, 2)
	const burstLen, rate = 8.0, 0.02
	tcfg := Config{
		Rate: rate, PayloadFlits: 1, Seed: 11,
		Warmup: 0, Measure: 500_000, Drain: 50_000,
		// A queue cap far above what a burst can pile up: backpressure
		// skips would otherwise shave the accepted load below offered.
		QueueCap: 4096,
		Spec:     PatternSpec{Name: "bursty", Burst: &BurstSpec{Len: burstLen, Peak: 0.9}},
	}
	res, rec, err := RunRecorded(ncfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted < rate*0.9 || res.Accepted > rate*1.1 {
		t.Errorf("accepted load %.4f not within 10%% of offered %.4f", res.Accepted, rate)
	}
	// Reconstruct bursts per node: pOn = 0.3 (mean gap ≈ 3 cycles), off
	// gaps average hundreds of cycles, so 50 cycles splits the modes.
	perNode := make(map[noc.Addr][]uint64)
	for _, e := range rec {
		perNode[e.Src] = append(perNode[e.Src], e.Cycle)
	}
	var bursts, packets int
	for _, cycles := range perNode {
		cur := 1
		for i := 1; i < len(cycles); i++ {
			if cycles[i]-cycles[i-1] > 50 {
				bursts++
				packets += cur
				cur = 1
			} else {
				cur++
			}
		}
		bursts++
		packets += cur
	}
	if bursts < 100 {
		t.Fatalf("only %d bursts reconstructed; test is underpowered", bursts)
	}
	mean := float64(packets) / float64(bursts)
	if mean < burstLen*0.8 || mean > burstLen*1.2 {
		t.Errorf("mean burst length %.2f, want %.1f ± 20%%", mean, burstLen)
	}
}

// TestTraceReplayReproducesRecordedRun: replaying a recording must
// reproduce the recorded run's Result bit for bit, and the trace must
// survive an NDJSON round trip unchanged.
func TestTraceReplayReproducesRecordedRun(t *testing.T) {
	ncfg := noc.Defaults(4, 4)
	tcfg := Config{
		Rate: 0.08, PayloadFlits: 4, Seed: 5,
		Warmup: 100, Measure: 1500, Drain: 20000,
		Spec: PatternSpec{Name: "hotspot", Hotspots: []HotspotSpec{{X: 3, Y: 3, Weight: 0.4}}},
	}
	res, rec, err := RunRecorded(ncfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) == 0 {
		t.Fatal("empty recording")
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rec) {
		t.Fatalf("round trip lost entries: %d of %d", len(back), len(rec))
	}
	for i := range rec {
		if back[i] != rec[i] {
			t.Fatalf("entry %d changed in round trip: %+v vs %+v", i, back[i], rec[i])
		}
	}

	replay := tcfg
	replay.Spec = PatternSpec{Name: "trace", Trace: back}
	got, err := Run(ncfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Fatalf("replay diverged from recorded run:\n  recorded %+v\n  replayed %+v", res, got)
	}

	// Recording the replay must reproduce the trace itself.
	_, rec2, err := RunRecorded(ncfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2) != len(rec) {
		t.Fatalf("re-recording changed trace length: %d of %d", len(rec2), len(rec))
	}
	for i := range rec {
		if rec2[i] != rec[i] {
			t.Fatalf("re-recorded entry %d diverged: %+v vs %+v", i, rec2[i], rec[i])
		}
	}
}

// TestPatternFixedSeedDeterminism: every pattern must yield an
// identical Result when re-run with the same seed.
func TestPatternFixedSeedDeterminism(t *testing.T) {
	ncfg := noc.Defaults(4, 4)
	for _, spec := range []PatternSpec{
		{Name: "uniform"},
		{Name: "bitrev"},
		{Name: "hotspot", Hotspots: []HotspotSpec{{X: 0, Y: 3, Weight: 0.5}}},
		{Name: "bursty"},
		{Name: "multicast", Group: []noc.Addr{{X: 3, Y: 0}, {X: 0, Y: 3}}},
	} {
		tcfg := Config{
			Rate: 0.03, PayloadFlits: 4, Seed: 77,
			Warmup: 100, Measure: 1000, Drain: 20000,
			Spec: spec,
		}
		a, err := Run(ncfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(ncfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: same seed, different results:\n  %+v\n  %+v", spec.Name, a, b)
		}
	}
}

// TestSpecValidation: malformed pattern parameters must be rejected by
// Config.Validate (and therefore surface as client errors in sweepd),
// with a message naming the offending field.
func TestSpecValidation(t *testing.T) {
	ncfg := noc.Defaults(6, 6)
	cases := []struct {
		label string
		ncfg  noc.Config
		spec  PatternSpec
		rate  float64
		want  string
	}{
		{"unknown name", ncfg, PatternSpec{Name: "zipf"}, 0.05, "unknown pattern"},
		{"hotspot without spots", ncfg, PatternSpec{Name: "hotspot"}, 0.05, "without hotspots"},
		{"hotspot off mesh", ncfg, PatternSpec{Name: "hotspot",
			Hotspots: []HotspotSpec{{X: 6, Y: 0, Weight: 0.2}}}, 0.05, "outside"},
		{"hotspot zero weight", ncfg, PatternSpec{Name: "hotspot",
			Hotspots: []HotspotSpec{{X: 1, Y: 1, Weight: 0}}}, 0.05, "weight"},
		{"hotspot weights over 1", ncfg, PatternSpec{Name: "hotspot",
			Hotspots: []HotspotSpec{{X: 1, Y: 1, Weight: 0.7}, {X: 2, Y: 2, Weight: 0.6}}}, 0.05, "sum"},
		{"bitrev non power of two", ncfg, PatternSpec{Name: "bitrev"}, 0.05, "power-of-two"},
		{"empty trace", ncfg, PatternSpec{Name: "trace"}, 0.05, "empty trace"},
		{"trace entry off mesh", ncfg, PatternSpec{Name: "trace", Trace: []TraceEntry{
			{Cycle: 1, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 9, Y: 9}, Payload: 1},
		}}, 0.05, "off the"},
		{"trace entry cycle zero", ncfg, PatternSpec{Name: "trace", Trace: []TraceEntry{
			{Cycle: 0, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Payload: 1},
		}}, 0.05, "cycle"},
		{"trace entry bad payload", ncfg, PatternSpec{Name: "trace", Trace: []TraceEntry{
			{Cycle: 1, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Payload: 0},
		}}, 0.05, "payload"},
		{"empty multicast group", ncfg, PatternSpec{Name: "multicast"}, 0.05, "empty destination set"},
		{"multicast duplicate", ncfg, PatternSpec{Name: "multicast",
			Group: []noc.Addr{{X: 1, Y: 1}, {X: 1, Y: 1}}}, 0.05, "duplicate"},
		{"multicast off mesh", ncfg, PatternSpec{Name: "multicast",
			Group: []noc.Addr{{X: 0, Y: 6}}}, 0.05, "outside"},
		{"burst len below 1", ncfg, PatternSpec{Name: "bursty",
			Burst: &BurstSpec{Len: 0.5, Peak: 0.5}}, 0.05, "burst length"},
		{"burst peak over 1", ncfg, PatternSpec{Name: "bursty",
			Burst: &BurstSpec{Len: 4, Peak: 1.5}}, 0.05, "peak rate"},
		{"rate at burst peak", ncfg, PatternSpec{Name: "bursty",
			Burst: &BurstSpec{Len: 4, Peak: 0.3}}, 0.3, "below the burst peak"},
	}
	for _, c := range cases {
		cfg := Config{
			Rate: c.rate, PayloadFlits: 4,
			Warmup: 10, Measure: 100, Spec: c.spec,
		}
		err := cfg.Validate(c.ncfg)
		if err == nil {
			t.Errorf("%s: accepted", c.label)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
	// Sanity: the well-formed versions pass.
	for _, spec := range []PatternSpec{
		{Name: "uniform"},
		{Name: "bursty"},
		{Name: "hotspot", Hotspots: []HotspotSpec{{X: 1, Y: 1, Weight: 0.5}}},
		{Name: "multicast", Group: []noc.Addr{{X: 1, Y: 1}}},
		{Name: "trace", Trace: []TraceEntry{
			{Cycle: 1, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Payload: 1},
		}},
	} {
		cfg := Config{Rate: 0.05, PayloadFlits: 4, Warmup: 10, Measure: 100, Spec: spec}
		if err := cfg.Validate(ncfg); err != nil {
			t.Errorf("well-formed %s spec rejected: %v", spec.Name, err)
		}
	}
	// RunRecorded refuses multicast workloads.
	if _, _, err := RunRecorded(ncfg, Config{
		Rate: 0.05, PayloadFlits: 4, Warmup: 10, Measure: 100,
		Spec: PatternSpec{Name: "multicast", Group: []noc.Addr{{X: 1, Y: 1}}},
	}); err == nil {
		t.Error("RunRecorded accepted a multicast workload")
	}
}

// TestSpecJSONRoundTrip: a PatternSpec must survive the JSON round trip
// sweep jobs put it through.
func TestSpecJSONRoundTrip(t *testing.T) {
	in := PatternSpec{
		Name:     "hotspot",
		Hotspots: []HotspotSpec{{X: 1, Y: 2, Weight: 0.25}},
		Burst:    &BurstSpec{Len: 4, Peak: 0.4},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out PatternSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Hotspots) != 1 || out.Hotspots[0] != in.Hotspots[0] ||
		out.Burst == nil || *out.Burst != *in.Burst {
		t.Fatalf("round trip changed the spec: %+v vs %+v", out, in)
	}
	if fmt.Sprintf("%s", b) == "" {
		t.Fatal("empty encoding")
	}
}

package traffic

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/noc"
)

func TestConfigValidateRejectsBadFields(t *testing.T) {
	ncfg := noc.Defaults(4, 4)
	good := Config{Rate: 0.05, PayloadFlits: 8, Measure: 100}
	if err := good.Validate(ncfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		ncfg noc.Config
	}{
		{"negative rate", func(c *Config) { c.Rate = -0.1 }, ncfg},
		{"NaN rate", func(c *Config) { c.Rate = math.NaN() }, ncfg},
		{"rate above 1", func(c *Config) { c.Rate = 1.5 }, ncfg},
		{"zero payload", func(c *Config) { c.PayloadFlits = 0 }, ncfg},
		{"oversized payload", func(c *Config) { c.PayloadFlits = 1 << 20 }, ncfg},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }, ncfg},
		{"zero measure", func(c *Config) { c.Measure = 0 }, ncfg},
		{"negative queue cap", func(c *Config) { c.QueueCap = -1 }, ncfg},
		{"negative domains", func(c *Config) { c.Domains = -2 }, ncfg},
		{"domains beyond columns", func(c *Config) { c.Domains = 5 }, ncfg},
		{"zero mesh", func(c *Config) {}, noc.Config{}},
		{"zero-width mesh", func(c *Config) {}, noc.Defaults(0, 4)},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if err := cfg.Validate(tc.ncfg); err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	// Run surfaces validation as an error, never a panic — the property
	// the sweep service's 400 path relies on.
	if _, err := Run(noc.Defaults(0, 0), Config{Rate: 0.1, PayloadFlits: 4, Measure: 10}); err == nil {
		t.Fatal("Run accepted a zero mesh")
	}
	if _, err := Run(noc.Defaults(4, 4), Config{Rate: -1, PayloadFlits: 4, Measure: 10}); err == nil {
		t.Fatal("Run accepted a negative rate")
	}
	if _, err := Run(noc.Defaults(4, 4), Config{Rate: 0.1, PayloadFlits: 4, Measure: 10, Domains: 9}); err == nil {
		t.Fatal("Run accepted more domains than columns")
	}
}

func TestRunWallClockCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the run must abort almost immediately
	_, err := Run(noc.Defaults(8, 8), Config{
		Rate: 0.05, PayloadFlits: 8, Seed: 1,
		Warmup: 1000, Measure: 50_000_000, Drain: 1000,
		Ctx: ctx,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
}

func TestRunCycleBudget(t *testing.T) {
	base := Config{
		Rate: 0.05, PayloadFlits: 8, Seed: 1,
		Warmup: 500, Measure: 3000, Drain: 10_000,
	}
	over := base
	over.MaxCycles = 1000 // inside the measure phase
	if _, err := Run(noc.Defaults(8, 8), over); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("Run = %v, want ErrCycleBudget", err)
	}
	// A generous budget changes nothing: the hook never fires and the
	// result is bit-identical to an unbudgeted run.
	roomy := base
	roomy.MaxCycles = 1_000_000
	want, err := Run(noc.Defaults(8, 8), base)
	if err != nil {
		t.Fatalf("unbudgeted Run: %v", err)
	}
	got, err := Run(noc.Defaults(8, 8), roomy)
	if err != nil {
		t.Fatalf("budgeted Run: %v", err)
	}
	if got != want {
		t.Fatalf("budgeted result diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunCycleBudgetSharded(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		_, err := Run(noc.Defaults(8, 8), Config{
			Rate: 0.05, PayloadFlits: 8, Seed: 1,
			Warmup: 500, Measure: 1_000_000, Drain: 1000,
			Domains: 2, Parallel: parallel,
			MaxCycles: 2000,
		})
		if !errors.Is(err, ErrCycleBudget) {
			t.Fatalf("parallel=%v: Run = %v, want ErrCycleBudget", parallel, err)
		}
	}
}

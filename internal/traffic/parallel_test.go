package traffic

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/vcd"
)

// TestShardedMatchesUnsharded: splitting the mesh into clock domains —
// without parallelism — must not change any result: the cross-domain
// mirror links keep the exact cycle timing of local wires.
func TestShardedMatchesUnsharded(t *testing.T) {
	for _, rate := range []float64{0.002, 0.05} {
		cfg := noc.Defaults(8, 8)
		tcfg := Config{
			Rate: rate, PayloadFlits: 8, Seed: 42,
			Warmup: 500, Measure: 3000, Drain: 30000,
		}
		ref, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		tcfg.Domains = 4
		sharded, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref != sharded {
			t.Fatalf("rate %.3f: sharding changed results:\n  unsharded %+v\n  sharded   %+v", rate, ref, sharded)
		}
		if ref.MeasuredPackets == 0 {
			t.Fatalf("rate %.3f: experiment measured no packets", rate)
		}
	}
}

// TestParallelMatchesSerial: the parallel horizon-protocol execution of
// a sharded mesh must reproduce the serial lockstep run bit-exactly, on
// 8x8 and 16x16 uniform traffic.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		w, h    int
		rate    float64
		measure int
	}{
		{8, 8, 0.05, 3000},
		{8, 8, 0.002, 3000},
		{16, 16, 0.002, 2000},
	}
	for _, c := range cases {
		cfg := noc.Defaults(c.w, c.h)
		tcfg := Config{
			Rate: c.rate, PayloadFlits: 8, Seed: 42,
			Warmup: 300, Measure: c.measure, Drain: 30000,
			Domains: 4,
		}
		serial, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		tcfg.Parallel = true
		parallel, err := Run(cfg, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Fatalf("%dx%d rate %.3f: parallel diverged:\n  serial   %+v\n  parallel %+v",
				c.w, c.h, c.rate, serial, parallel)
		}
		if serial.MeasuredPackets == 0 {
			t.Fatalf("%dx%d rate %.3f: experiment measured no packets", c.w, c.h, c.rate)
		}
	}
}

// TestParallelDeterminism: a fixed partition must yield identical
// results run after run and under different GOMAXPROCS values.
func TestParallelDeterminism(t *testing.T) {
	cfg := noc.Defaults(8, 8)
	tcfg := Config{
		Rate: 0.05, PayloadFlits: 8, Seed: 7,
		Warmup: 300, Measure: 2000, Drain: 30000,
		Domains: 4, Parallel: true,
	}
	ref, err := Run(cfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		got, err := Run(cfg, tcfg)
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("GOMAXPROCS=%d: results diverged:\n  ref %+v\n  got %+v", procs, ref, got)
		}
	}
}

// boundaryRun builds a 8x2 mesh (optionally sharded into 2 or 4 column
// strips), preloads long packets that cross every strip boundary — so
// wormholes span domains for many consecutive cycles — plus reverse
// traffic to contend for the same links, drains it, and returns the
// delivered count, per-router stats and a VCD dump of router (4,0) (a
// boundary router under every partition used here). streaming selects
// between the event-per-flit fast path and the stepped handshake.
func boundaryRun(t *testing.T, domains int, parallel, streaming bool) (uint64, []noc.RouterStats, []byte) {
	t.Helper()
	cfg := noc.Defaults(8, 2)
	var (
		net *noc.Network
		clk *sim.Clock
		err error
	)
	if domains > 1 {
		g := sim.NewGroup(domains)
		g.SetParallel(parallel)
		net, err = noc.NewSharded(g, cfg, noc.StripDomains(cfg, domains, 0))
		clk = g.Clock(0)
	} else {
		clk = sim.NewClock()
		net, err = noc.New(clk, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	net.SetFlitStreaming(streaming)
	var buf bytes.Buffer
	w := vcd.NewWriter(&buf)
	noc.AttachVCD(net, w, noc.Addr{X: 4, Y: 0})
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}

	eps := make(map[noc.Addr]*noc.Endpoint)
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			a := noc.Addr{X: x, Y: y}
			ep, err := net.NewEndpoint(a)
			if err != nil {
				t.Fatal(err)
			}
			eps[a] = ep
		}
	}
	// Long packets left-to-right and right-to-left along both rows:
	// every wormhole crosses every strip boundary and stays open across
	// it for >100 cycles, while the opposing flow contends for buffers.
	payload := make([]uint16, 60)
	for y := 0; y < cfg.Height; y++ {
		for k := 0; k < 3; k++ {
			if _, err := eps[noc.Addr{X: 0, Y: y}].Send(noc.Addr{X: 7, Y: y}, payload); err != nil {
				t.Fatal(err)
			}
			if _, err := eps[noc.Addr{X: 7, Y: y}].Send(noc.Addr{X: 0, Y: 1 - y}, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := clk.RunUntilQuiescent(1_000_000); err != nil {
		t.Fatal(err)
	}
	var stats []noc.RouterStats
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			stats = append(stats, net.Router(noc.Addr{X: x, Y: y}).Stats())
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return net.Delivered(), stats, buf.Bytes()
}

// TestPartitionBoundaryStress: packets crossing domain boundaries
// mid-wormhole must behave exactly as on an unsharded mesh — same
// deliveries, same per-router flit/grant/wait statistics, and a
// byte-identical VCD dump of a boundary router — in lockstep and in
// parallel, for 2- and 4-way partitions.
func TestPartitionBoundaryStress(t *testing.T) {
	refDelivered, refStats, refVCD := boundaryRun(t, 1, false, true)
	if refDelivered == 0 {
		t.Fatal("reference run delivered nothing; test is vacuous")
	}
	for _, c := range []struct {
		domains  int
		parallel bool
	}{{2, false}, {2, true}, {4, false}, {4, true}} {
		delivered, stats, dump := boundaryRun(t, c.domains, c.parallel, true)
		if delivered != refDelivered {
			t.Errorf("domains=%d parallel=%v: delivered %d, want %d",
				c.domains, c.parallel, delivered, refDelivered)
		}
		for i := range refStats {
			if stats[i] != refStats[i] {
				t.Errorf("domains=%d parallel=%v: router %d stats diverged:\n  ref %+v\n  got %+v",
					c.domains, c.parallel, i, refStats[i], stats[i])
			}
		}
		if !bytes.Equal(dump, refVCD) {
			t.Errorf("domains=%d parallel=%v: VCD dump differs from unsharded reference (%d vs %d bytes)",
				c.domains, c.parallel, len(dump), len(refVCD))
		}
	}
}

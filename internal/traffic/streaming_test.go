package traffic

import (
	"bytes"
	"testing"

	"repro/internal/noc"
)

// TestStreamingMatchesSteppedAcrossKernels: the event-per-flit
// streaming fast path must produce bit-identical experiment Results —
// accepted/delivered loads and the full latency distribution — on
// every kernel mode, from near-idle (almost everything warps or
// sleeps) to saturation (streams engage, block on full buffers and
// fall back constantly).
func TestStreamingMatchesSteppedAcrossKernels(t *testing.T) {
	modes := []struct {
		name string
		mod  func(*Config)
	}{
		{"serial", func(c *Config) {}},
		{"dense", func(c *Config) { c.DenseKernel = true }},
		{"nowarp", func(c *Config) { c.NoTimeWarp = true }},
		{"sharded", func(c *Config) { c.Domains = 3 }},
		{"parallel", func(c *Config) { c.Domains = 3; c.Parallel = true }},
	}
	for _, rate := range []float64{0.002, 0.40} {
		for _, m := range modes {
			cfg := noc.Defaults(6, 6)
			tcfg := Config{
				Rate: rate, PayloadFlits: 8, Seed: 42,
				Warmup: 500, Measure: 3000, Drain: 30000,
			}
			m.mod(&tcfg)
			streamed, err := Run(cfg, tcfg)
			if err != nil {
				t.Fatal(err)
			}
			tcfg.NoFlitStreaming = true
			stepped, err := Run(cfg, tcfg)
			if err != nil {
				t.Fatal(err)
			}
			if streamed != stepped {
				t.Errorf("%s rate %.3f: streaming changed results:\n  streamed %+v\n  stepped  %+v",
					m.name, rate, streamed, stepped)
			}
			if streamed.MeasuredPackets == 0 {
				t.Errorf("%s rate %.3f: experiment measured no packets", m.name, rate)
			}
		}
	}
}

// TestStreamingPartitionBoundary: the boundary stress workload — long
// wormholes held open across clock-domain boundaries under contention —
// must deliver the same packets, the same per-router statistics and a
// byte-identical VCD dump of a boundary router whether flits move by
// streaming events or the stepped handshake, on unsharded, lockstep
// and parallel partitions. (Cross-domain links never stream — each
// side holds its own view of the link — so this pins the interaction
// of streamed intra-strip hops feeding stepped boundary hops
// mid-wormhole.)
func TestStreamingPartitionBoundary(t *testing.T) {
	refDelivered, refStats, refVCD := boundaryRun(t, 1, false, false)
	if refDelivered == 0 {
		t.Fatal("reference run delivered nothing; test is vacuous")
	}
	for _, c := range []struct {
		domains  int
		parallel bool
	}{{1, false}, {2, false}, {2, true}, {4, false}, {4, true}} {
		delivered, stats, dump := boundaryRun(t, c.domains, c.parallel, true)
		if delivered != refDelivered {
			t.Errorf("domains=%d parallel=%v: streamed delivered %d, want %d",
				c.domains, c.parallel, delivered, refDelivered)
		}
		for i := range refStats {
			if stats[i] != refStats[i] {
				t.Errorf("domains=%d parallel=%v: router %d stats diverged from stepped:\n  ref %+v\n  got %+v",
					c.domains, c.parallel, i, refStats[i], stats[i])
			}
		}
		if !bytes.Equal(dump, refVCD) {
			t.Errorf("domains=%d parallel=%v: streamed VCD dump differs from stepped reference (%d vs %d bytes)",
				c.domains, c.parallel, len(dump), len(refVCD))
		}
	}
}

package r8sim

import (
	"testing"
	"testing/quick"

	"repro/internal/r8"
	"repro/internal/r8asm"
	"repro/internal/sim"
)

func TestRunsAssembledProgram(t *testing.T) {
	p, err := r8asm.Assemble(`
		LDI R1, 6
		LDI R2, 7
		CLR R3
loop:	ADD R3, R3, R1
		DEC R2
		JMPNZ loop
		LDI R4, out
		CLR R0
		ST R3, R4, R0
		HALT
out:	.word 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1024)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	halted, err := m.Run(10000)
	if !halted || err != nil {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if got := m.Mem[p.Symbols["out"]]; got != 42 {
		t.Errorf("6*7 = %d, want 42", got)
	}
}

func TestPrintfScanfHooks(t *testing.T) {
	p, err := r8asm.Assemble(`
		LDI R1, 0xFFFF
		CLR R0
		LD R2, R1, R0   ; scanf
		ST R2, R1, R0   ; printf the same value
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(1024)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	var printed []uint16
	m.Scanf = func() uint16 { return 0x1234 }
	m.Printf = func(v uint16) { printed = append(printed, v) }
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(printed) != 1 || printed[0] != 0x1234 {
		t.Errorf("printf saw %v, want [0x1234]", printed)
	}
}

func TestBreakpoint(t *testing.T) {
	p, err := r8asm.Assemble("NOP\nNOP\nbp: NOP\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	m := New(1024)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	m.Breakpoints[p.Symbols["bp"]] = true
	halted, err := m.Run(100)
	if halted || err == nil {
		t.Fatalf("breakpoint not hit: halted=%v err=%v", halted, err)
	}
	if m.PC != p.Symbols["bp"] {
		t.Errorf("stopped at %#04x, want %#04x", m.PC, p.Symbols["bp"])
	}
}

func TestTraceHook(t *testing.T) {
	p, err := r8asm.Assemble("NOP\nNOP\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	m := New(1024)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	var ops []r8.Op
	m.Trace = func(pc uint16, inst r8.Inst) { ops = append(ops, inst.Op) }
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || ops[0] != r8.NOP || ops[2] != r8.HALT {
		t.Errorf("trace = %v", ops)
	}
}

func TestIllegalTraps(t *testing.T) {
	m := New(1024)
	m.Mem[0] = 0xE000
	halted, err := m.Run(10)
	if !halted || err == nil {
		t.Fatalf("illegal not trapped: %v %v", halted, err)
	}
}

// cpuRAM adapts the functional machine's memory for the cycle-accurate
// core, without I/O interception (differential runs avoid IOAddr).
type cpuRAM struct{ m []uint16 }

func (r *cpuRAM) Read(a uint16) (uint16, bool) { return r.m[int(a)%len(r.m)], true }
func (r *cpuRAM) Write(a, v uint16) bool       { r.m[int(a)%len(r.m)] = v; return true }

// TestDifferentialAgainstCycleAccurateCore runs randomly generated
// programs on both R8 implementations and requires identical
// architectural state after every instruction. This is the
// cross-check the paper's flow performs manually (simulate first, then
// run on hardware).
func TestDifferentialAgainstCycleAccurateCore(t *testing.T) {
	rng := sim.NewRand(2024)
	safeOps := []r8.Op{
		r8.ADD, r8.SUB, r8.AND, r8.OR, r8.XOR,
		r8.ADDI, r8.SUBI, r8.LDL, r8.LDH,
		r8.LD, r8.ST,
		r8.SL0, r8.SL1, r8.SR0, r8.SR1, r8.NOT, r8.MOV,
		r8.PUSH, r8.POP, r8.RDSP, r8.NOP,
		r8.JMPZ, r8.JMPC, r8.JMPN, r8.JMPV,
	}
	for trial := 0; trial < 200; trial++ {
		const progLen = 64
		words := make([]uint16, progLen)
		for i := range words {
			op := safeOps[rng.Intn(len(safeOps))]
			inst := r8.Inst{
				Op:  op,
				Rt:  rng.Intn(16),
				Rs1: rng.Intn(16),
				Rs2: rng.Intn(16),
				Imm: uint8(rng.Intn(256)),
				// Forward-only small jumps keep execution bounded.
				Disp: int8(rng.Intn(4)),
			}
			w, err := inst.Encode()
			if err != nil {
				t.Fatal(err)
			}
			words[i] = w
		}
		// Terminate with HALT.
		halt, _ := r8.Inst{Op: r8.HALT}.Encode()
		words = append(words, halt)

		fm := New(1024)
		copy(fm.Mem, words)
		cc := r8.New()
		ram := &cpuRAM{m: make([]uint16, 1024)}
		copy(ram.m, words)
		// Keep SP inside memory and identical.
		fm.SP, cc.SP = 0x03FF, 0x03FF
		// Seed registers identically.
		for i := range fm.Regs {
			v := uint16(rng.Uint64())
			fm.Regs[i], cc.Regs[i] = v, v
		}

		for step := 0; step < 1000; step++ {
			if fm.Halted() {
				break
			}
			before := cc.Retired
			for !cc.Halted() && cc.Retired == before {
				cc.Step(ram)
			}
			fm.StepInst()
			if fm.Halted() != cc.Halted() {
				t.Fatalf("trial %d step %d: halted %v vs %v", trial, step, fm.Halted(), cc.Halted())
			}
			if fm.Err() != nil && cc.Err() != nil {
				// Both trapped on the same illegal word (self-modifying
				// random code); PC conventions differ at a trap — the
				// functional machine points at the faulting word, the
				// core has pre-incremented during fetch.
				break
			}
			if fm.PC != cc.PC || fm.SP != cc.SP {
				t.Fatalf("trial %d step %d: PC/SP %#04x/%#04x vs %#04x/%#04x",
					trial, step, fm.PC, fm.SP, cc.PC, cc.SP)
			}
			if fm.Regs != cc.Regs {
				t.Fatalf("trial %d step %d: registers diverged\nfunc: %v\ncyc:  %v",
					trial, step, fm.Regs, cc.Regs)
			}
			if fm.N != cc.N || fm.Z != cc.Z || fm.C != cc.C || fm.V != cc.V {
				t.Fatalf("trial %d step %d: flags diverged", trial, step)
			}
		}
		for i := range ram.m {
			if fm.Mem[i] != ram.m[i] {
				t.Fatalf("trial %d: memory diverged at %#04x: %#x vs %#x",
					trial, i, fm.Mem[i], ram.m[i])
			}
		}
	}
}

func TestFunctionalDeterminism(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		mk := func() *Machine {
			m := New(1024)
			m.Regs[1], m.Regs[2] = a, b
			add, _ := r8.Inst{Op: r8.ADD, Rt: 3, Rs1: 1, Rs2: 2}.Encode()
			halt, _ := r8.Inst{Op: r8.HALT}.Encode()
			m.Mem[0], m.Mem[1] = add, halt
			m.Run(10)
			return m
		}
		x, y := mk(), mk()
		return x.Regs == y.Regs && x.N == y.N && x.C == y.C
	}, nil); err != nil {
		t.Error(err)
	}
}

// Package r8sim is the instruction-level R8 simulator — the counterpart
// of the paper's "R8 Simulator environment" [3], used to write and debug
// assembly before downloading it to MultiNoC. Like the original, it
// simulates a single processor only (the full-system simulator lives in
// internal/core); unlike the cycle-accurate core in internal/r8 it
// executes one whole instruction per step, making it fast and — being an
// independent implementation of the ISA semantics — a differential
// oracle for the hardware model.
package r8sim

import (
	"fmt"

	"repro/internal/r8"
	"repro/internal/r8asm"
)

// IOAddr is the memory-mapped I/O address: ST performs printf, LD
// performs scanf (§2.4).
const IOAddr = 0xFFFF

// Machine is a functional R8 with a flat memory.
type Machine struct {
	Mem  []uint16
	Regs [16]uint16
	PC   uint16
	SP   uint16
	N    bool
	Z    bool
	C    bool
	V    bool

	// Printf is invoked for each word stored to IOAddr; Scanf supplies
	// the word loaded from IOAddr. Nil hooks turn the accesses into
	// plain memory traffic to the top memory word.
	Printf func(v uint16)
	Scanf  func() uint16
	// Trace, when non-nil, receives every executed instruction.
	Trace func(pc uint16, inst r8.Inst)

	Breakpoints map[uint16]bool

	halted  bool
	err     error
	Retired uint64
}

// New returns a machine with memWords words of memory (use 65536 for
// the full address space, 1024 for a MultiNoC local memory image).
func New(memWords int) *Machine {
	return &Machine{
		Mem:         make([]uint16, memWords),
		SP:          0x03FF,
		Breakpoints: make(map[uint16]bool),
	}
}

// Load copies an assembled program into memory.
func (m *Machine) Load(p *r8asm.Program) error {
	img, err := p.Flatten(len(m.Mem))
	if err != nil {
		return err
	}
	copy(m.Mem, img)
	return nil
}

// Halted reports whether the machine executed HALT or trapped.
func (m *Machine) Halted() bool { return m.halted }

// Err returns the trap reason, nil after a clean HALT.
func (m *Machine) Err() error { return m.err }

func (m *Machine) read(addr uint16) uint16 {
	if addr == IOAddr && m.Scanf != nil {
		return m.Scanf()
	}
	return m.Mem[int(addr)%len(m.Mem)]
}

func (m *Machine) write(addr, v uint16) {
	if addr == IOAddr && m.Printf != nil {
		m.Printf(v)
		return
	}
	m.Mem[int(addr)%len(m.Mem)] = v
}

func (m *Machine) setNZ(v uint16) {
	m.N = v&0x8000 != 0
	m.Z = v == 0
}

func (m *Machine) add(a, b uint16, carryIn uint16) uint16 {
	sum := uint32(a) + uint32(b) + uint32(carryIn)
	v := uint16(sum)
	m.C = sum > 0xFFFF
	m.V = (a^v)&(b^v)&0x8000 != 0
	m.setNZ(v)
	return v
}

// StepInst executes exactly one instruction. It is a no-op when halted.
func (m *Machine) StepInst() {
	if m.halted {
		return
	}
	w := m.Mem[int(m.PC)%len(m.Mem)]
	inst, err := r8.Decode(w)
	if err != nil {
		m.halted, m.err = true, err
		return
	}
	if m.Trace != nil {
		m.Trace(m.PC, inst)
	}
	m.PC++
	r := &m.Regs
	switch inst.Op {
	case r8.ADD:
		r[inst.Rt] = m.add(r[inst.Rs1], r[inst.Rs2], 0)
	case r8.SUB:
		r[inst.Rt] = m.add(r[inst.Rs1], ^r[inst.Rs2], 1)
	case r8.AND:
		r[inst.Rt] = r[inst.Rs1] & r[inst.Rs2]
		m.setNZ(r[inst.Rt])
		m.C, m.V = false, false
	case r8.OR:
		r[inst.Rt] = r[inst.Rs1] | r[inst.Rs2]
		m.setNZ(r[inst.Rt])
		m.C, m.V = false, false
	case r8.XOR:
		r[inst.Rt] = r[inst.Rs1] ^ r[inst.Rs2]
		m.setNZ(r[inst.Rt])
		m.C, m.V = false, false
	case r8.ADDI:
		r[inst.Rt] = m.add(r[inst.Rt], uint16(inst.Imm), 0)
	case r8.SUBI:
		r[inst.Rt] = m.add(r[inst.Rt], ^uint16(inst.Imm), 1)
	case r8.LDL:
		r[inst.Rt] = r[inst.Rt]&0xFF00 | uint16(inst.Imm)
	case r8.LDH:
		r[inst.Rt] = uint16(inst.Imm)<<8 | r[inst.Rt]&0x00FF
	case r8.LD:
		r[inst.Rt] = m.read(r[inst.Rs1] + r[inst.Rs2])
	case r8.ST:
		m.write(r[inst.Rs1]+r[inst.Rs2], r[inst.Rt])
	case r8.JMP, r8.JMPN, r8.JMPZ, r8.JMPC, r8.JMPV,
		r8.JMPNN, r8.JMPNZ, r8.JMPNC, r8.JMPNV:
		if m.cond(inst.Op) {
			m.PC += uint16(int16(inst.Disp))
		}
	case r8.JSR:
		m.write(m.SP, m.PC)
		m.SP--
		m.PC += uint16(int16(inst.Disp))
	case r8.JSRR:
		m.write(m.SP, m.PC)
		m.SP--
		m.PC = r[inst.Rs1]
	case r8.SL0:
		m.C = r[inst.Rs1]&0x8000 != 0
		r[inst.Rt] = r[inst.Rs1] << 1
		m.V = false
		m.setNZ(r[inst.Rt])
	case r8.SL1:
		m.C = r[inst.Rs1]&0x8000 != 0
		r[inst.Rt] = r[inst.Rs1]<<1 | 1
		m.V = false
		m.setNZ(r[inst.Rt])
	case r8.SR0:
		m.C = r[inst.Rs1]&1 != 0
		r[inst.Rt] = r[inst.Rs1] >> 1
		m.V = false
		m.setNZ(r[inst.Rt])
	case r8.SR1:
		m.C = r[inst.Rs1]&1 != 0
		r[inst.Rt] = r[inst.Rs1]>>1 | 0x8000
		m.V = false
		m.setNZ(r[inst.Rt])
	case r8.NOT:
		r[inst.Rt] = ^r[inst.Rs1]
		m.setNZ(r[inst.Rt])
	case r8.MOV:
		r[inst.Rt] = r[inst.Rs1]
		m.setNZ(r[inst.Rt])
	case r8.PUSH:
		m.write(m.SP, r[inst.Rs1])
		m.SP--
	case r8.POP:
		m.SP++
		r[inst.Rt] = m.read(m.SP)
	case r8.LDSP:
		m.SP = r[inst.Rs1]
	case r8.RDSP:
		r[inst.Rt] = m.SP
	case r8.RTS:
		m.SP++
		m.PC = m.read(m.SP)
	case r8.JMPR:
		m.PC = r[inst.Rs1]
	case r8.NOP:
	case r8.HALT:
		m.halted = true
	}
	m.Retired++
}

func (m *Machine) cond(op r8.Op) bool {
	switch op {
	case r8.JMP:
		return true
	case r8.JMPN:
		return m.N
	case r8.JMPZ:
		return m.Z
	case r8.JMPC:
		return m.C
	case r8.JMPV:
		return m.V
	case r8.JMPNN:
		return !m.N
	case r8.JMPNZ:
		return !m.Z
	case r8.JMPNC:
		return !m.C
	case r8.JMPNV:
		return !m.V
	}
	return false
}

// Run executes instructions until HALT, a breakpoint, or the budget is
// spent. It reports whether the machine halted.
func (m *Machine) Run(maxInst int) (halted bool, err error) {
	for i := 0; i < maxInst && !m.halted; i++ {
		m.StepInst()
		if m.Breakpoints[m.PC] {
			return false, fmt.Errorf("r8sim: breakpoint at %#04x", m.PC)
		}
	}
	return m.halted, m.err
}

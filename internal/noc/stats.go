package noc

import "sort"

// LatencyStats summarizes packet latencies over a set of delivered
// packets.
type LatencyStats struct {
	Packets int
	// MinCycles/MeanCycles/P95Cycles/MaxCycles describe network latency
	// (injection of the header to delivery of the tail).
	MinCycles  uint64
	MeanCycles float64
	P95Cycles  uint64
	MaxCycles  uint64
	// MeanTotalCycles includes source queueing time.
	MeanTotalCycles float64
}

// Latencies computes latency statistics over metas, ignoring packets
// not yet delivered.
func Latencies(metas []*PacketMeta) LatencyStats {
	var s LatencyStats
	var lats []uint64
	var sum, sumTotal uint64
	for _, m := range metas {
		if m.EjectCycle == 0 {
			continue
		}
		l := m.NetworkLatency()
		lats = append(lats, l)
		sum += l
		sumTotal += m.TotalLatency()
	}
	s.Packets = len(lats)
	if s.Packets == 0 {
		return s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.MinCycles = lats[0]
	s.MaxCycles = lats[len(lats)-1]
	s.P95Cycles = lats[(len(lats)*95)/100]
	s.MeanCycles = float64(sum) / float64(s.Packets)
	s.MeanTotalCycles = float64(sumTotal) / float64(s.Packets)
	return s
}

// FormulaLatency evaluates the paper's minimal-latency model
// latency = (sum Ri + P) x 2 for n routers with Ri = RouteCycles/2 and a
// packet of p flits (header and size included).
func FormulaLatency(cfg Config, hops, packetFlits int) uint64 {
	return uint64(cfg.RouteCycles*hops + 2*packetFlits)
}

// LinkBandwidthMbps is the theoretical peak of one link in Mbit/s:
// FlitBits per 2 cycles at ClockMHz.
func LinkBandwidthMbps(cfg Config) float64 {
	return float64(cfg.FlitBits) / 2 * cfg.ClockMHz
}

// RouterPeakGbps is the paper's headline router figure: five ports
// streaming simultaneously (1 Gbit/s for 8-bit flits at 50 MHz).
func RouterPeakGbps(cfg Config) float64 {
	return 5 * LinkBandwidthMbps(cfg) / 1000
}

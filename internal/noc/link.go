package noc

import "repro/internal/sim"

// Link models one unidirectional physical channel between neighbouring
// routers (or between a router's Local port and its IP core): the
// tx/data_out and ack signals of §2.1. Both routers of a neighbour pair
// hold two Links, one per direction, giving the six-signal interface the
// paper lists (tx, data_out, ack_tx, rx, data_in, ack_rx).
//
// The handshake condensed onto these registered wires costs exactly two
// clock cycles per flit in steady state, which is the figure the paper's
// latency formula and the 1 Gbit/s peak-throughput claim are built on:
//
//	cycle k:   sender drives tx=1 with a new flit
//	cycle k+1: receiver sees it, accepts, raises ack for one cycle
//	cycle k+2: sender sees ack, presents the next flit
type Link struct {
	Tx   *sim.Wire[bool]
	Data *sim.Wire[Flit]
	Ack  *sim.Wire[bool]
}

// NewLink creates an idle link in clk's domain.
func NewLink(clk *sim.Clock, name string) *Link {
	return &Link{
		Tx:   sim.NewWire(clk, name+".tx", false),
		Data: sim.NewWire(clk, name+".data", Flit{}),
		Ack:  sim.NewWire(clk, name+".ack", false),
	}
}

// NewCrossLink creates a link crossing a clock-domain boundary: the
// sender lives in src's domain, the receiver in dst's. Each side gets
// its own view of the link holding local wires for the signals it
// drives (tx/data on the send side, ack on the receive side) and
// mirror wires for the signals driven from the other domain. The
// mirrors carry exactly the one-cycle registration an intra-domain
// wire has, so the 2-cycle flit handshake — and therefore every
// latency and throughput figure — is bit-identical to an ordinary
// link; the boundary costs lookahead, not cycles.
func NewCrossLink(src, dst *sim.Clock, name string) (send, recv *Link) {
	tx := sim.NewWire(src, name+".tx", false)
	data := sim.NewWire(src, name+".data", Flit{})
	ack := sim.NewWire(dst, name+".ack", false)
	send = &Link{Tx: tx, Data: data, Ack: sim.MirrorWire(ack, src)}
	recv = &Link{Tx: sim.MirrorWire(tx, dst), Data: sim.MirrorWire(data, dst), Ack: ack}
	return send, recv
}

// sender drives the upstream side of a Link. It is embedded in router
// output ports and endpoints; its owner supplies the flit source.
type sender struct {
	link *Link
	busy bool // flit presented, waiting for ack

	nBusy bool
}

// eval runs the sender handshake for one cycle.
//
// hasNext/peek expose the owner's flit queue; accepted is called exactly
// once per flit, in the Eval phase of the cycle in which the downstream
// ack is observed, so the owner can stage the corresponding pop and any
// bookkeeping. After a flit is accepted the sender immediately presents
// the following one when available, preserving the 2-cycle cadence.
func (s *sender) eval(hasNext func() bool, peek func() Flit, accepted func()) {
	s.nBusy = s.busy
	if s.busy && s.link.Ack.Get() {
		accepted()
		s.nBusy = false
	}
	if !s.nBusy {
		if hasNext() {
			s.link.Data.Set(peek())
			s.link.Tx.Set(true)
			s.nBusy = true
		} else if s.link.Tx.Peek() {
			// Deassert only on the transition; re-staging an already-low
			// tx every cycle would keep the idle link on the kernel's
			// dirty-wire list for nothing.
			s.link.Tx.Set(false)
		}
	}
}

func (s *sender) commit() { s.busy = s.nBusy }

// receiver drives the downstream side of a Link. Its owner supplies the
// space check and consumes accepted flits.
type receiver struct {
	link    *Link
	ackHigh bool // we accepted last cycle; data on the wire is stale

	nAckHigh bool
}

// eval runs the receiver handshake for one cycle. If a flit is accepted
// this cycle, take is called with it (the owner stages the push).
func (r *receiver) eval(hasSpace func() bool, take func(Flit)) {
	accept := r.link.Tx.Get() && !r.ackHigh && hasSpace()
	if accept {
		take(r.link.Data.Get())
	}
	if accept != r.link.Ack.Peek() {
		r.link.Ack.Set(accept)
	}
	r.nAckHigh = accept
}

func (r *receiver) commit() { r.ackHigh = r.nAckHigh }

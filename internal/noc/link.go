package noc

import "repro/internal/sim"

// Link models one unidirectional physical channel between neighbouring
// routers (or between a router's Local port and its IP core): the
// tx/data_out and ack signals of §2.1. Both routers of a neighbour pair
// hold two Links, one per direction, giving the six-signal interface the
// paper lists (tx, data_out, ack_tx, rx, data_in, ack_rx).
//
// The handshake condensed onto these registered wires costs exactly two
// clock cycles per flit in steady state, which is the figure the paper's
// latency formula and the 1 Gbit/s peak-throughput claim are built on:
//
//	cycle k:   sender drives tx=1 with a new flit
//	cycle k+1: receiver sees it, accepts, raises ack for one cycle
//	cycle k+2: sender sees ack, presents the next flit
type Link struct {
	Tx   *sim.Wire[bool]
	Data *sim.Wire[Flit]
	Ack  *sim.Wire[bool]

	// stream is the event-per-flit fast-path state shared by the two
	// ends of an intra-domain link; nil until the network wires both a
	// sender and a receiver onto this Link object. The two views of a
	// cross-domain link are distinct objects, so a cross-domain stream
	// never becomes ready and those links always run the stepped
	// handshake (mirror events fire on wire latches, which streaming
	// suppresses).
	stream *linkStream
}

// linkStream batches steady-state flit transfers over one link: instead
// of both handshake sides re-evaluating every cycle, the receiver pulls
// the sender's queue head directly on each accept cycle and the sender
// runs its bookkeeping one cycle later — exactly the cycles the stepped
// 2-cycle handshake would use, so every counter, stamp and buffer
// occupancy is bit-identical. While linked the wires are frozen (tx
// high, data and ack stale); the fast path exits back to the stepped
// handshake — restoring the exact stepped wire state — at connection
// close, on an empty sender queue, and on a full receiver buffer.
//
// linkedFrom/unlinkedFrom gate the transition cycles: within one Eval
// phase component order is arbitrary, so a side that evaluates after
// the transition was staged must still see the old mode for the
// current cycle.
type linkStream struct {
	on     bool // policy: false for traced links or SetFlitStreaming(false)
	linked bool
	linkedFrom   uint64
	unlinkedFrom uint64
	nextAccept uint64 // cycle of the next receiver-side transfer
	doneAt     uint64 // cycle of the pending sender-side completion; 0 none

	// Receiver-side hooks, registered when the receiving component is
	// wired to the link.
	rcvSpace func() bool
	rcvTake  func(Flit)
	rcvSelf  sim.Handle
	// Sender-side hooks. sndPeek reads the head of the sender's queue
	// (valid whenever linked); sndRestage re-presents it on the wires
	// when the receiver side exits the fast path, recreating the exact
	// stepped sender state (busy, tx high, data staged).
	sndPeek    func() Flit
	sndRestage func()
	sndSelf    sim.Handle
}

// initStream returns the link's stream state, allocating it on first
// use. Only network wiring calls this; raw links built by tests keep a
// nil stream and always run stepped.
func (l *Link) initStream() *linkStream {
	if l.stream == nil {
		l.stream = &linkStream{on: true}
	}
	return l.stream
}

// ready reports whether both ends registered their hooks — true exactly
// for intra-domain links wired by the network.
func (st *linkStream) ready() bool {
	return st != nil && st.on && st.sndPeek != nil && st.rcvTake != nil
}

// isLinked reports whether the fast path governs the given Eval cycle,
// lazily applying a staged unlink once its cycle is reached. Both sides
// (and Idle checks, with the next Eval cycle) gate on it.
func (st *linkStream) isLinked(evalNow uint64) bool {
	if st == nil || !st.linked {
		return false
	}
	if evalNow >= st.unlinkedFrom {
		st.linked = false
		return false
	}
	return evalNow >= st.linkedFrom
}

// engage enters the fast path at the sender's accept cycle: the
// receiver (which lowers ack this cycle via its stepped eval) takes the
// next flit directly on the following cycle.
func (st *linkStream) engage(evalNow uint64) {
	st.linked = true
	st.linkedFrom = evalNow + 1
	st.unlinkedFrom = ^uint64(0)
	st.nextAccept = evalNow + 1
	st.doneAt = 0
	st.rcvSelf.WakeAt(evalNow + 1)
}

// unlinkAt stages the exit: the current cycle still runs linked for any
// side that has not evaluated yet, the next cycle is stepped.
func (st *linkStream) unlinkAt(evalNow uint64) { st.unlinkedFrom = evalNow + 1 }

// receiverTick runs the receive side of the fast path for one Eval
// cycle: on the accept cycle, either pull the sender's queue head into
// the receiver (scheduling the sender-side completion next cycle), or —
// with the buffer full — exit to the stepped handshake with the flit
// re-presented on the wires, exactly where a stepped sender would be
// waiting for space.
func (st *linkStream) receiverTick(evalNow uint64) {
	if evalNow != st.nextAccept {
		return
	}
	if st.rcvSpace() {
		st.rcvTake(st.sndPeek())
		st.doneAt = evalNow + 1
		st.sndSelf.WakeAt(evalNow + 1)
	} else {
		st.unlinkAt(evalNow)
		st.sndRestage()
		st.sndSelf.Wake()
	}
}

// NewLink creates an idle link in clk's domain.
func NewLink(clk *sim.Clock, name string) *Link {
	return &Link{
		Tx:   sim.NewWire(clk, name+".tx", false),
		Data: sim.NewWire(clk, name+".data", Flit{}),
		Ack:  sim.NewWire(clk, name+".ack", false),
	}
}

// NewCrossLink creates a link crossing a clock-domain boundary: the
// sender lives in src's domain, the receiver in dst's. Each side gets
// its own view of the link holding local wires for the signals it
// drives (tx/data on the send side, ack on the receive side) and
// mirror wires for the signals driven from the other domain. The
// mirrors carry exactly the one-cycle registration an intra-domain
// wire has, so the 2-cycle flit handshake — and therefore every
// latency and throughput figure — is bit-identical to an ordinary
// link; the boundary costs lookahead, not cycles.
func NewCrossLink(src, dst *sim.Clock, name string) (send, recv *Link) {
	tx := sim.NewWire(src, name+".tx", false)
	data := sim.NewWire(src, name+".data", Flit{})
	ack := sim.NewWire(dst, name+".ack", false)
	send = &Link{Tx: tx, Data: data, Ack: sim.MirrorWire(ack, src)}
	recv = &Link{Tx: sim.MirrorWire(tx, dst), Data: sim.MirrorWire(data, dst), Ack: ack}
	return send, recv
}

// sender drives the upstream side of a Link. It is embedded in router
// output ports and endpoints; its owner supplies the flit source.
type sender struct {
	link *Link
	busy bool // flit presented, waiting for ack

	nBusy bool
}

// eval runs the sender handshake for one cycle.
//
// hasNext/peek expose the owner's flit queue; accepted is called exactly
// once per flit, in the Eval phase of the cycle in which the downstream
// ack is observed, so the owner can stage the corresponding pop and any
// bookkeeping. After a flit is accepted the sender immediately presents
// the following one when available, preserving the 2-cycle cadence —
// or, when the link's stream is ready, engages the event-per-flit fast
// path instead of re-presenting on the wires.
func (s *sender) eval(evalNow uint64, hasNext func() bool, peek func() Flit, accepted func()) {
	s.nBusy = s.busy
	if s.busy && s.link.Ack.Get() {
		accepted()
		s.nBusy = false
		if s.link.stream.ready() && hasNext() {
			// Steady state reached: downstream just accepted and another
			// flit is queued. Freeze the wires and batch further
			// transfers; the receiver lowers ack via its stepped eval
			// this same cycle, then pulls directly from the queue.
			s.link.stream.engage(evalNow)
			return
		}
	}
	if !s.nBusy {
		if hasNext() {
			s.link.Data.Set(peek())
			s.link.Tx.Set(true)
			s.nBusy = true
		} else if s.link.Tx.Peek() {
			// Deassert only on the transition; re-staging an already-low
			// tx every cycle would keep the idle link on the kernel's
			// dirty-wire list for nothing.
			s.link.Tx.Set(false)
		}
	}
}

func (s *sender) commit() { s.busy = s.nBusy }

// receiver drives the downstream side of a Link. Its owner supplies the
// space check and consumes accepted flits.
type receiver struct {
	link    *Link
	ackHigh bool // we accepted last cycle; data on the wire is stale

	nAckHigh bool
}

// eval runs the receiver handshake for one cycle. If a flit is accepted
// this cycle, take is called with it (the owner stages the push).
func (r *receiver) eval(hasSpace func() bool, take func(Flit)) {
	accept := r.link.Tx.Get() && !r.ackHigh && hasSpace()
	if accept {
		take(r.link.Data.Get())
	}
	if accept != r.link.Ack.Peek() {
		r.link.Ack.Set(accept)
	}
	r.nAckHigh = accept
}

func (r *receiver) commit() { r.ackHigh = r.nAckHigh }

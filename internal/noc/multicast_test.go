package noc

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// mcastNet builds a fully-endpointed mesh, optionally sharded into
// column-strip clock domains (lockstep or parallel), with the given
// flit path and multicast mode.
func mcastNet(t testing.TB, w, h, domains int, parallel, streaming, pathMode bool) (*sim.Clock, *Network) {
	t.Helper()
	cfg := Defaults(w, h)
	var (
		clk *sim.Clock
		net *Network
		err error
	)
	if domains > 1 {
		g := sim.NewGroup(domains)
		g.SetParallel(parallel)
		net, err = NewSharded(g, cfg, StripDomains(cfg, domains, 0))
		clk = g.Clock(0)
	} else {
		clk = sim.NewClock()
		net, err = New(clk, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	net.SetFlitStreaming(streaming)
	net.SetPathMulticast(pathMode)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if _, err := net.NewEndpoint(Addr{X: x, Y: y}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return clk, net
}

// mcastDeliver sends one multicast group from src, runs to quiescence
// and returns the group plus the payload each destination received.
func mcastDeliver(t testing.TB, clk *sim.Clock, net *Network, src Addr, dsts []Addr, payload []uint16) (*MulticastMeta, map[Addr][]uint16) {
	t.Helper()
	g, err := net.Endpoint(src).SendMulti(dsts, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntilQuiescent(5_000_000); err != nil {
		t.Fatal(err)
	}
	got := make(map[Addr][]uint16)
	for _, d := range g.Dsts {
		ep := net.Endpoint(d)
		for {
			p, ok := ep.Recv()
			if !ok {
				break
			}
			if p.Meta != nil && p.Meta.MC == g {
				got[d] = p.Payload
			}
		}
	}
	return g, got
}

// TestMulticastPathMatchesUnicastOracle: on 8x8 and 16x16 idle meshes,
// path-based multicast must deliver exactly the per-destination
// payloads the unicast-replication oracle delivers, with every
// destination's delivery cycle no earlier than the oracle's (the path
// serializes visits; replication fans out directly), monotone along the
// visit path.
func TestMulticastPathMatchesUnicastOracle(t *testing.T) {
	for _, mesh := range []struct{ w, h int }{{8, 8}, {16, 16}} {
		src := Addr{X: mesh.w / 2, Y: mesh.h / 2}
		dsts := []Addr{
			{X: 0, Y: 0}, {X: mesh.w - 1, Y: 0}, {X: 0, Y: mesh.h - 1},
			{X: mesh.w - 1, Y: mesh.h - 1}, {X: 1, Y: mesh.h / 2}, {X: mesh.w - 2, Y: 1},
		}
		payload := []uint16{7, 11, 13, 17, 19}
		clkP, netP := mcastNet(t, mesh.w, mesh.h, 1, false, true, true)
		path, gotPath := mcastDeliver(t, clkP, netP, src, dsts, payload)
		clkU, netU := mcastNet(t, mesh.w, mesh.h, 1, false, true, false)
		oracle, gotUni := mcastDeliver(t, clkU, netU, src, dsts, payload)

		if !path.Path || oracle.Path {
			t.Fatalf("%dx%d: mode flags wrong: path=%v oracle=%v", mesh.w, mesh.h, path.Path, oracle.Path)
		}
		if len(path.Dsts) != len(dsts) || len(oracle.Dsts) != len(dsts) {
			t.Fatalf("%dx%d: destinations lost: path %d oracle %d of %d",
				mesh.w, mesh.h, len(path.Dsts), len(oracle.Dsts), len(dsts))
		}
		if !path.DeliveredAll() || !oracle.DeliveredAll() {
			t.Fatalf("%dx%d: undelivered legs: path=%v oracle=%v",
				mesh.w, mesh.h, path.DeliveredAll(), oracle.DeliveredAll())
		}
		for i, d := range path.Dsts {
			if oracle.Dsts[i] != d {
				t.Fatalf("%dx%d: visit order diverged at %d: path %s oracle %s",
					mesh.w, mesh.h, i, d, oracle.Dsts[i])
			}
			p, u := gotPath[d], gotUni[d]
			if len(p) != len(payload) || len(u) != len(payload) {
				t.Fatalf("%dx%d dst %s: payload lengths path=%d oracle=%d want %d",
					mesh.w, mesh.h, d, len(p), len(u), len(payload))
			}
			for k := range payload {
				if p[k] != u[k] || p[k] != payload[k] {
					t.Errorf("%dx%d dst %s flit %d: path=%d oracle=%d want %d",
						mesh.w, mesh.h, d, k, p[k], u[k], payload[k])
				}
			}
			pc, uc := path.Legs[i].EjectCycle, oracle.Legs[i].EjectCycle
			if pc < uc {
				t.Errorf("%dx%d dst %s: path delivered at %d before oracle's %d",
					mesh.w, mesh.h, d, pc, uc)
			}
			if i > 0 && pc <= path.Legs[i-1].EjectCycle {
				t.Errorf("%dx%d: path delivery not monotone: stop %d at %d, stop %d at %d",
					mesh.w, mesh.h, i-1, path.Legs[i-1].EjectCycle, i, pc)
			}
		}
		for _, net := range []*Network{netP, netU} {
			s := net.MulticastStats()
			if s.Groups != 1 || s.Copies != uint64(len(dsts)) || s.Dropped != 0 {
				t.Errorf("%dx%d: multicast stats %+v, want 1 group, %d copies, 0 dropped",
					mesh.w, mesh.h, s, len(dsts))
			}
		}
	}
}

// TestMulticastCrossKernelIdentical: one multicast group crossing every
// partition boundary must deliver each copy at exactly the same cycle —
// and the oracle mode likewise — whether the mesh is unsharded, sharded
// lockstep, or parallel, with flit streaming on or off. This is the
// partition-boundary multicast differential of the issue: the payload
// hops through intermediate endpoints that live in different clock
// domains.
func TestMulticastCrossKernelIdentical(t *testing.T) {
	const w, h = 8, 4
	src := Addr{X: 0, Y: 0}
	// One destination per column strip under the 4-way partition, so
	// every forwarded leg crosses at least one domain boundary.
	dsts := []Addr{{X: 1, Y: 3}, {X: 3, Y: 0}, {X: 5, Y: 2}, {X: 7, Y: 1}}
	payload := []uint16{3, 1, 4, 1, 5, 9, 2, 6}

	type obs struct {
		ejects []uint64
		stats  MulticastStats
	}
	run := func(domains int, parallel, streaming, pathMode bool) obs {
		clk, net := mcastNet(t, w, h, domains, parallel, streaming, pathMode)
		g, got := mcastDeliver(t, clk, net, src, dsts, payload)
		if !g.DeliveredAll() {
			t.Fatalf("domains=%d parallel=%v streaming=%v path=%v: undelivered legs",
				domains, parallel, streaming, pathMode)
		}
		for _, d := range g.Dsts {
			for k, v := range got[d] {
				if v != payload[k] {
					t.Fatalf("domains=%d path=%v dst %s: corrupt payload flit %d = %d",
						domains, pathMode, d, k, v)
				}
			}
		}
		o := obs{stats: net.MulticastStats()}
		for _, m := range g.Legs {
			o.ejects = append(o.ejects, m.EjectCycle)
		}
		return o
	}

	for _, pathMode := range []bool{true, false} {
		ref := run(1, false, true, pathMode)
		for _, c := range []struct {
			domains   int
			parallel  bool
			streaming bool
		}{{1, false, false}, {2, false, true}, {2, true, true}, {4, false, true}, {4, true, true}, {4, true, false}} {
			got := run(c.domains, c.parallel, c.streaming, pathMode)
			name := fmt.Sprintf("path=%v domains=%d parallel=%v streaming=%v",
				pathMode, c.domains, c.parallel, c.streaming)
			for i := range ref.ejects {
				if got.ejects[i] != ref.ejects[i] {
					t.Errorf("%s: leg %d delivered at %d, reference %d",
						name, i, got.ejects[i], ref.ejects[i])
				}
			}
			if got.stats != ref.stats {
				t.Errorf("%s: multicast stats %+v, reference %+v", name, got.stats, ref.stats)
			}
		}
	}
}

// TestMulticastDropsEndpointlessDestinations: a destination router with
// no endpoint cannot absorb a copy; SendMulti must skip it, count it
// dropped, and still deliver everywhere else — in both modes.
func TestMulticastDropsEndpointlessDestinations(t *testing.T) {
	for _, pathMode := range []bool{true, false} {
		cfg := Defaults(4, 4)
		clk := sim.NewClock()
		net, err := New(clk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.SetPathMulticast(pathMode)
		// Endpoints everywhere except (2,2).
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				if (Addr{X: x, Y: y}) == (Addr{X: 2, Y: 2}) {
					continue
				}
				if _, err := net.NewEndpoint(Addr{X: x, Y: y}); err != nil {
					t.Fatal(err)
				}
			}
		}
		g, err := net.Endpoint(Addr{X: 0, Y: 0}).SendMulti(
			[]Addr{{X: 3, Y: 3}, {X: 2, Y: 2}, {X: 1, Y: 1}}, []uint16{42})
		if err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntilQuiescent(1_000_000); err != nil {
			t.Fatal(err)
		}
		if g.Dropped != 1 || len(g.Dsts) != 2 {
			t.Fatalf("path=%v: group %+v, want 1 dropped and 2 deliverable", pathMode, g)
		}
		if !g.DeliveredAll() {
			t.Fatalf("path=%v: deliverable legs not all delivered", pathMode)
		}
		s := net.MulticastStats()
		if s.Groups != 1 || s.Copies != 2 || s.Dropped != 1 {
			t.Fatalf("path=%v: stats %+v, want {1 2 1}", pathMode, s)
		}
	}
}

// TestSendMultiValidation: malformed destination sets must be rejected
// as errors before anything is staged.
func TestSendMultiValidation(t *testing.T) {
	clk, net := mcastNet(t, 4, 4, 1, false, true, true)
	_ = clk
	ep := net.Endpoint(Addr{X: 0, Y: 0})
	if _, err := ep.SendMulti(nil, []uint16{1}); err == nil {
		t.Error("empty destination set accepted")
	}
	if _, err := ep.SendMulti([]Addr{{X: 9, Y: 0}}, []uint16{1}); err == nil {
		t.Error("off-mesh destination accepted")
	}
	if _, err := ep.SendMulti([]Addr{{X: 1, Y: 1}, {X: 1, Y: 1}}, []uint16{1}); err == nil {
		t.Error("duplicate destination accepted")
	}
	if _, err := ep.SendMulti([]Addr{{X: 1, Y: 1}}, make([]uint16, MaxPayload(8)+1)); err == nil {
		t.Error("oversized payload accepted")
	}
	if s := net.MulticastStats(); s.Groups != 0 {
		t.Errorf("rejected sends counted: %+v", s)
	}
}

// TestMulticastPathOrderCanonical: the visit path must be a
// deterministic function of the destination set, independent of the
// order passed to SendMulti.
func TestMulticastPathOrderCanonical(t *testing.T) {
	a := MulticastPath([]Addr{{X: 3, Y: 1}, {X: 0, Y: 2}, {X: 1, Y: 0}, {X: 1, Y: 3}})
	b := MulticastPath([]Addr{{X: 1, Y: 3}, {X: 1, Y: 0}, {X: 3, Y: 1}, {X: 0, Y: 2}})
	want := []Addr{{X: 0, Y: 2}, {X: 1, Y: 3}, {X: 1, Y: 0}, {X: 3, Y: 1}}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("path not canonical: %v / %v, want %v", a, b, want)
		}
	}
}

package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Config parameterizes a Hermes network instance. The zero value is not
// valid; use Defaults or fill every field. MultiNoC's values (§2.1) are
// the defaults: 8-bit flits, 2-flit buffers, XY routing, 14-cycle
// per-hop routing time (2 x Ri with Ri = 7) and a 50 MHz router clock.
type Config struct {
	// Width and Height give the mesh dimensions in routers.
	Width, Height int
	// FlitBits is the flit width (8 in MultiNoC; 16 and 32 supported
	// for the flit-width ablation).
	FlitBits int
	// BufDepth is the input-buffer depth in flits (2 in MultiNoC).
	BufDepth int
	// RouteCycles is the effective per-hop header latency contribution
	// in clock cycles; the paper's formula uses 2 x Ri with Ri >= 7, so
	// the MultiNoC value is 14.
	RouteCycles int
	// Routing selects the routing algorithm (RouteXY in the paper).
	Routing RoutingFunc
	// ClockMHz converts cycle counts into wall-clock figures for
	// throughput reporting (50 MHz: the Hermes router's rated clock).
	ClockMHz float64
}

// Defaults returns the MultiNoC configuration for a width x height mesh.
func Defaults(width, height int) Config {
	return Config{
		Width:       width,
		Height:      height,
		FlitBits:    8,
		BufDepth:    2,
		RouteCycles: 14,
		Routing:     RouteXY,
		ClockMHz:    50,
	}
}

// internalRouteDelay converts the effective per-hop figure into the
// control logic's countdown: the request-detect cycle and the 2-cycle
// header link transfer account for 3 of the per-hop cycles.
func (c Config) internalRouteDelay() int {
	d := c.RouteCycles - 3
	if d < 1 {
		d = 1
	}
	return d
}

func (c Config) validate() error {
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	case c.Width > 16 || c.Height > 16:
		return fmt.Errorf("noc: mesh %dx%d exceeds the 16x16 addressing limit", c.Width, c.Height)
	case c.FlitBits != 8 && c.FlitBits != 16 && c.FlitBits != 32:
		return fmt.Errorf("noc: unsupported flit width %d", c.FlitBits)
	case c.BufDepth < 1:
		return fmt.Errorf("noc: buffer depth %d < 1", c.BufDepth)
	case c.RouteCycles < 4:
		return fmt.Errorf("noc: RouteCycles %d below pipeline minimum 4", c.RouteCycles)
	case c.Routing == nil:
		return fmt.Errorf("noc: nil routing function")
	default:
		return nil
	}
}

// Network is a complete Hermes mesh: routers, inter-router links and the
// endpoints attached to Local ports. It lives in a caller-provided clock
// domain so that IP-core models can share the clock.
type Network struct {
	cfg       Config
	clk       *sim.Clock
	routers   [][]*Router
	endpoints map[Addr]*Endpoint

	nextPktID uint64
	completed []*PacketMeta
	delivered uint64
}

// New builds the mesh and registers every router with clk.
func New(clk *sim.Clock, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, clk: clk, endpoints: make(map[Addr]*Endpoint)}
	n.routers = make([][]*Router, cfg.Width)
	for x := 0; x < cfg.Width; x++ {
		n.routers[x] = make([]*Router, cfg.Height)
		for y := 0; y < cfg.Height; y++ {
			r := newRouter(Addr{X: x, Y: y}, cfg, clk)
			n.routers[x][y] = r
			clk.Register(r)
		}
	}
	// Wire neighbour links: one Link per direction per adjacent pair.
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			r := n.routers[x][y]
			if x+1 < cfg.Width {
				e := n.routers[x+1][y]
				l1 := NewLink(clk, fmt.Sprintf("l%s-E", r.addr))
				r.connectOut(East, l1)
				e.connectIn(West, l1)
				l2 := NewLink(clk, fmt.Sprintf("l%s-W", e.addr))
				e.connectOut(West, l2)
				r.connectIn(East, l2)
			}
			if y+1 < cfg.Height {
				u := n.routers[x][y+1]
				l1 := NewLink(clk, fmt.Sprintf("l%s-N", r.addr))
				r.connectOut(North, l1)
				u.connectIn(South, l1)
				l2 := NewLink(clk, fmt.Sprintf("l%s-S", u.addr))
				u.connectOut(South, l2)
				r.connectIn(North, l2)
			}
		}
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Clock returns the clock domain the network runs in.
func (n *Network) Clock() *sim.Clock { return n.clk }

// Router returns the router at a, or nil when out of range.
func (n *Network) Router(a Addr) *Router {
	if a.X < 0 || a.X >= n.cfg.Width || a.Y < 0 || a.Y >= n.cfg.Height {
		return nil
	}
	return n.routers[a.X][a.Y]
}

// NewEndpoint creates, wires and registers the endpoint on the Local
// port of router a. Each router supports exactly one endpoint.
func (n *Network) NewEndpoint(a Addr) (*Endpoint, error) {
	r := n.Router(a)
	if r == nil {
		return nil, fmt.Errorf("noc: no router at %s", a)
	}
	if _, dup := n.endpoints[a]; dup {
		return nil, fmt.Errorf("noc: endpoint at %s already exists", a)
	}
	toRouter := NewLink(n.clk, fmt.Sprintf("l%s-Lin", a))
	fromRouter := NewLink(n.clk, fmt.Sprintf("l%s-Lout", a))
	r.connectIn(Local, toRouter)
	r.connectOut(Local, fromRouter)
	ep := &Endpoint{
		net:  n,
		addr: a,
		snd:  sender{link: toRouter},
		rcv:  receiver{link: fromRouter},
	}
	sim.Watch(fromRouter.Tx, ep)
	n.endpoints[a] = ep
	n.clk.Register(ep)
	return ep, nil
}

// Endpoint returns the endpoint at a, or nil if none was created.
func (n *Network) Endpoint(a Addr) *Endpoint { return n.endpoints[a] }

// Completed returns the metadata of every packet fully delivered so far.
func (n *Network) Completed() []*PacketMeta { return n.completed }

// Delivered reports how many packets have been fully delivered.
func (n *Network) Delivered() uint64 { return n.delivered }

// ResetStats clears the completed-packet log and the delivered counter,
// so rates computed after a warmup reset start from zero (router
// counters keep accumulating; they are snapshots, not rates).
func (n *Network) ResetStats() {
	n.completed = nil
	n.delivered = 0
}

func (n *Network) allocMeta(src, dst Addr, payload int) *PacketMeta {
	n.nextPktID++
	return &PacketMeta{
		ID:           n.nextPktID,
		Src:          src,
		Dst:          dst,
		Len:          payload + 2,
		CreatedCycle: n.clk.Cycle(),
		Hops:         HopCount(src, dst),
	}
}

func (n *Network) packetDelivered(m *PacketMeta) {
	m.EjectCycle = n.clk.Cycle()
	n.completed = append(n.completed, m)
	n.delivered++
}

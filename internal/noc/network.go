package noc

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Config parameterizes a Hermes network instance. The zero value is not
// valid; use Defaults or fill every field. MultiNoC's values (§2.1) are
// the defaults: 8-bit flits, 2-flit buffers, XY routing, 14-cycle
// per-hop routing time (2 x Ri with Ri = 7) and a 50 MHz router clock.
type Config struct {
	// Width and Height give the mesh dimensions in routers.
	Width, Height int
	// FlitBits is the flit width (8 in MultiNoC; 16 and 32 supported
	// for the flit-width ablation).
	FlitBits int
	// BufDepth is the input-buffer depth in flits (2 in MultiNoC).
	BufDepth int
	// RouteCycles is the effective per-hop header latency contribution
	// in clock cycles; the paper's formula uses 2 x Ri with Ri >= 7, so
	// the MultiNoC value is 14.
	RouteCycles int
	// Routing selects the routing algorithm (RouteXY in the paper).
	Routing RoutingFunc
	// ClockMHz converts cycle counts into wall-clock figures for
	// throughput reporting (50 MHz: the Hermes router's rated clock).
	ClockMHz float64
}

// Defaults returns the MultiNoC configuration for a width x height mesh.
func Defaults(width, height int) Config {
	return Config{
		Width:       width,
		Height:      height,
		FlitBits:    8,
		BufDepth:    2,
		RouteCycles: 14,
		Routing:     RouteXY,
		ClockMHz:    50,
	}
}

// internalRouteDelay converts the effective per-hop figure into the
// control logic's countdown: the request-detect cycle and the 2-cycle
// header link transfer account for 3 of the per-hop cycles.
func (c Config) internalRouteDelay() int {
	d := c.RouteCycles - 3
	if d < 1 {
		d = 1
	}
	return d
}

// Validate reports the first invalid field of the configuration, nil
// when it is usable. Constructors call it themselves; services that
// accept configurations from the network call it up front to turn a
// malformed request into a client error instead of a recovered crash.
func (c Config) Validate() error {
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	case c.Width > 16 || c.Height > 16:
		return fmt.Errorf("noc: mesh %dx%d exceeds the 16x16 addressing limit", c.Width, c.Height)
	case c.FlitBits != 8 && c.FlitBits != 16 && c.FlitBits != 32:
		return fmt.Errorf("noc: unsupported flit width %d", c.FlitBits)
	case c.BufDepth < 1:
		return fmt.Errorf("noc: buffer depth %d < 1", c.BufDepth)
	case c.RouteCycles < 4:
		return fmt.Errorf("noc: RouteCycles %d below pipeline minimum 4", c.RouteCycles)
	case c.Routing == nil:
		return fmt.Errorf("noc: nil routing function")
	default:
		return nil
	}
}

// netShard holds the per-domain slice of the network's bookkeeping, so
// endpoints in different clock domains allocate packet IDs and log
// deliveries without sharing state across goroutines. An unsharded
// network has exactly one shard.
type netShard struct {
	nextPktID uint64
	// metas is the shard's slice of the network-owned packet-metadata
	// table: metas[seq-1] resolves the PacketID with sequence number
	// seq. Flits carry PacketIDs instead of *PacketMeta pointers, so
	// this table is the one place flit indices become metadata. A slot
	// is nilled once its packet is delivered (no flit references it any
	// more), keeping retired metadata collectable on long runs.
	//
	// metasMu guards metas: on a parallel group run the sending domain
	// appends while a receiving domain resolves a cross-domain header,
	// so the slice header must not be read concurrently with growth.
	// The lock is per packet (alloc, header stamp, delivery), never per
	// flit, so it stays off the streaming hot path.
	metasMu   sync.Mutex
	metas     []*PacketMeta
	completed []*PacketMeta
	delivered uint64
	// Multicast counters. mcGroups/mcDropped are bumped by the sending
	// endpoint's SendMulti (source shard); mcCopies by each delivering
	// endpoint (receiver shard) — the same ownership split as
	// nextPktID/delivered, so no extra locking is needed.
	mcGroups  uint64
	mcCopies  uint64
	mcDropped uint64
}

// Network is a complete Hermes mesh: routers, inter-router links and the
// endpoints attached to Local ports. It lives in a caller-provided clock
// domain — or, sharded, across the domains of a sim.Group, with routers
// assigned per address and neighbour links crossing domain boundaries
// as mirror-wire pairs.
type Network struct {
	cfg       Config
	clk       *sim.Clock // primary (domain-0) clock; the only one when unsharded
	group     *sim.Group // nil when unsharded
	domainOf  func(Addr) int
	routers   [][]*Router
	endpoints map[Addr]*Endpoint
	shards    []netShard
	links     []*Link // every link view built, for SetFlitStreaming
	streaming bool    // policy applied to links built from now on
	pathMcast bool    // SendMulti mode: path-based vs unicast replication
}

// New builds the mesh and registers every router with clk.
func New(clk *sim.Clock, cfg Config) (*Network, error) {
	return buildNet(clk, nil, cfg, nil)
}

// NewSharded builds the mesh across the clock domains of g, assigning
// the router at address a to domain domainOf(a) (every value must be a
// valid domain index). Links between routers of different domains
// become cross-domain mirror pairs with identical cycle timing, so a
// sharded network simulates bit-identically to an unsharded one — only
// packet IDs (sharded per domain) and the ordering of the Completed
// log differ. A nil domainOf places every router in domain 0.
func NewSharded(g *sim.Group, cfg Config, domainOf func(Addr) int) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("noc: NewSharded with nil group")
	}
	if domainOf == nil {
		domainOf = func(Addr) int { return 0 }
	}
	return buildNet(g.Clock(0), g, cfg, domainOf)
}

// StripDomains partitions the mesh into d contiguous column strips,
// mapping strip i to domain base+i — the standard partition for
// sharded traffic runs (XY routing keeps most hops inside a strip).
func StripDomains(cfg Config, d, base int) func(Addr) int {
	return func(a Addr) int { return base + a.X*d/cfg.Width }
}

func buildNet(clk *sim.Clock, g *sim.Group, cfg Config, domainOf func(Addr) int) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := 1
	if g != nil {
		shards = g.Domains()
	}
	n := &Network{
		cfg:       cfg,
		clk:       clk,
		group:     g,
		domainOf:  domainOf,
		endpoints: make(map[Addr]*Endpoint),
		shards:    make([]netShard, shards),
		streaming: true,
		pathMcast: true,
	}
	n.routers = make([][]*Router, cfg.Width)
	for x := 0; x < cfg.Width; x++ {
		n.routers[x] = make([]*Router, cfg.Height)
		for y := 0; y < cfg.Height; y++ {
			a := Addr{X: x, Y: y}
			ck, err := n.clockAt(a)
			if err != nil {
				return nil, err
			}
			r := newRouter(a, cfg, ck)
			n.routers[x][y] = r
			ck.Register(r)
			r.self = ck.Handle(r)
		}
	}
	// Wire neighbour links: one Link per direction per adjacent pair.
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			r := n.routers[x][y]
			if x+1 < cfg.Width {
				e := n.routers[x+1][y]
				n.connectRouters(r, East, e, West, fmt.Sprintf("l%s-E", r.addr))
				n.connectRouters(e, West, r, East, fmt.Sprintf("l%s-W", e.addr))
			}
			if y+1 < cfg.Height {
				u := n.routers[x][y+1]
				n.connectRouters(r, North, u, South, fmt.Sprintf("l%s-N", r.addr))
				n.connectRouters(u, South, r, North, fmt.Sprintf("l%s-S", u.addr))
			}
		}
	}
	return n, nil
}

// connectRouters wires one unidirectional link from an output port of
// src to an input port of dst, crossing clock domains when needed. An
// intra-domain link has both streaming sides registered on one Link
// object and may batch transfers; the two views of a cross-domain link
// each see only their own side, so the stream never becomes ready and
// the link runs the stepped handshake (required: mirror events fire on
// wire latches, which streaming suppresses).
func (n *Network) connectRouters(src *Router, outp Port, dst *Router, inp Port, name string) {
	if src.clk == dst.clk {
		l := NewLink(src.clk, name)
		src.connectOut(outp, l)
		dst.connectIn(inp, l)
		n.addLink(l)
		return
	}
	s, r := NewCrossLink(src.clk, dst.clk, name)
	src.connectOut(outp, s)
	dst.connectIn(inp, r)
	n.addLink(s)
	n.addLink(r)
}

// addLink records a link view and applies the current streaming policy.
func (n *Network) addLink(l *Link) {
	n.links = append(n.links, l)
	if l.stream != nil {
		l.stream.on = n.streaming
	}
}

// SetFlitStreaming enables (the default) or disables the event-per-flit
// fast path on every link of the network, keeping the per-cycle stepped
// handshake as the reference path for differential testing — the same
// role SetActivityScheduling and SetTimeWarp play in the kernel. Both
// modes are bit-identical in every observable (delivery cycles, router
// counters, VCD dumps); streaming only changes how much work a
// steady-state flit costs. Call it before simulating: links already
// mid-stream keep batching until they fall back to stepped naturally.
func (n *Network) SetFlitStreaming(on bool) {
	n.streaming = on
	for _, l := range n.links {
		if l.stream != nil {
			l.stream.on = on
		}
	}
}

// SetPathMulticast selects the delivery mode of subsequent SendMulti
// calls: path-based (the default) routes one packet along a canonical
// path visiting every destination, each intermediate endpoint absorbing
// a copy and re-injecting towards the next stop; disabled, SendMulti
// falls back to unicast replication — one independent copy per
// destination staged at the source — which is the reference oracle the
// multicast differential tests compare against. Groups already in
// flight keep the mode they were sent under.
func (n *Network) SetPathMulticast(on bool) { n.pathMcast = on }

// MulticastStats aggregates multicast activity across the network.
type MulticastStats struct {
	// Groups counts SendMulti calls accepted.
	Groups uint64
	// Copies counts per-destination deliveries completed.
	Copies uint64
	// Dropped counts requested destinations skipped at send time
	// because no endpoint exists at the address.
	Dropped uint64
}

// MulticastStats reports the delivered/dropped multicast counters,
// summed over the network's shards.
func (n *Network) MulticastStats() MulticastStats {
	var s MulticastStats
	for i := range n.shards {
		s.Groups += n.shards[i].mcGroups
		s.Copies += n.shards[i].mcCopies
		s.Dropped += n.shards[i].mcDropped
	}
	return s
}

// clockAt resolves the clock domain owning address a.
func (n *Network) clockAt(a Addr) (*sim.Clock, error) {
	if n.group == nil {
		return n.clk, nil
	}
	d := n.domainOf(a)
	if d < 0 || d >= n.group.Domains() {
		return nil, fmt.Errorf("noc: router %s mapped to domain %d of %d", a, d, n.group.Domains())
	}
	return n.group.Clock(d), nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Clock returns the primary clock domain (the only one when the
// network is unsharded; domain 0 — by convention the default domain of
// non-NoC components — otherwise). Run/RunUntil*/Quiescent calls on it
// drive the whole group.
func (n *Network) Clock() *sim.Clock { return n.clk }

// Group returns the clock-domain group of a sharded network, nil when
// unsharded.
func (n *Network) Group() *sim.Group { return n.group }

// Router returns the router at a, or nil when out of range.
func (n *Network) Router(a Addr) *Router {
	if a.X < 0 || a.X >= n.cfg.Width || a.Y < 0 || a.Y >= n.cfg.Height {
		return nil
	}
	return n.routers[a.X][a.Y]
}

// NewEndpoint creates, wires and registers the endpoint on the Local
// port of router a, in the router's own clock domain. Each router
// supports exactly one endpoint.
func (n *Network) NewEndpoint(a Addr) (*Endpoint, error) {
	r := n.Router(a)
	if r == nil {
		return nil, fmt.Errorf("noc: no router at %s", a)
	}
	return n.newEndpoint(r.clk, a)
}

// NewEndpointFor is NewEndpoint with the endpoint placed in clk's
// domain instead of the router's — for endpoints owned by an IP-core
// component in another domain (an owner calls Send/Recv from its Eval,
// so endpoint and owner must share a domain). The Local-port links
// cross the boundary like any inter-router link.
func (n *Network) NewEndpointFor(clk *sim.Clock, a Addr) (*Endpoint, error) {
	if n.Router(a) == nil {
		return nil, fmt.Errorf("noc: no router at %s", a)
	}
	return n.newEndpoint(clk, a)
}

func (n *Network) newEndpoint(clk *sim.Clock, a Addr) (*Endpoint, error) {
	r := n.Router(a)
	if _, dup := n.endpoints[a]; dup {
		return nil, fmt.Errorf("noc: endpoint at %s already exists", a)
	}
	if n.group == nil && clk != n.clk {
		return nil, fmt.Errorf("noc: endpoint clock outside the network's domain")
	}
	if n.group != nil && clk.Group() != n.group {
		return nil, fmt.Errorf("noc: endpoint clock outside the network's domain group")
	}
	dom := clk.Domain()
	var toRouter, fromRouter *Link // endpoint-side views
	if clk == r.clk {
		toRouter = NewLink(clk, fmt.Sprintf("l%s-Lin", a))
		fromRouter = NewLink(clk, fmt.Sprintf("l%s-Lout", a))
		r.connectIn(Local, toRouter)
		r.connectOut(Local, fromRouter)
	} else {
		send, recvSide := NewCrossLink(clk, r.clk, fmt.Sprintf("l%s-Lin", a))
		r.connectIn(Local, recvSide)
		toRouter = send
		outSend, outRecv := NewCrossLink(r.clk, clk, fmt.Sprintf("l%s-Lout", a))
		r.connectOut(Local, outSend)
		fromRouter = outRecv
	}
	ep := &Endpoint{
		net:  n,
		addr: a,
		clk:  clk,
		dom:  dom,
		snd:  sender{link: toRouter},
		rcv:  receiver{link: fromRouter},
	}
	sim.Watch(fromRouter.Tx, ep)
	n.endpoints[a] = ep
	clk.Register(ep)
	ep.self = clk.Handle(ep)
	// Streaming hooks for the Local links. On the intra-domain path the
	// router registered its halves in connectIn/connectOut; these are
	// the endpoint's halves of the same Link objects. Cross-domain
	// endpoint links (NewEndpointFor) hold distinct view objects whose
	// streams never become ready, so they stay stepped.
	sst := toRouter.initStream()
	sst.sndPeek = func() Flit { return ep.txq[0].f }
	sst.sndRestage = func() {
		toRouter.Data.Set(ep.txq[0].f)
		toRouter.Tx.Set(true)
		ep.snd.busy, ep.snd.nBusy = true, true
	}
	sst.sndSelf = ep.self
	rst := fromRouter.initStream()
	rst.rcvSpace = func() bool { return true } // endpoints sink at link rate
	rst.rcvTake = ep.assemble
	rst.rcvSelf = ep.self
	n.addLink(toRouter)
	n.addLink(fromRouter)
	return ep, nil
}

// Endpoint returns the endpoint at a, or nil if none was created.
func (n *Network) Endpoint(a Addr) *Endpoint { return n.endpoints[a] }

// Completed returns the metadata of every packet fully delivered so
// far. On a sharded network the per-domain logs are concatenated in
// domain order — deterministic, but not the global delivery order an
// unsharded run records; consumers aggregate (sums, sorted quantiles),
// so results are unaffected.
func (n *Network) Completed() []*PacketMeta {
	if len(n.shards) == 1 {
		return n.shards[0].completed
	}
	var all []*PacketMeta
	for i := range n.shards {
		all = append(all, n.shards[i].completed...)
	}
	return all
}

// Delivered reports how many packets have been fully delivered.
func (n *Network) Delivered() uint64 {
	var t uint64
	for i := range n.shards {
		t += n.shards[i].delivered
	}
	return t
}

// ResetStats clears the completed-packet log and the delivered counter,
// so rates computed after a warmup reset start from zero (router
// counters keep accumulating; they are snapshots, not rates).
func (n *Network) ResetStats() {
	for i := range n.shards {
		n.shards[i].completed = nil
		n.shards[i].delivered = 0
	}
}

// allocMeta stamps fresh packet metadata in the sending endpoint's
// shard. Sharded IDs carry the domain index in the top bits over a
// per-domain sequence number — deterministic for a fixed partition,
// and identical to the unsharded numbering for domain 0.
func (n *Network) allocMeta(e *Endpoint, dst Addr, payload int) *PacketMeta {
	sh := &n.shards[e.dom]
	sh.nextPktID++
	id := sh.nextPktID
	if e.dom > 0 {
		id |= uint64(e.dom) << pktSeqBits
	}
	m := &PacketMeta{
		ID:           id,
		Src:          e.addr,
		Dst:          dst,
		Len:          payload + 2,
		CreatedCycle: e.clk.Cycle(),
		Hops:         HopCount(e.addr, dst),
	}
	sh.metasMu.Lock()
	sh.metas = append(sh.metas, m)
	sh.metasMu.Unlock()
	return m
}

// Meta resolves a PacketID carried by a flit to the packet's metadata.
// It returns nil for the zero PacketID and for packets already
// delivered (their table slots are released on ejection).
func (n *Network) Meta(id PacketID) *PacketMeta {
	if id == 0 {
		return nil
	}
	dom := int(id >> pktSeqBits)
	seq := uint64(id) & (1<<pktSeqBits - 1)
	if dom >= len(n.shards) {
		return nil
	}
	sh := &n.shards[dom]
	sh.metasMu.Lock()
	defer sh.metasMu.Unlock()
	if seq == 0 || seq > uint64(len(sh.metas)) {
		return nil
	}
	return sh.metas[seq-1]
}

func (n *Network) packetDelivered(e *Endpoint, m *PacketMeta) {
	m.EjectCycle = e.clk.Cycle()
	// Release the sender-shard table slot: the packet has left the
	// network, so no flit references its ID any more.
	src := &n.shards[int(m.ID>>pktSeqBits)]
	src.metasMu.Lock()
	src.metas[m.ID&(1<<pktSeqBits-1)-1] = nil
	src.metasMu.Unlock()
	// Delivery bookkeeping stays in the receiving endpoint's shard.
	sh := &n.shards[e.dom]
	sh.completed = append(sh.completed, m)
	sh.delivered++
	if m.MC != nil {
		sh.mcCopies++
	}
}

package noc

import (
	"testing"

	"repro/internal/sim"
)

func TestSendRejectsOffMeshDestination(t *testing.T) {
	clk := sim.NewClock()
	net, err := New(clk, Defaults(3, 3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ep, err := net.NewEndpoint(Addr{X: 0, Y: 0})
	if err != nil {
		t.Fatalf("NewEndpoint: %v", err)
	}
	for _, dst := range []Addr{{X: 3, Y: 0}, {X: 0, Y: 3}, {X: -1, Y: 0}, {X: 0, Y: -1}} {
		if _, err := ep.Send(dst, make([]uint16, 4)); err == nil {
			t.Errorf("Send to off-mesh %s accepted", dst)
		}
	}
	if _, err := ep.Send(Addr{X: 2, Y: 2}, make([]uint16, 4)); err != nil {
		t.Errorf("Send to valid corner rejected: %v", err)
	}
}

func TestNewShardedRejectsNilGroupAndBadDomains(t *testing.T) {
	if _, err := NewSharded(nil, Defaults(4, 4), nil); err == nil {
		t.Error("NewSharded accepted a nil group")
	}
	g := sim.NewGroup(2)
	if _, err := NewSharded(g, Defaults(4, 4), func(Addr) int { return 7 }); err == nil {
		t.Error("NewSharded accepted an out-of-range domain mapping")
	}
	if _, err := NewSharded(sim.NewGroup(2), Defaults(4, 4), func(Addr) int { return -1 }); err == nil {
		t.Error("NewSharded accepted a negative domain mapping")
	}
}

func TestConfigValidateExported(t *testing.T) {
	if err := Defaults(4, 4).Validate(); err != nil {
		t.Errorf("Defaults invalid: %v", err)
	}
	bad := []Config{
		{},
		Defaults(0, 4),
		Defaults(4, 0),
		Defaults(17, 4),
		{Width: 4, Height: 4, FlitBits: 9, BufDepth: 2, RouteCycles: 14, Routing: RouteXY},
		{Width: 4, Height: 4, FlitBits: 8, BufDepth: 0, RouteCycles: 14, Routing: RouteXY},
		{Width: 4, Height: 4, FlitBits: 8, BufDepth: 2, RouteCycles: 2, Routing: RouteXY},
		{Width: 4, Height: 4, FlitBits: 8, BufDepth: 2, RouteCycles: 14, Routing: nil},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
}

package noc

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Endpoint is the Local-port adapter through which an IP core exchanges
// packets with the NoC. It owns the injection queue (flattening packets
// into flits and driving the handshake towards the router) and packet
// reassembly on the receive side.
//
// Send and Recv are safe to call from the owning IP core's Eval phase:
// sends are staged and become visible to the endpoint on the next cycle;
// Recv pops packets that completed on earlier cycles. One endpoint must
// have exactly one owning component.
type Endpoint struct {
	net   *Network
	addr  Addr
	clk   *sim.Clock // the endpoint's (and its owner's) clock domain
	dom   int        // shard index for packet bookkeeping
	self  sim.Handle // pre-resolved wake token, set at registration
	snd   sender
	rcv   receiver
	owner sim.Component // woken when a packet completes; may be nil

	txq    []txFlit // committed outgoing flit stream
	stSend []txFlit // staged by Send, moved to txq at Commit
	stFwd  []txFlit // staged by path-multicast forwarding (see Commit)
	popped int      // flits of txq accepted this Eval

	rxPhase     int
	rxRemaining int
	rxPayload   []uint16
	rxMeta      *PacketMeta
	rxDone      []Packet // completed packets awaiting Recv
	stRxDone    []Packet // staged completions

	sent     uint64
	received uint64
}

type txFlit struct {
	f      Flit
	header bool
	tail   bool
}

// Addr reports the mesh address of the router this endpoint hangs off.
func (e *Endpoint) Addr() Addr { return e.addr }

// SetOwner names the component that consumes this endpoint's received
// packets. The owner is woken whenever a packet completes reassembly,
// which lets it implement sim.Idler and sleep between packets.
func (e *Endpoint) SetOwner(c sim.Component) { e.owner = c }

// Send stages a packet for injection. The destination must be a router
// of the mesh and the payload length must not exceed MaxPayload for the
// network's flit width.
func (e *Endpoint) Send(dst Addr, payload []uint16) (*PacketMeta, error) {
	if err := e.checkSend(dst, payload); err != nil {
		return nil, err
	}
	meta := e.net.allocMeta(e, dst, len(payload))
	e.stagePacket(meta, dst, payload, false)
	return meta, nil
}

// checkSend validates one destination/payload pair against the mesh.
func (e *Endpoint) checkSend(dst Addr, payload []uint16) error {
	if dst.X < 0 || dst.X >= e.net.cfg.Width || dst.Y < 0 || dst.Y >= e.net.cfg.Height {
		return fmt.Errorf("noc: destination %s outside the %dx%d mesh",
			dst, e.net.cfg.Width, e.net.cfg.Height)
	}
	if len(payload) > MaxPayload(e.net.cfg.FlitBits) {
		return fmt.Errorf("noc: payload of %d flits exceeds max %d",
			len(payload), MaxPayload(e.net.cfg.FlitBits))
	}
	return nil
}

// stagePacket flattens an already-validated packet into the staged
// injection queue. It is the shared tail of Send, SendMulti and the
// path-multicast forwarding done in complete. Forwarded legs
// (forward=true) are staged in a separate buffer that Commit merges
// ahead of same-cycle Sends: the two stagers run in different
// components' Eval phases, so without a fixed merge order the txq
// order would depend on the kernel's evaluation order.
func (e *Endpoint) stagePacket(meta *PacketMeta, dst Addr, payload []uint16, forward bool) {
	p := Packet{Src: e.addr, Dst: dst, Payload: payload, Meta: meta}
	flits := p.flits(e.net.cfg.FlitBits)
	q := &e.stSend
	if forward {
		q = &e.stFwd
	}
	for i, fl := range flits {
		*q = append(*q, txFlit{f: fl, header: i == 0, tail: i == len(flits)-1})
	}
	// A sleeping endpoint must join the current edge so the staged
	// flits commit to the injection queue this cycle, exactly as they
	// would under dense evaluation.
	e.self.Wake()
}

// SendMulti stages one payload for delivery to a set of destinations,
// as a multicast group (see MulticastMeta for the two delivery modes).
// Destinations must be distinct routers of the mesh; a destination with
// no endpoint attached cannot absorb a copy and is counted as dropped
// rather than wedging the worm. The group's visit order is the
// canonical column-snake path over the destination set, independent of
// the order dsts was passed in.
func (e *Endpoint) SendMulti(dsts []Addr, payload []uint16) (*MulticastMeta, error) {
	if len(dsts) == 0 {
		return nil, fmt.Errorf("noc: empty multicast destination set")
	}
	seen := make(map[Addr]bool, len(dsts))
	for _, d := range dsts {
		if err := e.checkSend(d, payload); err != nil {
			return nil, err
		}
		if seen[d] {
			return nil, fmt.Errorf("noc: duplicate multicast destination %s", d)
		}
		seen[d] = true
	}
	g := &MulticastMeta{
		Src:          e.addr,
		CreatedCycle: e.clk.Cycle(),
		Path:         e.net.pathMcast,
	}
	for _, d := range MulticastPath(dsts) {
		if e.net.endpoints[d] == nil {
			g.Dropped++
			continue
		}
		g.Dsts = append(g.Dsts, d)
	}
	prev := e.addr
	for i, d := range g.Dsts {
		m := e.net.allocMeta(e, d, len(payload))
		m.MC, m.MCIndex = g, i
		if g.Path {
			m.Hops = HopCount(prev, d)
			prev = d
		}
		g.Legs = append(g.Legs, m)
	}
	if len(g.Legs) > 0 {
		g.ID = g.Legs[0].ID
	}
	sh := &e.net.shards[e.dom]
	sh.mcGroups++
	sh.mcDropped += uint64(g.Dropped)
	if g.Path {
		if len(g.Legs) > 0 {
			e.stagePacket(g.Legs[0], g.Dsts[0], payload, false)
		}
	} else {
		for i := range g.Legs {
			e.stagePacket(g.Legs[i], g.Dsts[i], payload, false)
		}
	}
	return g, nil
}

// MulticastPath orders a destination set into the canonical visit path
// of path-based multicast: a column-snake — columns west to east, rows
// climbing on even columns and descending on odd ones — so consecutive
// stops stay close on the mesh and the order is a deterministic
// function of the set alone. The input slice is not modified.
func MulticastPath(dsts []Addr) []Addr {
	path := make([]Addr, len(dsts))
	copy(path, dsts)
	sort.Slice(path, func(i, j int) bool {
		a, b := path[i], path[j]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.X%2 == 0 {
			return a.Y < b.Y
		}
		return a.Y > b.Y
	})
	return path
}

// Clock returns the endpoint's clock domain (the attached router's, or
// the owner's when built with NewEndpointFor).
func (e *Endpoint) Clock() *sim.Clock { return e.clk }

// Recv pops the oldest fully received packet, reporting false when none
// is pending.
func (e *Endpoint) Recv() (Packet, bool) {
	if len(e.rxDone) == 0 {
		return Packet{}, false
	}
	p := e.rxDone[0]
	e.rxDone = e.rxDone[1:]
	return p, true
}

// Pending reports how many received packets await Recv.
func (e *Endpoint) Pending() int { return len(e.rxDone) }

// QueuedFlits reports how many flits sit in the committed injection
// queue (backpressure signal for traffic generators).
func (e *Endpoint) QueuedFlits() int { return len(e.txq) }

// Sent and Received report completed packet counts.
func (e *Endpoint) Sent() uint64     { return e.sent }
func (e *Endpoint) Received() uint64 { return e.received }

// Name implements sim.Component.
func (e *Endpoint) Name() string { return fmt.Sprintf("endpoint%s", e.addr) }

// Eval implements sim.Component.
func (e *Endpoint) Eval() {
	evalNow := e.clk.Cycle() + 1
	e.popped = 0
	if st := e.snd.link.stream; st.isLinked(evalNow) {
		if st.doneAt == evalNow {
			// Completion of the flit the router pulled last cycle: the
			// same bookkeeping the stepped accepted() callback runs, on
			// exactly the cycle it would run it.
			st.doneAt = 0
			tf := e.txq[0]
			if tf.header {
				if m := e.net.Meta(tf.f.Pkt); m != nil {
					m.InjectCycle = e.clk.Cycle()
				}
			}
			if tf.tail {
				e.sent++
			}
			e.popped++
			if len(e.txq) > 1 {
				st.nextAccept = evalNow + 1
				st.rcvSelf.WakeAt(evalNow + 1)
			} else {
				st.unlinkAt(evalNow)
				e.snd.link.Tx.Set(false)
			}
		}
	} else {
		e.snd.eval(
			evalNow,
			func() bool { return len(e.txq)-e.popped > 0 },
			func() Flit { return e.txq[e.popped].f },
			func() {
				tf := e.txq[e.popped]
				if tf.header {
					if m := e.net.Meta(tf.f.Pkt); m != nil {
						m.InjectCycle = e.clk.Cycle()
					}
				}
				if tf.tail {
					e.sent++
				}
				e.popped++
			},
		)
	}
	if st := e.rcv.link.stream; st.isLinked(evalNow) {
		st.receiverTick(evalNow)
	} else {
		e.rcv.eval(
			func() bool { return true }, // endpoints sink at link rate
			e.assemble,
		)
	}
}

func (e *Endpoint) assemble(fl Flit) {
	switch e.rxPhase {
	case phaseHeader:
		e.rxMeta = e.net.Meta(fl.Pkt)
		e.rxPayload = e.rxPayload[:0]
		e.rxPhase = phaseSize
	case phaseSize:
		e.rxRemaining = int(fl.Data)
		e.rxPhase = phasePayload
		if e.rxRemaining == 0 {
			e.complete()
		}
	case phasePayload:
		e.rxPayload = append(e.rxPayload, fl.Data)
		e.rxRemaining--
		if e.rxRemaining == 0 {
			e.complete()
		}
	}
}

func (e *Endpoint) complete() {
	payload := make([]uint16, len(e.rxPayload))
	copy(payload, e.rxPayload)
	var src Addr
	if m := e.rxMeta; m != nil {
		src = m.Src
		e.net.packetDelivered(e, m)
		if g := m.MC; g != nil && g.Path && m.MCIndex+1 < len(g.Dsts) {
			// Path-based multicast: this endpoint was an intermediate
			// stop. Absorb the copy (staged below like any delivery) and
			// re-inject the payload towards the next destination on the
			// path, under the next leg's pre-allocated metadata.
			next := m.MCIndex + 1
			e.stagePacket(g.Legs[next], g.Dsts[next], payload, true)
		}
	}
	e.stRxDone = append(e.stRxDone, Packet{Src: src, Dst: e.addr, Payload: payload, Meta: e.rxMeta})
	e.rxPhase = phaseHeader
	e.received++
	e.clk.Wake(e.owner)
}

// Idle implements sim.Idler. An endpoint may sleep when its injection
// queue is empty (committed and staged), both link handshakes are at
// rest and no packet is mid-reassembly — or when the busy side is a
// streaming link, whose transfers are scheduled events rather than
// per-cycle handshakes. It is woken by Send (staged work), by the
// rising tx of the link from its router (watched in NewEndpoint), or by
// the wakes its links' streams arm for each scheduled transfer.
func (e *Endpoint) Idle() bool {
	if len(e.stSend) != 0 || len(e.stFwd) != 0 {
		return false
	}
	nextEval := e.clk.Cycle() + 1
	if !e.snd.link.stream.isLinked(nextEval) && (len(e.txq) != 0 || e.snd.busy) {
		return false
	}
	if !e.rcv.link.stream.isLinked(nextEval) &&
		(e.rcv.ackHigh || e.rcv.link.Tx.Get() || e.rxPhase != phaseHeader) {
		return false
	}
	return true
}

// Commit implements sim.Component.
func (e *Endpoint) Commit() {
	e.snd.commit()
	e.rcv.commit()
	if e.popped > 0 {
		e.txq = e.txq[e.popped:]
		e.popped = 0
	}
	// Forwarded multicast legs enqueue ahead of same-cycle Sends: a
	// fixed merge order, so the txq is independent of the order the
	// kernel evaluated the endpoint and its owner this cycle.
	if len(e.stFwd) > 0 {
		e.txq = append(e.txq, e.stFwd...)
		e.stFwd = e.stFwd[:0]
	}
	if len(e.stSend) > 0 {
		e.txq = append(e.txq, e.stSend...)
		e.stSend = e.stSend[:0]
	}
	if len(e.stRxDone) > 0 {
		e.rxDone = append(e.rxDone, e.stRxDone...)
		e.stRxDone = e.stRxDone[:0]
	}
}

package noc

import "testing"

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestFifoWrapAround drives a depth-3 fifo through several full
// revolutions of its circular storage with pushes and pops staggered so
// head crosses the slot boundary in every phase, checking FIFO order
// and the Len/Free/At invariants after every edge.
func TestFifoWrapAround(t *testing.T) {
	f := newFifo(3)
	next := uint16(0) // next value to push
	want := uint16(0) // next value expected at the head
	for step := 0; step < 50; step++ {
		if f.Free() > 0 {
			f.StagePush(Flit{Data: next})
			next++
		}
		if f.Len() > 0 && step%3 != 0 { // pop on 2 of 3 steps: occupancy swings full<->empty
			if got := f.Head(); got.Data != want {
				t.Fatalf("step %d: head = %d, want %d", step, got.Data, want)
			}
			f.StagePop()
			want++
		}
		f.Commit()
		if f.Len()+f.Free() != f.Cap() {
			t.Fatalf("step %d: Len %d + Free %d != Cap %d", step, f.Len(), f.Free(), f.Cap())
		}
		for i := 0; i < f.Len(); i++ {
			if got := f.At(i).Data; got != want+uint16(i) {
				t.Fatalf("step %d: At(%d) = %d, want %d", step, i, got, want+uint16(i))
			}
		}
	}
	if next == want {
		t.Fatal("test never held data in the fifo")
	}
}

// TestFifoSimultaneousPushPop is the streaming steady state: a buffer
// pops its head and accepts a new flit on the same edge. Commit
// applies the pop before the push, so with one free slot the sequence
// sustains forever and the push lands behind the surviving flits.
// A push needs *committed* free space — a staged pop does not free a
// slot for a same-edge push; that remains a panic (receivers gate on
// Free(), which reads committed state, so the router never does this).
func TestFifoSimultaneousPushPop(t *testing.T) {
	f := newFifo(2)
	f.StagePush(Flit{Data: 1})
	f.Commit()
	for v := uint16(2); v <= 6; v++ {
		f.StagePop()
		f.StagePush(Flit{Data: v})
		f.Commit()
		if f.Len() != 1 || f.At(0).Data != v {
			t.Fatalf("after push %d: len %d, head %d", v, f.Len(), f.At(0).Data)
		}
	}

	full := newFifo(2)
	full.StagePush(Flit{Data: 1})
	full.Commit()
	full.StagePush(Flit{Data: 2})
	full.Commit()
	full.StagePop()
	mustPanic(t, "push into full fifo with staged pop", func() { full.StagePush(Flit{Data: 3}) })
}

// TestFifoStagingPanics: the staged-operation preconditions are
// programming errors and must fail loudly, not corrupt the buffer.
func TestFifoStagingPanics(t *testing.T) {
	full := newFifo(1)
	full.StagePush(Flit{Data: 9})
	full.Commit()
	mustPanic(t, "push into full fifo", func() { full.StagePush(Flit{Data: 1}) })

	f := newFifo(2)
	f.StagePush(Flit{Data: 1})
	mustPanic(t, "double push", func() { f.StagePush(Flit{Data: 2}) })

	empty := newFifo(2)
	mustPanic(t, "pop from empty fifo", func() { empty.StagePop() })

	g := newFifo(2)
	g.StagePush(Flit{Data: 1})
	g.Commit()
	g.StagePop()
	mustPanic(t, "double pop", func() { g.StagePop() })

	mustPanic(t, "At past Len", func() { g.At(1) })
	mustPanic(t, "negative At", func() { g.At(-1) })
	mustPanic(t, "Head of empty fifo", func() { empty.Head() })
}

// TestFifoStagedOpsInvisibleUntilCommit: reads between staging and
// Commit must observe the pre-edge state — the register semantics the
// router's Eval phase depends on.
func TestFifoStagedOpsInvisibleUntilCommit(t *testing.T) {
	f := newFifo(2)
	f.StagePush(Flit{Data: 5})
	if f.Len() != 0 || f.Free() != 2 {
		t.Fatalf("staged push visible before Commit: Len %d Free %d", f.Len(), f.Free())
	}
	f.Commit()
	f.StagePop()
	if f.Len() != 1 || f.Head().Data != 5 {
		t.Fatalf("staged pop visible before Commit: Len %d", f.Len())
	}
	f.Commit()
	if f.Len() != 0 {
		t.Fatalf("pop did not apply: Len %d", f.Len())
	}
}

package noc

// Port indexes the five router ports of Figure 2.
type Port int

// Router ports. Local connects the router to its IP core.
const (
	East Port = iota
	West
	North
	South
	Local
	numPorts
)

var portNames = [...]string{"E", "W", "N", "S", "L"}

// String returns the single-letter port name used in Figure 2.
func (p Port) String() string {
	if p < 0 || int(p) >= len(portNames) {
		return "?"
	}
	return portNames[p]
}

// RoutingFunc decides the output port a packet takes at router `here`
// towards destination dst, given the input port it arrived on. It must
// be deterministic and deadlock-free on a mesh.
type RoutingFunc func(here, dst Addr, in Port) Port

// RouteXY is the deterministic XY algorithm the paper employs: correct
// the X coordinate first, then Y, then deliver locally. Being
// dimension-ordered it is deadlock-free on a mesh.
func RouteXY(here, dst Addr, _ Port) Port {
	switch {
	case dst.X > here.X:
		return East
	case dst.X < here.X:
		return West
	case dst.Y > here.Y:
		return North
	case dst.Y < here.Y:
		return South
	default:
		return Local
	}
}

// RouteYX corrects Y before X. It is also dimension-ordered and
// deadlock-free; it exists for the routing-algorithm ablation bench.
func RouteYX(here, dst Addr, _ Port) Port {
	switch {
	case dst.Y > here.Y:
		return North
	case dst.Y < here.Y:
		return South
	case dst.X > here.X:
		return East
	case dst.X < here.X:
		return West
	default:
		return Local
	}
}

// RouteWestFirst is the partially adaptive west-first turn-model
// algorithm: any westward correction happens first; afterwards the
// packet may move east/north/south, preferring the dimension with the
// larger remaining distance. Used in the routing ablation.
func RouteWestFirst(here, dst Addr, _ Port) Port {
	if dst.X < here.X {
		return West
	}
	dx, dy := dst.X-here.X, dst.Y-here.Y
	switch {
	case dx == 0 && dy == 0:
		return Local
	case dy == 0:
		return East
	case dx == 0 && dy > 0:
		return North
	case dx == 0:
		return South
	case dx >= abs(dy):
		return East
	case dy > 0:
		return North
	default:
		return South
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// HopCount is the number of routers on the minimal XY path from src to
// dst, source and target included — the "n" of the paper's latency
// formula.
func HopCount(src, dst Addr) int {
	return abs(dst.X-src.X) + abs(dst.Y-src.Y) + 1
}

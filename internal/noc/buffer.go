package noc

// fifo is the circular input buffer of a router port (§2.1: "The
// inserted buffers work as circular FIFOs", 2 flits deep in MultiNoC).
//
// Mutations are staged and applied on Commit so that all router logic
// observes register semantics: a push staged this cycle is not visible
// to reads until the next cycle, matching a FIFO with registered flags.
type fifo struct {
	slots []Flit
	head  int
	n     int

	stPush  Flit
	hasPush bool
	stPop   bool
}

func newFifo(depth int) *fifo { return &fifo{slots: make([]Flit, depth)} }

// Len reports the committed number of buffered flits.
func (f *fifo) Len() int { return f.n }

// Free reports the committed number of empty slots.
func (f *fifo) Free() int { return len(f.slots) - f.n }

// Cap reports the buffer depth.
func (f *fifo) Cap() int { return len(f.slots) }

// Head returns the oldest buffered flit. It panics when empty; callers
// guard with Len.
func (f *fifo) Head() Flit { return f.At(0) }

// At returns the i-th oldest buffered flit.
func (f *fifo) At(i int) Flit {
	if i < 0 || i >= f.n {
		panic("noc: fifo index out of range")
	}
	return f.slots[(f.head+i)%len(f.slots)]
}

// StagePush schedules fl to enter the buffer at the next clock edge. At
// most one push may be staged per cycle and only when Free() > 0.
func (f *fifo) StagePush(fl Flit) {
	if f.hasPush {
		panic("noc: double push staged on fifo")
	}
	if f.Free() == 0 {
		panic("noc: push staged on full fifo")
	}
	f.stPush, f.hasPush = fl, true
}

// StagePop schedules removal of the head flit at the next clock edge.
func (f *fifo) StagePop() {
	if f.stPop {
		panic("noc: double pop staged on fifo")
	}
	if f.n == 0 {
		panic("noc: pop staged on empty fifo")
	}
	f.stPop = true
}

// Commit applies the staged operations.
func (f *fifo) Commit() {
	if !f.stPop && !f.hasPush {
		return
	}
	if f.stPop {
		f.head = (f.head + 1) % len(f.slots)
		f.n--
		f.stPop = false
	}
	if f.hasPush {
		f.slots[(f.head+f.n)%len(f.slots)] = f.stPush
		f.n++
		f.hasPush = false
	}
}

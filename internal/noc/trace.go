package noc

import (
	"repro/internal/sim"
	"repro/internal/vcd"
)

// AttachVCD registers waveform probes for every port of the given
// routers: the tx/ack handshake bits and the data value of each
// connected input link. Call before simulating; the attachment
// installs its own probes on the routers' clock domains. Begin/Flush
// remain the caller's responsibility.
//
// On a sharded network each traced router's probe runs in its own
// domain. Every wire a router's probe samples (including the mirror
// sides of cross-domain links) lives in that domain, so single-domain
// traces are parallel-safe and byte-identical across every kernel
// mode. Tracing routers from several domains into one Writer is
// meaningful only for lockstep runs: a parallel run would interleave
// the domains' Tick calls nondeterministically.
func AttachVCD(net *Network, w *vcd.Writer, addrs ...Addr) {
	type probe struct {
		link *Link
		tx   *vcd.Signal
		ack  *vcd.Signal
		data *vcd.Signal
	}
	byClk := make(map[*sim.Clock][]probe)
	var clks []*sim.Clock // attachment order, for deterministic setup
	for _, a := range addrs {
		r := net.Router(a)
		if r == nil {
			continue
		}
		for p := Port(0); p < numPorts; p++ {
			l := r.in[p].rcv.link
			if l == nil {
				continue
			}
			// A streaming link freezes its wires, which would corrupt the
			// dump; sampled links run the stepped handshake so every
			// tx/ack/data edge appears exactly as the hardware's would.
			// Links of the traced router that no probe samples (its
			// outputs towards untraced neighbours) may keep streaming:
			// cycle timing is identical either way.
			if l.stream != nil {
				l.stream.on = false
			}
			base := "r" + a.String() + "_" + p.String()
			if _, seen := byClk[r.clk]; !seen {
				clks = append(clks, r.clk)
			}
			byClk[r.clk] = append(byClk[r.clk], probe{
				link: l,
				tx:   w.Signal(base+"_tx", 1),
				ack:  w.Signal(base+"_ack", 1),
				data: w.Signal(base+"_data", net.cfg.FlitBits),
			})
		}
	}
	for _, clk := range clks {
		probes := byClk[clk]
		sample := func(cycle uint64) {
			for _, p := range probes {
				b2u := func(b bool) uint64 {
					if b {
						return 1
					}
					return 0
				}
				p.tx.Set(b2u(p.link.Tx.Get()))
				p.ack.Set(b2u(p.link.Ack.Get()))
				p.data.Set(uint64(p.link.Data.Get().Data))
			}
			// Tick errors only occur before Begin; probes start after.
			_ = w.Tick(cycle)
		}
		clk.Probe(sample)
		// Time warping skips cycles only when no wire can change, so a
		// skipped span contains no VCD change records by construction;
		// the interval hook re-samples the frozen signals at the span's
		// end, which emits nothing, keeping the dump bit-identical to a
		// dense (or warp-off) run while documenting the ProbeRange
		// obligation for per-cycle observers.
		clk.ProbeRange(func(from, to uint64) { sample(to) })
	}
}

package noc

import "fmt"

// Service identifies one of the nine packet formats the Hermes NoC in
// MultiNoC supports (§2.1). The numbering follows the paper's list.
type Service uint8

// The nine services, in the paper's order.
const (
	SvcReadMem     Service = 1 // request data from a memory
	SvcReadReturn  Service = 2 // response to a read request
	SvcWriteMem    Service = 3 // store data into a memory
	SvcActivate    Service = 4 // start a processor at address 0
	SvcPrintf      Service = 5 // processor -> host output
	SvcScanf       Service = 6 // processor -> host input request
	SvcScanfReturn Service = 7 // host -> processor input data
	SvcNotify      Service = 8 // wake a processor blocked on wait
	SvcWait        Service = 9 // registration of a blocked processor
)

var serviceNames = map[Service]string{
	SvcReadMem:     "read from memory",
	SvcReadReturn:  "read return",
	SvcWriteMem:    "write in memory",
	SvcActivate:    "activate processor",
	SvcPrintf:      "printf",
	SvcScanf:       "scanf",
	SvcScanfReturn: "scanf return",
	SvcNotify:      "notify",
	SvcWait:        "wait",
}

// String returns the paper's name for the service.
func (s Service) String() string {
	if n, ok := serviceNames[s]; ok {
		return n
	}
	return fmt.Sprintf("service(%d)", uint8(s))
}

// Message is the decoded form of a service packet. Which fields are
// meaningful depends on Svc; see the layout table in DESIGN.md §4.2.
type Message struct {
	Svc Service
	// Src is the mesh address of the originating IP, carried in the
	// payload so that replies can be routed.
	Src Addr
	// Addr is the memory address for read/write/read-return.
	Addr uint16
	// Count is the word count of a read request.
	Count int
	// Words carries 16-bit data for write/read-return/scanf-return.
	Words []uint16
	// Bytes carries printf text.
	Bytes []byte
	// Proc is the processor number for notify/wait.
	Proc uint16
}

// maxWordsPerPacket limits chunked read/write payloads so a packet's
// size flit stays expressible with 8-bit flits: 255 payload flits
// leaves room for svc+src+addr (4 flits) plus 125 words of 2 flits.
const maxWordsPerPacket = 125

// MaxServiceWords is the largest word count Encode accepts in a single
// read-return or write packet. Longer transfers are split by callers
// (see SplitWords).
const MaxServiceWords = maxWordsPerPacket

// Encode flattens the message into packet payload flits (byte-per-flit
// layout; works for all supported flit widths).
func (m *Message) Encode() ([]uint16, error) {
	p := []uint16{uint16(m.Svc), m.Src.Encode()}
	switch m.Svc {
	case SvcReadMem:
		if m.Count < 1 || m.Count > maxWordsPerPacket {
			return nil, fmt.Errorf("noc: read count %d out of range [1,%d]", m.Count, maxWordsPerPacket)
		}
		p = append(p, m.Addr>>8, m.Addr&0xFF, uint16(m.Count))
	case SvcReadReturn, SvcWriteMem:
		if len(m.Words) == 0 || len(m.Words) > maxWordsPerPacket {
			return nil, fmt.Errorf("noc: %s with %d words, want [1,%d]", m.Svc, len(m.Words), maxWordsPerPacket)
		}
		p = append(p, m.Addr>>8, m.Addr&0xFF)
		for _, w := range m.Words {
			p = append(p, w>>8, w&0xFF)
		}
	case SvcActivate, SvcScanf:
		// svc + src only
	case SvcPrintf:
		if len(m.Bytes) > 250 {
			return nil, fmt.Errorf("noc: printf of %d bytes exceeds 250", len(m.Bytes))
		}
		p = append(p, uint16(len(m.Bytes)))
		for _, b := range m.Bytes {
			p = append(p, uint16(b))
		}
	case SvcScanfReturn:
		if len(m.Words) != 1 {
			return nil, fmt.Errorf("noc: scanf return carries %d words, want 1", len(m.Words))
		}
		p = append(p, m.Words[0]>>8, m.Words[0]&0xFF)
	case SvcNotify, SvcWait:
		p = append(p, m.Proc)
	default:
		return nil, fmt.Errorf("noc: unknown service %d", m.Svc)
	}
	return p, nil
}

// DecodeMessage parses a received service packet payload.
func DecodeMessage(payload []uint16) (*Message, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("noc: service packet of %d flits too short", len(payload))
	}
	m := &Message{Svc: Service(payload[0]), Src: DecodeAddr(payload[1])}
	rest := payload[2:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("noc: %s packet truncated: %d payload flits", m.Svc, len(payload))
		}
		return nil
	}
	switch m.Svc {
	case SvcReadMem:
		if err := need(3); err != nil {
			return nil, err
		}
		m.Addr = rest[0]<<8 | rest[1]&0xFF
		m.Count = int(rest[2])
	case SvcReadReturn, SvcWriteMem:
		if err := need(4); err != nil {
			return nil, err
		}
		m.Addr = rest[0]<<8 | rest[1]&0xFF
		data := rest[2:]
		if len(data)%2 != 0 {
			return nil, fmt.Errorf("noc: %s packet with odd data flit count %d", m.Svc, len(data))
		}
		for i := 0; i < len(data); i += 2 {
			m.Words = append(m.Words, data[i]<<8|data[i+1]&0xFF)
		}
	case SvcActivate, SvcScanf:
		// nothing further
	case SvcPrintf:
		if err := need(1); err != nil {
			return nil, err
		}
		n := int(rest[0])
		if err := need(1 + n); err != nil {
			return nil, err
		}
		for _, v := range rest[1 : 1+n] {
			m.Bytes = append(m.Bytes, byte(v))
		}
	case SvcScanfReturn:
		if err := need(2); err != nil {
			return nil, err
		}
		m.Words = []uint16{rest[0]<<8 | rest[1]&0xFF}
	case SvcNotify, SvcWait:
		if err := need(1); err != nil {
			return nil, err
		}
		m.Proc = rest[0]
	default:
		return nil, fmt.Errorf("noc: unknown service %d", payload[0])
	}
	return m, nil
}

// SendMessage encodes m and stages it on the endpoint.
func (e *Endpoint) SendMessage(dst Addr, m *Message) (*PacketMeta, error) {
	if m.Src == (Addr{}) {
		m.Src = e.addr
	}
	payload, err := m.Encode()
	if err != nil {
		return nil, err
	}
	return e.Send(dst, payload)
}

// RecvMessage pops and decodes the oldest received packet. It reports
// false when no packet is pending and an error when the packet is not a
// well-formed service packet.
func (e *Endpoint) RecvMessage() (*Message, bool, error) {
	p, ok := e.Recv()
	if !ok {
		return nil, false, nil
	}
	m, err := DecodeMessage(p.Payload)
	if err != nil {
		return nil, true, err
	}
	return m, true, nil
}

// WordSpan is a contiguous run of 16-bit words starting at Addr.
type WordSpan struct {
	Addr  uint16
	Words []uint16
}

// SplitWords chunks a word transfer into service-packet-sized spans.
func SplitWords(addr uint16, words []uint16) []WordSpan {
	var out []WordSpan
	for len(words) > 0 {
		n := len(words)
		if n > maxWordsPerPacket {
			n = maxWordsPerPacket
		}
		out = append(out, WordSpan{Addr: addr, Words: words[:n]})
		addr += uint16(n)
		words = words[n:]
	}
	return out
}

package noc

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/vcd"
)

// build constructs a network plus endpoints on every router.
func build(t testing.TB, cfg Config) (*sim.Clock, *Network) {
	t.Helper()
	clk := sim.NewClock()
	net, err := New(clk, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for x := 0; x < cfg.Width; x++ {
		for y := 0; y < cfg.Height; y++ {
			if _, err := net.NewEndpoint(Addr{x, y}); err != nil {
				t.Fatalf("NewEndpoint: %v", err)
			}
		}
	}
	return clk, net
}

func TestAddrEncodeDecode(t *testing.T) {
	if err := quick.Check(func(x, y uint8) bool {
		a := Addr{X: int(x % 16), Y: int(y % 16)}
		return DecodeAddr(a.Encode()) == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHopCount(t *testing.T) {
	cases := []struct {
		src, dst Addr
		want     int
	}{
		{Addr{0, 0}, Addr{0, 0}, 1},
		{Addr{0, 0}, Addr{1, 0}, 2},
		{Addr{0, 0}, Addr{0, 1}, 2},
		{Addr{0, 0}, Addr{3, 4}, 8},
		{Addr{4, 4}, Addr{0, 0}, 9},
	}
	for _, c := range cases {
		if got := HopCount(c.src, c.dst); got != c.want {
			t.Errorf("HopCount(%s,%s) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	clk := sim.NewClock()
	bad := []Config{
		{},
		func() Config { c := Defaults(0, 2); return c }(),
		func() Config { c := Defaults(17, 2); return c }(),
		func() Config { c := Defaults(2, 2); c.FlitBits = 7; return c }(),
		func() Config { c := Defaults(2, 2); c.BufDepth = 0; return c }(),
		func() Config { c := Defaults(2, 2); c.RouteCycles = 2; return c }(),
		func() Config { c := Defaults(2, 2); c.Routing = nil; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(clk, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(clk, Defaults(2, 2)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	clk, net := build(t, Defaults(2, 2))
	src, dst := Addr{0, 0}, Addr{1, 1}
	payload := []uint16{0xA, 0xB, 0xC}
	if _, err := net.Endpoint(src).Send(dst, payload); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return net.Endpoint(dst).Pending() > 0 }, 10000); err != nil {
		t.Fatal(err)
	}
	p, ok := net.Endpoint(dst).Recv()
	if !ok {
		t.Fatal("no packet")
	}
	if p.Src != src {
		t.Errorf("src = %s, want %s", p.Src, src)
	}
	if len(p.Payload) != len(payload) {
		t.Fatalf("payload len = %d, want %d", len(p.Payload), len(payload))
	}
	for i := range payload {
		if p.Payload[i] != payload[i] {
			t.Errorf("payload[%d] = %#x, want %#x", i, p.Payload[i], payload[i])
		}
	}
}

func TestSelfDelivery(t *testing.T) {
	// A packet addressed to the sender's own router must come back via
	// the Local port.
	clk, net := build(t, Defaults(2, 2))
	a := Addr{0, 1}
	if _, err := net.Endpoint(a).Send(a, []uint16{42}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return net.Endpoint(a).Pending() > 0 }, 10000); err != nil {
		t.Fatal(err)
	}
	p, _ := net.Endpoint(a).Recv()
	if p.Payload[0] != 42 {
		t.Errorf("payload = %d, want 42", p.Payload[0])
	}
}

func TestPayloadMasking(t *testing.T) {
	// 8-bit flits must truncate payload values to a byte.
	clk, net := build(t, Defaults(2, 2))
	src, dst := Addr{0, 0}, Addr{1, 0}
	if _, err := net.Endpoint(src).Send(dst, []uint16{0x1FF}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return net.Endpoint(dst).Pending() > 0 }, 10000); err != nil {
		t.Fatal(err)
	}
	p, _ := net.Endpoint(dst).Recv()
	if p.Payload[0] != 0xFF {
		t.Errorf("payload = %#x, want 0xFF", p.Payload[0])
	}
}

func TestMaxPayloadRejected(t *testing.T) {
	_, net := build(t, Defaults(2, 2))
	big := make([]uint16, MaxPayload(8)+1)
	if _, err := net.Endpoint(Addr{0, 0}).Send(Addr{1, 1}, big); err == nil {
		t.Error("oversized payload accepted")
	}
	ok := make([]uint16, MaxPayload(8))
	if _, err := net.Endpoint(Addr{0, 0}).Send(Addr{1, 1}, ok); err != nil {
		t.Errorf("max payload rejected: %v", err)
	}
}

// TestLatencyFormula is experiment E1's core assertion: on an idle
// network, measured latency must match the paper's model
// (sum Ri + P) x 2 = 14*hops + 2*P within a small additive constant.
func TestLatencyFormula(t *testing.T) {
	cfg := Defaults(8, 8)
	for _, hops := range []int{1, 2, 4, 8} {
		for _, pay := range []int{4, 16, 64} {
			clk, net := build(t, cfg)
			src := Addr{0, 0}
			dst := Addr{hops - 1, 0}
			meta, err := net.Endpoint(src).Send(dst, make([]uint16, pay))
			if err != nil {
				t.Fatal(err)
			}
			if err := clk.RunUntil(func() bool { return meta.EjectCycle != 0 }, 100000); err != nil {
				t.Fatalf("hops=%d pay=%d: %v", hops, pay, err)
			}
			got := meta.NetworkLatency()
			want := FormulaLatency(cfg, HopCount(src, dst), pay+2)
			diff := int64(got) - int64(want)
			if diff < -4 || diff > 4 {
				t.Errorf("hops=%d pay=%d: measured %d vs formula %d (diff %d)",
					HopCount(src, dst), pay, got, want, diff)
			}
		}
	}
}

// TestTwoCyclePerFlitStreaming checks the handshake cadence directly:
// doubling the payload must add exactly 2 cycles per extra flit.
func TestTwoCyclePerFlitStreaming(t *testing.T) {
	cfg := Defaults(4, 1)
	measure := func(pay int) uint64 {
		clk, net := build(t, cfg)
		meta, err := net.Endpoint(Addr{0, 0}).Send(Addr{3, 0}, make([]uint16, pay))
		if err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntil(func() bool { return meta.EjectCycle != 0 }, 100000); err != nil {
			t.Fatal(err)
		}
		return meta.NetworkLatency()
	}
	l8, l16 := measure(8), measure(16)
	if l16-l8 != 16 {
		t.Errorf("8 extra flits cost %d cycles, want 16", l16-l8)
	}
}

func TestWormholeBlocking(t *testing.T) {
	// Two packets contending for the same output must serialize, and
	// both must still arrive intact (round-robin arbitration).
	clk, net := build(t, Defaults(3, 3))
	dst := Addr{2, 1}
	m1, err := net.Endpoint(Addr{0, 1}).Send(dst, seq(40))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := net.Endpoint(Addr{1, 0}).Send(dst, seq(40))
	if err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return m1.EjectCycle != 0 && m2.EjectCycle != 0 }, 100000); err != nil {
		t.Fatal(err)
	}
	ep := net.Endpoint(dst)
	for i := 0; i < 2; i++ {
		p, ok := ep.Recv()
		if !ok {
			t.Fatal("missing packet")
		}
		for j, v := range p.Payload {
			if v != uint16(j&0xFF) {
				t.Fatalf("packet %d corrupted at flit %d: %#x", i, j, v)
			}
		}
	}
	// The two tails cannot eject closer than the streaming time of one
	// packet, since the shared link serializes them.
	d := int64(m2.EjectCycle) - int64(m1.EjectCycle)
	if d < 0 {
		d = -d
	}
	if d < 40 {
		t.Errorf("contending packets overlapped: eject delta %d < 40", d)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	// Every endpoint sends to every other endpoint; all packets must
	// arrive with correct source attribution (XY is deadlock-free).
	cfg := Defaults(4, 4)
	clk, net := build(t, cfg)
	want := 0
	for sx := 0; sx < 4; sx++ {
		for sy := 0; sy < 4; sy++ {
			for dx := 0; dx < 4; dx++ {
				for dy := 0; dy < 4; dy++ {
					if sx == dx && sy == dy {
						continue
					}
					src := Addr{sx, sy}
					payload := []uint16{uint16(sx), uint16(sy), uint16(dx), uint16(dy)}
					if _, err := net.Endpoint(src).Send(Addr{dx, dy}, payload); err != nil {
						t.Fatal(err)
					}
					want++
				}
			}
		}
	}
	if err := clk.RunUntil(func() bool { return int(net.Delivered()) == want }, 2_000_000); err != nil {
		t.Fatalf("delivered %d/%d: %v", net.Delivered(), want, err)
	}
	got := 0
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			ep := net.Endpoint(Addr{x, y})
			for {
				p, ok := ep.Recv()
				if !ok {
					break
				}
				got++
				if int(p.Payload[2]) != x || int(p.Payload[3]) != y {
					t.Errorf("misdelivered: payload says dst (%d,%d), arrived at (%d,%d)",
						p.Payload[2], p.Payload[3], x, y)
				}
				if p.Src != (Addr{int(p.Payload[0]), int(p.Payload[1])}) {
					t.Errorf("src mismatch: %s vs payload (%d,%d)", p.Src, p.Payload[0], p.Payload[1])
				}
			}
		}
	}
	if got != want {
		t.Errorf("received %d packets, want %d", got, want)
	}
}

func TestRoutingAlgorithms(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   RoutingFunc
	}{{"XY", RouteXY}, {"YX", RouteYX}, {"WestFirst", RouteWestFirst}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Defaults(4, 4)
			cfg.Routing = tc.fn
			clk, net := build(t, cfg)
			m, err := net.Endpoint(Addr{3, 3}).Send(Addr{0, 0}, []uint16{1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := clk.RunUntil(func() bool { return m.EjectCycle != 0 }, 100000); err != nil {
				t.Fatal(err)
			}
			if net.Endpoint(Addr{0, 0}).Pending() != 1 {
				t.Error("packet not delivered")
			}
		})
	}
}

func TestRoutingFuncProperties(t *testing.T) {
	// Each algorithm must make progress: applying the returned direction
	// repeatedly must reach the destination (no livelock off-network).
	algos := map[string]RoutingFunc{"XY": RouteXY, "YX": RouteYX, "WestFirst": RouteWestFirst}
	for name, fn := range algos {
		if err := quick.Check(func(sx, sy, dx, dy uint8) bool {
			here := Addr{int(sx % 8), int(sy % 8)}
			dst := Addr{int(dx % 8), int(dy % 8)}
			for steps := 0; steps < 64; steps++ {
				p := fn(here, dst, Local)
				if p == Local {
					return here == dst
				}
				switch p {
				case East:
					here.X++
				case West:
					here.X--
				case North:
					here.Y++
				case South:
					here.Y--
				}
				if here.X < 0 || here.X >= 8 || here.Y < 0 || here.Y >= 8 {
					return false
				}
			}
			return false
		}, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		clk, net := build(t, Defaults(3, 3))
		r := sim.NewRand(42)
		for i := 0; i < 30; i++ {
			src := Addr{r.Intn(3), r.Intn(3)}
			dst := Addr{r.Intn(3), r.Intn(3)}
			if _, err := net.Endpoint(src).Send(dst, seq(r.Intn(20)+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := clk.RunUntil(func() bool { return net.Delivered() == 30 }, 1_000_000); err != nil {
			t.Fatal(err)
		}
		var lats []uint64
		for _, m := range net.Completed() {
			lats = append(lats, m.ID, m.InjectCycle, m.EjectCycle)
		}
		return lats
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different packet counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRouterStatsAccounting(t *testing.T) {
	clk, net := build(t, Defaults(2, 2))
	m, err := net.Endpoint(Addr{0, 0}).Send(Addr{1, 1}, seq(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return m.EjectCycle != 0 }, 100000); err != nil {
		t.Fatal(err)
	}
	// Drain the final ack so the last router observes its tail-flit
	// acceptance before counters are read.
	clk.Run(2)
	// XY path: (0,0) -> East -> (1,0) -> North -> (1,1) -> Local.
	flits := uint64(12) // 10 payload + header + size
	if got := net.Router(Addr{0, 0}).Stats().FlitsOut[East]; got != flits {
		t.Errorf("router 00 east flits = %d, want %d", got, flits)
	}
	if got := net.Router(Addr{1, 0}).Stats().FlitsOut[North]; got != flits {
		t.Errorf("router 10 north flits = %d, want %d", got, flits)
	}
	if got := net.Router(Addr{1, 1}).Stats().FlitsOut[Local]; got != flits {
		t.Errorf("router 11 local flits = %d, want %d", got, flits)
	}
	if got := net.Router(Addr{0, 1}).Stats().TotalFlits(); got != 0 {
		t.Errorf("router 01 moved %d flits, want 0", got)
	}
	for _, a := range []Addr{{0, 0}, {1, 0}, {1, 1}} {
		if g := net.Router(a).Stats().Grants; g != 1 {
			t.Errorf("router %s grants = %d, want 1", a, g)
		}
	}
}

func TestServiceRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Svc: SvcReadMem, Src: Addr{1, 0}, Addr: 0x0020, Count: 5},
		{Svc: SvcReadReturn, Src: Addr{1, 1}, Addr: 0x0400, Words: []uint16{0xDEAD, 0xBEEF}},
		{Svc: SvcWriteMem, Src: Addr{0, 0}, Addr: 0x0123, Words: []uint16{1, 2, 3, 0xFFFF}},
		{Svc: SvcActivate, Src: Addr{0, 0}},
		{Svc: SvcPrintf, Src: Addr{0, 1}, Bytes: []byte("hello world")},
		{Svc: SvcScanf, Src: Addr{1, 0}},
		{Svc: SvcScanfReturn, Src: Addr{0, 0}, Words: []uint16{0x1234}},
		{Svc: SvcNotify, Src: Addr{1, 0}, Proc: 2},
		{Svc: SvcWait, Src: Addr{0, 1}, Proc: 1},
	}
	for _, m := range msgs {
		t.Run(m.Svc.String(), func(t *testing.T) {
			payload, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeMessage(payload)
			if err != nil {
				t.Fatal(err)
			}
			if got.Svc != m.Svc || got.Src != m.Src || got.Addr != m.Addr {
				t.Errorf("header mismatch: %+v vs %+v", got, m)
			}
			if m.Svc == SvcReadMem && got.Count != m.Count {
				t.Errorf("count = %d, want %d", got.Count, m.Count)
			}
			if len(got.Words) != len(m.Words) {
				t.Fatalf("words = %v, want %v", got.Words, m.Words)
			}
			for i := range m.Words {
				if got.Words[i] != m.Words[i] {
					t.Errorf("word %d = %#x, want %#x", i, got.Words[i], m.Words[i])
				}
			}
			if string(got.Bytes) != string(m.Bytes) {
				t.Errorf("bytes = %q, want %q", got.Bytes, m.Bytes)
			}
			if got.Proc != m.Proc {
				t.Errorf("proc = %d, want %d", got.Proc, m.Proc)
			}
		})
	}
}

func TestServiceEncodingErrors(t *testing.T) {
	bad := []*Message{
		{Svc: SvcReadMem, Count: 0},
		{Svc: SvcReadMem, Count: 200},
		{Svc: SvcWriteMem},
		{Svc: SvcReadReturn, Words: make([]uint16, 200)},
		{Svc: SvcPrintf, Bytes: make([]byte, 251)},
		{Svc: SvcScanfReturn, Words: []uint16{1, 2}},
		{Svc: Service(99)},
	}
	for i, m := range bad {
		if _, err := m.Encode(); err == nil {
			t.Errorf("case %d (%s): bad message encoded", i, m.Svc)
		}
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	bad := [][]uint16{
		nil,
		{1},
		{uint16(SvcReadMem), 0x00},
		{uint16(SvcReadMem), 0x00, 0x00},
		{uint16(SvcWriteMem), 0x00, 0x00, 0x01, 0x02}, // odd data length
		{uint16(SvcPrintf), 0x00, 5, 'a'},
		{99, 0},
	}
	for i, p := range bad {
		if _, err := DecodeMessage(p); err == nil {
			t.Errorf("case %d: malformed packet decoded", i)
		}
	}
}

func TestServiceOverNetwork(t *testing.T) {
	clk, net := build(t, Defaults(2, 2))
	msg := &Message{Svc: SvcPrintf, Bytes: []byte("42\n")}
	if _, err := net.Endpoint(Addr{1, 0}).SendMessage(Addr{0, 0}, msg); err != nil {
		t.Fatal(err)
	}
	var got *Message
	err := clk.RunUntil(func() bool {
		m, ok, err := net.Endpoint(Addr{0, 0}).RecvMessage()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got = m
		}
		return ok
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Svc != SvcPrintf || string(got.Bytes) != "42\n" || got.Src != (Addr{1, 0}) {
		t.Errorf("received %+v", got)
	}
}

func TestSplitWords(t *testing.T) {
	spans := SplitWords(100, make([]uint16, 300))
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Addr != 100 || len(spans[0].Words) != 125 {
		t.Errorf("span 0: addr %d len %d", spans[0].Addr, len(spans[0].Words))
	}
	if spans[2].Addr != 350 || len(spans[2].Words) != 50 {
		t.Errorf("span 2: addr %d len %d", spans[2].Addr, len(spans[2].Words))
	}
	if SplitWords(0, nil) != nil {
		t.Error("empty split not nil")
	}
}

func TestFifoProperties(t *testing.T) {
	// The staged FIFO must behave as a queue under arbitrary
	// push/pop/commit sequences.
	if err := quick.Check(func(ops []byte) bool {
		f := newFifo(2)
		var model []uint16
		next := uint16(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if f.Free() > 0 && !f.hasPush {
					f.StagePush(Flit{Data: next})
					model = append(model, next)
					next++
				}
			case 1:
				if f.Len() > 0 && !f.stPop {
					if f.Head().Data != model[0] {
						return false
					}
					f.StagePop()
					model = model[1:]
				}
			case 2:
				f.Commit()
			}
		}
		f.Commit()
		if f.Len() != len(model) {
			return false
		}
		for i := 0; i < f.Len(); i++ {
			if f.At(i).Data != model[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEndpointDuplicate(t *testing.T) {
	clk := sim.NewClock()
	net, err := New(clk, Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewEndpoint(Addr{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewEndpoint(Addr{0, 0}); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if _, err := net.NewEndpoint(Addr{5, 5}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func seq(n int) []uint16 {
	s := make([]uint16, n)
	for i := range s {
		s[i] = uint16(i & 0xFF)
	}
	return s
}

func ExampleAddr_String() {
	fmt.Println(Addr{X: 1, Y: 0})
	// Output: 10
}

// TestStressContentIntegrity floods the mesh with random-sized,
// random-content packets under heavy contention and checks every
// payload byte survives wormhole blocking, arbitration and buffering —
// the no-loss/no-corruption invariant of the switching layer.
func TestStressContentIntegrity(t *testing.T) {
	cfg := Defaults(4, 4)
	cfg.BufDepth = 2
	clk, net := build(t, cfg)
	r := sim.NewRand(0xC0FFEE)

	type expect struct {
		src     Addr
		payload []uint16
	}
	pending := map[Addr][]expect{} // keyed by destination, in-order per (src,dst) pair
	const packets = 400
	sent := 0
	for sent < packets {
		src := Addr{r.Intn(4), r.Intn(4)}
		dst := Addr{r.Intn(4), r.Intn(4)}
		if src == dst {
			continue
		}
		n := 1 + r.Intn(30)
		payload := make([]uint16, n)
		for i := range payload {
			payload[i] = uint16(r.Intn(256))
		}
		if _, err := net.Endpoint(src).Send(dst, payload); err != nil {
			t.Fatal(err)
		}
		pending[dst] = append(pending[dst], expect{src: src, payload: payload})
		sent++
		// Interleave with simulation so queues overlap in flight.
		clk.Run(uint64(r.Intn(40)))
	}
	if err := clk.RunUntil(func() bool { return int(net.Delivered()) == packets }, 10_000_000); err != nil {
		t.Fatalf("delivered %d/%d: %v", net.Delivered(), packets, err)
	}
	got := 0
	for dst, exps := range pending {
		ep := net.Endpoint(dst)
		// Receive order per (src,dst) pair must match send order
		// (deterministic routing preserves per-pair ordering).
		bySrc := map[Addr][]expect{}
		for _, e := range exps {
			bySrc[e.src] = append(bySrc[e.src], e)
		}
		for {
			p, ok := ep.Recv()
			if !ok {
				break
			}
			got++
			q := bySrc[p.Src]
			if len(q) == 0 {
				t.Fatalf("unexpected packet %s -> %s", p.Src, dst)
			}
			e := q[0]
			bySrc[p.Src] = q[1:]
			if len(p.Payload) != len(e.payload) {
				t.Fatalf("%s->%s: length %d, want %d", p.Src, dst, len(p.Payload), len(e.payload))
			}
			for i := range e.payload {
				if p.Payload[i] != e.payload[i] {
					t.Fatalf("%s->%s: flit %d corrupted: %#x vs %#x",
						p.Src, dst, i, p.Payload[i], e.payload[i])
				}
			}
		}
		for src, q := range bySrc {
			if len(q) != 0 {
				t.Errorf("%s->%s: %d packets missing", src, dst, len(q))
			}
		}
	}
	if got != packets {
		t.Errorf("received %d, want %d", got, packets)
	}
}

// TestWideFlitDelivery exercises 16- and 32-bit flit widths end to end.
func TestWideFlitDelivery(t *testing.T) {
	for _, bits := range []int{16, 32} {
		cfg := Defaults(3, 3)
		cfg.FlitBits = bits
		clk, net := build(t, cfg)
		payload := []uint16{0xFFFF, 0x8000, 0x0001}
		m, err := net.Endpoint(Addr{0, 0}).Send(Addr{2, 2}, payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntil(func() bool { return m.EjectCycle != 0 }, 100000); err != nil {
			t.Fatalf("%d-bit: %v", bits, err)
		}
		p, _ := net.Endpoint(Addr{2, 2}).Recv()
		for i, v := range payload {
			if p.Payload[i] != v {
				t.Errorf("%d-bit flit %d: %#x, want %#x", bits, i, p.Payload[i], v)
			}
		}
	}
}

// TestVCDTraceCapturesHandshake drives one packet while tracing the
// destination router and checks the waveform contains real activity.
func TestVCDTraceCapturesHandshake(t *testing.T) {
	clk := sim.NewClock()
	net, err := New(clk, Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.NewEndpoint(Addr{0, 0})
	if _, err := net.NewEndpoint(Addr{1, 0}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := vcd.NewWriter(&sb)
	AttachVCD(net, w, Addr{1, 0})
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	m, err := src.Send(Addr{1, 0}, []uint16{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return m.EjectCycle != 0 }, 10000); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"r10_W_tx", "r10_L_tx", "$enddefinitions", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// The handshake must toggle: at least a handful of change records.
	if strings.Count(out, "#") < 6 {
		t.Errorf("suspiciously few change records:\n%s", out)
	}
}

// TestRouterStatsMatchAcrossKernels: the span-integrated router stats
// (WaitCycles, BufferedFlitCycles accumulated lazily while a router
// sleeps through its routing delay) must equal the dense per-cycle
// accumulation exactly, with and without time warping.
func TestRouterStatsMatchAcrossKernels(t *testing.T) {
	run := func(dense, warp bool) []RouterStats {
		cfg := Defaults(4, 1)
		clk := sim.NewClock()
		clk.SetActivityScheduling(!dense)
		clk.SetTimeWarp(warp)
		net, err := New(clk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := net.NewEndpoint(Addr{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.NewEndpoint(Addr{3, 0}); err != nil {
			t.Fatal(err)
		}
		// Two small packets with a quiet span between them: the second
		// send keeps a later wake armed while routers sleep mid-delay.
		m1, err := src.Send(Addr{3, 0}, []uint16{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntil(func() bool { return m1.EjectCycle != 0 }, 100000); err != nil {
			t.Fatal(err)
		}
		if _, err := src.Send(Addr{3, 0}, []uint16{2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntilQuiescent(100000); err != nil {
			t.Fatal(err)
		}
		var out []RouterStats
		for x := 0; x < cfg.Width; x++ {
			out = append(out, net.Router(Addr{X: x, Y: 0}).Stats())
		}
		return out
	}
	ref := run(true, false)
	for _, tc := range []struct {
		name        string
		dense, warp bool
	}{{"sparse-nowarp", false, false}, {"sparse-warp", false, true}} {
		got := run(tc.dense, tc.warp)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%s: router %d stats diverge:\n  dense %+v\n  got   %+v", tc.name, i, ref[i], got[i])
			}
		}
	}
}

// TestVCDTraceIdenticalUnderTimeWarp: warping over dead spans must not
// change the waveform dump — no wire can change during a skipped span,
// so the VCD output is byte-identical with warping on and off.
func TestVCDTraceIdenticalUnderTimeWarp(t *testing.T) {
	run := func(warp bool) string {
		clk := sim.NewClock()
		clk.SetTimeWarp(warp)
		net, err := New(clk, Defaults(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		src, err := net.NewEndpoint(Addr{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.NewEndpoint(Addr{1, 0}); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		w := vcd.NewWriter(&sb)
		AttachVCD(net, w, Addr{1, 0})
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		if _, err := src.Send(Addr{1, 0}, []uint16{4, 5, 6}); err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntilQuiescent(100000); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	warped, stepped := run(true), run(false)
	if warped != stepped {
		t.Fatalf("VCD dumps diverge under time warp:\nwarped:\n%s\nstepped:\n%s", warped, stepped)
	}
}

package noc

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vcd"
)

// ledger flattens the completed-packet metadata into (ID, inject,
// eject) triples keyed by packet ID. Two endpoints delivering on the
// same cycle append to Completed in active-set evaluation order, which
// may legitimately differ across kernel modes, so differential tests
// compare per-packet timing, not append order.
func ledger(net *Network) []uint64 {
	ms := append([]*PacketMeta(nil), net.Completed()...)
	sort.Slice(ms, func(a, b int) bool { return ms[a].ID < ms[b].ID })
	var lats []uint64
	for _, m := range ms {
		lats = append(lats, m.ID, m.InjectCycle, m.EjectCycle)
	}
	return lats
}

// streamRun drives a fixed random workload on a 4x4 mesh and returns
// everything observable about it: the cycle at which half the packets
// had been delivered, a full per-router stats snapshot taken at that
// moment (mid-run, while links stream and routers sleep between
// scheduled transfers), the final cycle count at quiescence, and the
// completed-packet ledger. The workload mixes payload sizes so streams
// engage, drain, hit tails and re-engage continuously.
func streamRun(t *testing.T, streaming bool) (midCycle uint64, mid []RouterStats, end uint64, lats []uint64) {
	t.Helper()
	cfg := Defaults(4, 4)
	clk, net := build(t, cfg)
	net.SetFlitStreaming(streaming)
	r := sim.NewRand(7)
	const packets = 80
	for i := 0; i < packets; i++ {
		src := Addr{r.Intn(4), r.Intn(4)}
		dst := Addr{r.Intn(4), r.Intn(4)}
		if _, err := net.Endpoint(src).Send(dst, seq(r.Intn(24)+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := clk.RunUntil(func() bool { return net.Delivered() >= packets/2 }, 1_000_000); err != nil {
		t.Fatal(err)
	}
	midCycle = clk.Cycle()
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			mid = append(mid, net.Router(Addr{x, y}).Stats())
		}
	}
	if err := clk.RunUntilQuiescent(1_000_000); err != nil {
		t.Fatal(err)
	}
	if net.Delivered() != packets {
		t.Fatalf("delivered %d/%d", net.Delivered(), packets)
	}
	end = clk.Cycle()
	return midCycle, mid, end, ledger(net)
}

// TestStreamingMatchesStepped: the event-per-flit fast path must be
// invisible — same per-packet inject/eject cycles, same mid-run and
// final router statistics, same quiescence cycle — as the stepped
// 2-cycle handshake it batches.
func TestStreamingMatchesStepped(t *testing.T) {
	sMid, sStats, sEnd, sLats := streamRun(t, true)
	rMid, rStats, rEnd, rLats := streamRun(t, false)
	if sMid != rMid || sEnd != rEnd {
		t.Errorf("cycle counts diverge: streaming mid=%d end=%d, stepped mid=%d end=%d",
			sMid, sEnd, rMid, rEnd)
	}
	for i := range rStats {
		if sStats[i] != rStats[i] {
			t.Errorf("router %d mid-run stats diverge:\n  streaming %+v\n  stepped   %+v",
				i, sStats[i], rStats[i])
		}
	}
	if len(sLats) != len(rLats) {
		t.Fatalf("packet ledger sizes differ: %d vs %d", len(sLats), len(rLats))
	}
	for i := range rLats {
		if sLats[i] != rLats[i] {
			t.Fatalf("packet ledgers diverge at %d: streaming %d, stepped %d", i, sLats[i], rLats[i])
		}
	}
}

// TestStreamingFullBufferFallback: with depth-1 buffers and opposing
// flows fighting over the same column, receivers run out of space
// constantly, forcing the stream's full-buffer exit (re-present on the
// wires, fall back to the stepped handshake) over and over. Statistics
// and deliveries must still match the stepped reference exactly.
func TestStreamingFullBufferFallback(t *testing.T) {
	run := func(streaming bool) (uint64, []RouterStats) {
		cfg := Defaults(1, 4)
		cfg.BufDepth = 1
		clk, net := build(t, cfg)
		net.SetFlitStreaming(streaming)
		payload := seq(40)
		for k := 0; k < 3; k++ {
			if _, err := net.Endpoint(Addr{0, 0}).Send(Addr{0, 3}, payload); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Endpoint(Addr{0, 3}).Send(Addr{0, 0}, payload); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Endpoint(Addr{0, 1}).Send(Addr{0, 2}, payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := clk.RunUntilQuiescent(1_000_000); err != nil {
			t.Fatal(err)
		}
		if net.Delivered() != 9 {
			t.Fatalf("delivered %d/9", net.Delivered())
		}
		var stats []RouterStats
		for y := 0; y < 4; y++ {
			stats = append(stats, net.Router(Addr{0, y}).Stats())
		}
		return clk.Cycle(), stats
	}
	sEnd, sStats := run(true)
	rEnd, rStats := run(false)
	if sEnd != rEnd {
		t.Errorf("quiescence cycles diverge: streaming %d, stepped %d", sEnd, rEnd)
	}
	for i := range rStats {
		if sStats[i] != rStats[i] {
			t.Errorf("router %d stats diverge:\n  streaming %+v\n  stepped   %+v", i, sStats[i], rStats[i])
		}
	}
}

// TestStreamingVCDIdentical: a traced router's links are pinned to the
// stepped handshake (frozen wires would corrupt the dump), while its
// untraced neighbours keep streaming. The dump must be byte-identical
// to a run with streaming disabled everywhere.
func TestStreamingVCDIdentical(t *testing.T) {
	run := func(streaming bool) string {
		cfg := Defaults(3, 1)
		clk, net := build(t, cfg)
		net.SetFlitStreaming(streaming)
		var sb strings.Builder
		w := vcd.NewWriter(&sb)
		AttachVCD(net, w, Addr{1, 0})
		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Endpoint(Addr{0, 0}).Send(Addr{2, 0}, seq(12)); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Endpoint(Addr{2, 0}).Send(Addr{0, 0}, seq(12)); err != nil {
			t.Fatal(err)
		}
		if err := clk.RunUntilQuiescent(100_000); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if s, r := run(true), run(false); s != r {
		t.Fatalf("VCD dumps diverge:\nstreaming:\n%s\nstepped:\n%s", s, r)
	}
}

// TestStreamingDisableMidRun: SetFlitStreaming(false) in the middle of
// a run must let every in-flight stream exit naturally and the rest of
// the simulation proceed on the stepped path, with results bit-equal
// to a run that never streamed.
func TestStreamingDisableMidRun(t *testing.T) {
	run := func(toggle bool) (uint64, []uint64) {
		cfg := Defaults(4, 4)
		clk, net := build(t, cfg)
		if !toggle {
			net.SetFlitStreaming(false)
		}
		r := sim.NewRand(13)
		const packets = 40
		for i := 0; i < packets; i++ {
			src := Addr{r.Intn(4), r.Intn(4)}
			dst := Addr{r.Intn(4), r.Intn(4)}
			if _, err := net.Endpoint(src).Send(dst, seq(r.Intn(30)+4)); err != nil {
				t.Fatal(err)
			}
		}
		if err := clk.RunUntil(func() bool { return net.Delivered() >= packets/4 }, 1_000_000); err != nil {
			t.Fatal(err)
		}
		if toggle {
			net.SetFlitStreaming(false)
		}
		if err := clk.RunUntilQuiescent(1_000_000); err != nil {
			t.Fatal(err)
		}
		return clk.Cycle(), ledger(net)
	}
	tEnd, tLats := run(true)
	rEnd, rLats := run(false)
	if tEnd != rEnd {
		t.Errorf("quiescence cycles diverge: toggled %d, stepped %d", tEnd, rEnd)
	}
	if len(tLats) != len(rLats) {
		t.Fatalf("packet ledger sizes differ: %d vs %d", len(tLats), len(rLats))
	}
	for i := range rLats {
		if tLats[i] != rLats[i] {
			t.Fatalf("packet ledgers diverge at %d: toggled %d, stepped %d", i, tLats[i], rLats[i])
		}
	}
}

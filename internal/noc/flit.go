// Package noc implements the Hermes network on chip used by MultiNoC:
// a mesh of 5-port wormhole routers with XY routing, round-robin
// arbitration, 2-flit circular input buffers and a 2-cycle-per-flit
// asynchronous handshake between neighbours, as described in §2.1 of the
// paper. The package also provides the nine packet services the NoC
// offers to its IP cores.
//
// # Event-per-flit streaming
//
// The 2-cycle handshake is modelled two ways. The stepped reference
// evaluates both sides of a link every cycle: the sender drives tx and
// data, the receiver raises ack for one cycle when it accepts, the
// sender observes the ack two cycles after driving. The streaming fast
// path recognises a link in steady state — a wormhole connection
// established, flits queued behind it, free slack in the receiving
// buffer — and moves each flit with timer-paced events instead: the
// receiver pulls on its accept cycles and schedules the sender's
// completion bookkeeping one cycle later, so neither side is evaluated
// on cycles where the handshake could not change. Every externally
// observable effect (buffer pushes and pops, statistics, wire values at
// connection boundaries, delivery cycles) lands on exactly the cycle
// the stepped reference produces it, so the two paths are bit-identical
// on traffic results, router statistics, VCD dumps, and core boot
// transcripts — the TestStreaming* differentials in this package,
// internal/traffic, and internal/core pin that equivalence.
//
// Streaming engages per link and falls back to the stepped handshake at
// every boundary it cannot batch across: connection open (header
// routing and arbitration) and close (tail flit), buffer-full
// backpressure, links with a VCD trace attached, and clock-domain
// crossings (a cross-domain link's two halves live on different
// Clocks). Network.SetFlitStreaming(false) disables it entirely,
// keeping the stepped path as the differential reference.
//
// # Flit metadata
//
// A Flit carries only its data word and a PacketID. All per-packet
// simulation metadata (source, destination, injection and ejection
// cycles) lives in a metadata table owned by the Network — Network.Meta
// resolves a PacketID to its *PacketMeta, and the table entry is
// released when the packet is delivered or dropped. Flits are therefore
// plain values on wires and in buffers, and the steady-state flit path
// performs no heap allocation (gated at 0 allocs/op by cmd/benchgate
// -lower on BenchmarkStreamingSteadyState).
//
// # Multicast
//
// Endpoint.SendMulti delivers one payload to a destination group. The
// default mechanism is path-based (cf. Tiwari's path multicast for
// Hermes): the group is ordered along a canonical column-snake walk of
// the mesh, one wormhole travels to the first member, and each member's
// endpoint absorbs the packet and re-injects it toward the next — so a
// k-member group costs k unicast legs laid end to end rather than k
// independent source-rooted wormholes. SetPathMulticast(false) switches
// to unicast replication, which serves as the differential oracle: both
// mechanisms deliver payload-identical copies to the same members
// (TestMulticastPathMatchesUnicastOracle), and each is itself
// bit-identical across every kernel mode. MulticastStats counts groups,
// delivered copies, and destinations dropped for lacking an endpoint.
package noc

import "fmt"

// Addr identifies a router (and the IP core on its Local port) by mesh
// coordinates. X grows eastward, Y grows northward. The paper's router
// names "00", "01", "10", "11" are Addr{X,Y} in that order.
type Addr struct {
	X, Y int
}

// String formats the address the way the paper writes it, e.g. "10" for
// X=1,Y=0.
func (a Addr) String() string { return fmt.Sprintf("%d%d", a.X, a.Y) }

// Encode packs the address into a header flit: X in the high nibble, Y
// in the low nibble. Meshes up to 16x16 are addressable, which covers
// the paper's "10x10 NoCs" scalability discussion.
func (a Addr) Encode() uint16 { return uint16(a.X&0xF)<<4 | uint16(a.Y&0xF) }

// DecodeAddr is the inverse of Addr.Encode.
func DecodeAddr(v uint16) Addr { return Addr{X: int(v>>4) & 0xF, Y: int(v) & 0xF} }

// PacketID names a packet in the network-owned metadata table (see
// Network.Meta). It is the PacketMeta.ID value: a per-shard sequence
// number with the shard's domain index in the top 16 bits. Zero means
// "no packet" — the value carried by idle wires and zero Flits.
type PacketID uint64

// pktSeqBits splits a PacketID into domain (top bits) and per-domain
// sequence number, matching the encoding of Network.allocMeta.
const pktSeqBits = 48

// Flit is one flow-control unit travelling over a link. Data carries at
// most Config.FlitBits significant bits. Pkt indexes the simulation
// metadata of the packet the flit belongs to in the network's table; it
// models no hardware and exists for statistics and assertions only.
// Keeping it an integer (rather than a *PacketMeta) makes Flit
// pointer-free, so the hot fifo/wire copies carry no GC write barriers.
type Flit struct {
	Data uint16
	Pkt  PacketID
}

// PacketMeta records the life cycle of one packet for statistics. All
// cycle stamps are in clock cycles of the network's clock domain.
type PacketMeta struct {
	ID  uint64
	Src Addr
	Dst Addr
	// Len is the total number of flits: header + size + payload.
	Len int
	// CreatedCycle is when the sender committed the packet to its
	// injection queue. For a multicast leg it is the cycle SendMulti
	// created the whole group, so TotalLatency measures group creation
	// to that destination's delivery.
	CreatedCycle uint64
	// InjectCycle is when the local router accepted the header flit.
	InjectCycle uint64
	// EjectCycle is when the destination endpoint accepted the last
	// flit.
	EjectCycle uint64
	// Hops is the number of routers traversed (source and target
	// included), filled in by the network from the mesh geometry. For a
	// path-multicast leg it counts from the previous path stop, not the
	// original source.
	Hops int
	// MC links a multicast leg to its group record, nil for unicast
	// packets; MCIndex is the leg's destination index in MC.Dsts.
	MC      *MulticastMeta
	MCIndex int
}

// MulticastMeta records one multicast group: a single SendMulti call
// delivering one payload to a set of destinations. Delivery happens in
// one of two modes, frozen per group at send time (see
// Network.SetPathMulticast): path-based — the packet visits the
// destinations along a canonical Hamiltonian-style path, each
// intermediate endpoint absorbing a copy and re-injecting the payload
// towards the next stop (cf. Tiwari et al.'s path-based multicast) —
// or unicast replication, the reference oracle, where the source stages
// one independent unicast copy per destination. Either way each
// destination has its own leg PacketMeta, so per-destination latency
// and delivery cycles read off the ordinary packet machinery.
type MulticastMeta struct {
	// ID is the group identity: the first leg's packet ID.
	ID  uint64
	Src Addr
	// Dsts is the deliverable destination set in path (visit) order.
	Dsts []Addr
	// Legs holds one PacketMeta per destination, index-aligned with
	// Dsts. In path mode leg i+1's flits only exist once leg i was
	// delivered; the metadata is pre-allocated at SendMulti so callers
	// can watch every destination from the start.
	Legs []*PacketMeta
	// CreatedCycle is when SendMulti staged the group.
	CreatedCycle uint64
	// Path records the delivery mode the group was sent under.
	Path bool
	// Dropped counts requested destinations that were skipped at send
	// time because no endpoint exists there.
	Dropped int
}

// DeliveredAll reports whether every deliverable destination has
// received its copy.
func (g *MulticastMeta) DeliveredAll() bool {
	for _, m := range g.Legs {
		if m.EjectCycle == 0 {
			return false
		}
	}
	return true
}

// NetworkLatency is the cycles from header injection to tail delivery.
func (m *PacketMeta) NetworkLatency() uint64 { return m.EjectCycle - m.InjectCycle }

// TotalLatency additionally includes source queueing before injection.
func (m *PacketMeta) TotalLatency() uint64 { return m.EjectCycle - m.CreatedCycle }

// Packet is the unit IP cores exchange: a destination plus payload flit
// values (each masked to the flit width). The header and size flits of
// the wire format are added by the endpoint on injection and stripped on
// delivery.
type Packet struct {
	Src     Addr
	Dst     Addr
	Payload []uint16
	Meta    *PacketMeta
}

// MaxPayload returns the largest payload (in flits) a single packet may
// carry for a given flit width: the size flit must be able to count it.
func MaxPayload(flitBits int) int {
	if flitBits >= 16 {
		return 1<<16 - 1
	}
	return 1<<flitBits - 1
}

// flits flattens the packet into wire-format flits.
func (p *Packet) flits(flitBits int) []Flit {
	mask := flitMask(flitBits)
	id := PacketID(p.Meta.ID)
	fs := make([]Flit, 0, len(p.Payload)+2)
	fs = append(fs, Flit{Data: p.Dst.Encode() & mask, Pkt: id})
	fs = append(fs, Flit{Data: uint16(len(p.Payload)) & mask, Pkt: id})
	for _, v := range p.Payload {
		fs = append(fs, Flit{Data: v & mask, Pkt: id})
	}
	return fs
}

func flitMask(bits int) uint16 {
	if bits >= 16 {
		return 0xFFFF
	}
	return uint16(1)<<bits - 1
}

// Package noc implements the Hermes network on chip used by MultiNoC:
// a mesh of 5-port wormhole routers with XY routing, round-robin
// arbitration, 2-flit circular input buffers and a 2-cycle-per-flit
// asynchronous handshake between neighbours, as described in §2.1 of the
// paper. The package also provides the nine packet services the NoC
// offers to its IP cores.
package noc

import "fmt"

// Addr identifies a router (and the IP core on its Local port) by mesh
// coordinates. X grows eastward, Y grows northward. The paper's router
// names "00", "01", "10", "11" are Addr{X,Y} in that order.
type Addr struct {
	X, Y int
}

// String formats the address the way the paper writes it, e.g. "10" for
// X=1,Y=0.
func (a Addr) String() string { return fmt.Sprintf("%d%d", a.X, a.Y) }

// Encode packs the address into a header flit: X in the high nibble, Y
// in the low nibble. Meshes up to 16x16 are addressable, which covers
// the paper's "10x10 NoCs" scalability discussion.
func (a Addr) Encode() uint16 { return uint16(a.X&0xF)<<4 | uint16(a.Y&0xF) }

// DecodeAddr is the inverse of Addr.Encode.
func DecodeAddr(v uint16) Addr { return Addr{X: int(v>>4) & 0xF, Y: int(v) & 0xF} }

// Flit is one flow-control unit travelling over a link. Data carries at
// most Config.FlitBits significant bits. Meta points at the simulation
// metadata of the packet the flit belongs to; it models no hardware and
// exists for statistics and assertions only.
type Flit struct {
	Data uint16
	Meta *PacketMeta
}

// PacketMeta records the life cycle of one packet for statistics. All
// cycle stamps are in clock cycles of the network's clock domain.
type PacketMeta struct {
	ID  uint64
	Src Addr
	Dst Addr
	// Len is the total number of flits: header + size + payload.
	Len int
	// CreatedCycle is when the sender committed the packet to its
	// injection queue.
	CreatedCycle uint64
	// InjectCycle is when the local router accepted the header flit.
	InjectCycle uint64
	// EjectCycle is when the destination endpoint accepted the last
	// flit.
	EjectCycle uint64
	// Hops is the number of routers traversed (source and target
	// included), filled in by the network from the mesh geometry.
	Hops int
}

// NetworkLatency is the cycles from header injection to tail delivery.
func (m *PacketMeta) NetworkLatency() uint64 { return m.EjectCycle - m.InjectCycle }

// TotalLatency additionally includes source queueing before injection.
func (m *PacketMeta) TotalLatency() uint64 { return m.EjectCycle - m.CreatedCycle }

// Packet is the unit IP cores exchange: a destination plus payload flit
// values (each masked to the flit width). The header and size flits of
// the wire format are added by the endpoint on injection and stripped on
// delivery.
type Packet struct {
	Src     Addr
	Dst     Addr
	Payload []uint16
	Meta    *PacketMeta
}

// MaxPayload returns the largest payload (in flits) a single packet may
// carry for a given flit width: the size flit must be able to count it.
func MaxPayload(flitBits int) int {
	if flitBits >= 16 {
		return 1<<16 - 1
	}
	return 1<<flitBits - 1
}

// flits flattens the packet into wire-format flits.
func (p *Packet) flits(flitBits int) []Flit {
	mask := flitMask(flitBits)
	fs := make([]Flit, 0, len(p.Payload)+2)
	fs = append(fs, Flit{Data: p.Dst.Encode() & mask, Meta: p.Meta})
	fs = append(fs, Flit{Data: uint16(len(p.Payload)) & mask, Meta: p.Meta})
	for _, v := range p.Payload {
		fs = append(fs, Flit{Data: v & mask, Meta: p.Meta})
	}
	return fs
}

func flitMask(bits int) uint16 {
	if bits >= 16 {
		return 0xFFFF
	}
	return uint16(1)<<bits - 1
}

package noc

import (
	"fmt"

	"repro/internal/sim"
)

// PortNone marks an unconnected crossbar endpoint.
const PortNone Port = -1

// wormhole parse phases of an input port's flit stream.
const (
	phaseHeader  = iota // head of buffer is (or will be) a header flit
	phaseSize           // next flit to forward is the size flit
	phasePayload        // `remaining` payload flits left to forward
)

// inPort is one of the router's five input ports: a link receiver, the
// circular FIFO buffer of Figure 2, and the wormhole state tracking the
// packet currently flowing through the port.
type inPort struct {
	port Port
	rcv  receiver
	buf  *fifo

	// registered state
	route     Port // output port currently connected, PortNone if idle
	phase     int
	remaining int // payload flits still to forward in phasePayload

	// next-state
	nRoute     Port
	nPhase     int
	nRemaining int
}

// requestActive reports whether this port's head flit is a header
// waiting for the control logic (judged on registered state).
func (p *inPort) requestActive() bool {
	return p.route == PortNone && p.phase == phaseHeader && p.buf.Len() > 0
}

// outPort is one of the five output ports: a link sender plus the
// crossbar selector naming the input port it is connected to.
type outPort struct {
	port Port
	snd  sender

	src  Port // connected input port, PortNone if free
	nSrc Port
}

// control is the router's single centralized control logic (§2.1): a
// round-robin arbiter over the input ports and the XY routing engine.
// Serving one request takes routeDelay cycles, modelling the paper's
// Ri >= 7 routing-algorithm time. The delay is kept as an absolute
// completion cycle (with a WakeAt timer armed for it) rather than a
// per-cycle countdown, so a router whose ports are otherwise at rest
// can sleep through the routing delay and the time-warp kernel can
// skip it.
type control struct {
	serving    int // input port being served, -1 when idle
	completeAt uint64
	rr         int // round-robin scan start

	nServing    int
	nCompleteAt uint64
	nRR         int
}

// RouterStats aggregates observable activity of one router.
type RouterStats struct {
	// FlitsOut counts flits accepted by each output port's downstream
	// neighbour.
	FlitsOut [numPorts]uint64
	// PacketsRouted counts connections successfully established.
	PacketsRouted uint64
	// Grants counts control-logic grants (== PacketsRouted).
	Grants uint64
	// BlockedAttempts counts routing attempts that found the output
	// port busy and had to be retried later.
	BlockedAttempts uint64
	// WaitCycles accumulates cycles input ports spent with a header
	// waiting for a connection.
	WaitCycles uint64
	// BufferedFlitCycles accumulates buffer occupancy integrated over
	// time, for mean-occupancy reporting.
	BufferedFlitCycles uint64
}

// TotalFlits is the sum of flits sent through all output ports.
func (s RouterStats) TotalFlits() uint64 {
	var t uint64
	for _, v := range s.FlitsOut {
		t += v
	}
	return t
}

// Router is one Hermes router (Figure 2): five bidirectional ports, an
// input buffer per port, a centralized control logic implementing
// round-robin arbitration and XY routing, and a crossbar able to hold up
// to five simultaneous connections.
type Router struct {
	addr       Addr
	clk        *sim.Clock
	self       sim.Handle // pre-resolved wake token, set at registration
	routing    RoutingFunc
	routeDelay int // internal cycles per routing-algorithm execution
	in         [numPorts]inPort
	out        [numPorts]outPort
	ctl        control
	stats      RouterStats
	// statsAt is the cycle through which the per-cycle stats integrals
	// (WaitCycles, BufferedFlitCycles) have been accumulated. A router
	// asleep through the routing delay has frozen registered state, so
	// the skipped cycles are integrated as span x frozen value on the
	// next Eval — bit-identical to dense per-cycle accumulation.
	statsAt uint64
}

// newRouter builds a router with all ports unconnected; the mesh builder
// wires links afterwards.
func newRouter(addr Addr, cfg Config, clk *sim.Clock) *Router {
	r := &Router{addr: addr, clk: clk, routing: cfg.Routing, routeDelay: cfg.internalRouteDelay()}
	for i := Port(0); i < numPorts; i++ {
		r.in[i] = inPort{port: i, buf: newFifo(cfg.BufDepth), route: PortNone, nRoute: PortNone}
		r.out[i] = outPort{port: i, src: PortNone, nSrc: PortNone}
	}
	r.ctl = control{serving: -1, nServing: -1}
	return r
}

// Addr reports the router's mesh coordinates.
func (r *Router) Addr() Addr { return r.addr }

// Clock returns the clock domain the router is registered in (its
// shard's clock on a sharded network).
func (r *Router) Clock() *sim.Clock { return r.clk }

// integrateStats adds span cycles of the registered per-port state to
// the WaitCycles and BufferedFlitCycles integrals in s. It is the one
// definition of those statistics, shared by Eval's per-cycle (or
// post-sleep) accumulation and Stats' mid-sleep flush.
func (r *Router) integrateStats(s *RouterStats, span uint64) (anyRequest bool) {
	for i := range r.in {
		p := &r.in[i]
		if p.requestActive() {
			anyRequest = true
			s.WaitCycles += span
		}
		if n := p.buf.Len(); n > 0 {
			s.BufferedFlitCycles += span * uint64(n)
		}
	}
	return anyRequest
}

// Stats returns a snapshot of the router's counters, with the per-cycle
// integrals brought up to the current cycle (a router asleep mid
// routing delay has not evaluated since it fell asleep; its registered
// state was frozen throughout, so the pending span integrates exactly).
func (r *Router) Stats() RouterStats {
	s := r.stats
	if now := r.clk.Cycle(); now > r.statsAt {
		r.integrateStats(&s, now-r.statsAt)
	}
	return s
}

// connectIn attaches the upstream link arriving at port p. The router
// watches the link's tx so an arriving flit wakes it from idle sleep,
// and registers the receive-side streaming hooks (push into the port's
// buffer, wake token for scheduled accepts).
func (r *Router) connectIn(p Port, l *Link) {
	r.in[p].rcv.link = l
	sim.Watch(l.Tx, r)
	st := l.initStream()
	buf := r.in[p].buf
	st.rcvSpace = func() bool { return buf.Free() > 0 }
	st.rcvTake = func(f Flit) { buf.StagePush(f) }
	st.rcvSelf = r.self
}

// connectOut attaches the downstream link leaving port p and registers
// the send-side streaming hooks: the queue feeding a router's output is
// the buffer of whichever input port the crossbar currently connects.
func (r *Router) connectOut(p Port, l *Link) {
	o := &r.out[p]
	o.snd.link = l
	st := l.initStream()
	st.sndPeek = func() Flit { return r.in[o.src].buf.At(0) }
	st.sndRestage = func() {
		l.Data.Set(r.in[o.src].buf.At(0))
		l.Tx.Set(true)
		o.snd.busy, o.snd.nBusy = true, true
	}
	st.sndSelf = r.self
}

// Name implements sim.Component.
func (r *Router) Name() string { return fmt.Sprintf("router%s", r.addr) }

// Eval implements sim.Component. All reads observe registered state; all
// mutations are staged for Commit.
func (r *Router) Eval() {
	evalNow := r.clk.Cycle() + 1
	span := evalNow - r.statsAt
	r.statsAt = evalNow

	// Input side: snapshot next-state and accept flits from upstream.
	for i := range r.in {
		p := &r.in[i]
		p.nRoute, p.nPhase, p.nRemaining = p.route, p.phase, p.remaining
		if l := p.rcv.link; l != nil {
			if l.stream.isLinked(evalNow) {
				// Streaming inbound: the wires are frozen; pull directly
				// from the upstream queue on accept cycles.
				l.stream.receiverTick(evalNow)
			} else if l.Tx.Get() || p.rcv.ackHigh {
				// A port whose handshake is at rest (incoming tx low, ack
				// low) is skipped: its eval would stage nothing, so the
				// staged receiver state already equals the committed state.
				p.rcv.eval(
					func() bool { return p.buf.Free() > 0 },
					func(f Flit) { p.buf.StagePush(f) },
				)
			}
		}
	}
	// Statistics integrate registered state only (route, phase,
	// committed buffer length), which nothing in this Eval mutates. The
	// span exceeds one cycle only after the router slept, and a
	// sleeping router's registered state is frozen, so span x current
	// value equals the dense per-cycle sum.
	anyRequest := r.integrateStats(&r.stats, span)
	for i := range r.out {
		r.out[i].nSrc = r.out[i].src
	}
	r.ctl.nServing, r.ctl.nCompleteAt, r.ctl.nRR = r.ctl.serving, r.ctl.completeAt, r.ctl.rr

	// Output side: stream flits of established connections downstream.
	for i := range r.out {
		o := &r.out[i]
		if o.snd.link == nil || o.src == PortNone {
			if o.snd.link != nil && (o.snd.busy || o.snd.link.Tx.Peek()) {
				// Finish deasserting tx on a just-closed connection;
				// fully idle senders are skipped.
				o.snd.eval(evalNow, func() bool { return false }, func() Flit { return Flit{} }, func() {})
			}
			continue
		}
		p := &r.in[o.src]
		if st := o.snd.link.stream; st.isLinked(evalNow) {
			if st.doneAt == evalNow {
				// Sender-side completion of the flit the downstream
				// receiver pulled last cycle: the same pop, counter and
				// wormhole advance the stepped accepted() callback runs,
				// on exactly the cycle it would run them.
				st.doneAt = 0
				fl := p.buf.At(0)
				p.buf.StagePop()
				r.stats.FlitsOut[o.port]++
				r.forwarded(p, o, fl)
				if p.nRoute == o.port && p.buf.Len() > 1 {
					st.nextAccept = evalNow + 1
					st.rcvSelf.WakeAt(evalNow + 1)
				} else {
					// Tail forwarded or queue drained: back to stepped,
					// with tx lowered exactly as the stepped sender
					// would this cycle.
					st.unlinkAt(evalNow)
					o.snd.link.Tx.Set(false)
				}
			}
			continue
		}
		popped := 0
		o.snd.eval(
			evalNow,
			func() bool {
				// Connection may have been closed by the accepted()
				// callback this same cycle; the next buffered flit then
				// belongs to the following packet and must not leak.
				return p.nRoute == o.port && p.buf.Len()-popped > 0
			},
			func() Flit { return p.buf.At(popped) },
			func() {
				fl := p.buf.At(popped)
				p.buf.StagePop()
				popped++
				r.stats.FlitsOut[o.port]++
				r.forwarded(p, o, fl)
			},
		)
	}

	// Control logic: serve at most one routing request at a time.
	r.evalControl(anyRequest, evalNow)
}

// forwarded advances the wormhole parse state after a flit of input port
// p was accepted downstream, closing the connection after the tail flit.
func (r *Router) forwarded(p *inPort, o *outPort, fl Flit) {
	switch p.nPhase {
	case phaseHeader:
		p.nPhase = phaseSize
	case phaseSize:
		p.nRemaining = int(fl.Data)
		p.nPhase = phasePayload
		if p.nRemaining == 0 {
			r.closeConnection(p, o)
		}
	case phasePayload:
		p.nRemaining--
		if p.nRemaining == 0 {
			r.closeConnection(p, o)
		}
	}
}

func (r *Router) closeConnection(p *inPort, o *outPort) {
	p.nRoute = PortNone
	p.nPhase = phaseHeader
	o.nSrc = PortNone
}

func (r *Router) evalControl(anyRequest bool, evalNow uint64) {
	c := &r.ctl
	if c.serving < 0 {
		if !anyRequest {
			return
		}
		for k := 0; k < int(numPorts); k++ {
			i := (c.rr + k) % int(numPorts)
			if r.in[i].requestActive() {
				c.nServing = i
				c.nCompleteAt = evalNow + uint64(r.routeDelay)
				c.nRR = (i + 1) % int(numPorts)
				// The delay is a pure countdown: if every port goes
				// quiet the router may sleep through it, so arm a
				// timer for the completion cycle.
				r.self.WakeAt(c.nCompleteAt)
				return
			}
		}
		return
	}
	if evalNow < c.completeAt {
		return
	}
	// Routing algorithm completes this cycle.
	c.nServing = -1
	p := &r.in[c.serving]
	if !p.requestActive() {
		return // request evaporated (should not happen; defensive)
	}
	dst := DecodeAddr(p.buf.Head().Data)
	o := r.routing(r.addr, dst, p.port)
	if o < 0 || o >= numPorts || r.out[o].snd.link == nil {
		// Misroute towards a nonexistent port: drop the request to a
		// detectable stuck state rather than corrupting the crossbar.
		r.stats.BlockedAttempts++
		return
	}
	if r.out[o].src != PortNone || r.out[o].nSrc != PortNone {
		// Output busy: the request stays active and will be retried in
		// a future execution of the procedure (§2.1).
		r.stats.BlockedAttempts++
		return
	}
	p.nRoute = o
	r.out[o].nSrc = p.port
	r.stats.Grants++
	r.stats.PacketsRouted++
}

// Idle implements sim.Idler. A router may sleep when every input port's
// handshake is at rest (incoming tx low, ack low) or batching transfers
// on a streaming link, every open wormhole connection is served by a
// streaming output (transfers and completions are scheduled events, so
// nothing changes on the in-between cycles), and every stepped output
// sender is idle. Buffered flits are allowed while the control logic is
// mid routing-delay or while the port's connection streams: nothing
// about them changes until the armed timer or scheduled transfer fires,
// and the span-integrated stats account for the skipped cycles. With
// the control idle, any buffered header is a request the next Eval's
// arbiter scan must see, so the router stays awake. In the sleepable
// states Eval stages nothing and drives every wire at its rest value;
// the router is woken by the rising tx of an incoming link (watched in
// connectIn), by its routing-delay timer, or by the wakes its links'
// streams arm for each scheduled transfer.
func (r *Router) Idle() bool {
	nextEval := r.clk.Cycle() + 1
	serving := r.ctl.serving >= 0
	for i := range r.in {
		p := &r.in[i]
		if p.rcv.ackHigh {
			return false
		}
		l := p.rcv.link
		if l != nil && !l.stream.isLinked(nextEval) && l.Tx.Get() {
			return false
		}
		if p.route != PortNone {
			o := &r.out[p.route]
			if o.snd.link == nil || !o.snd.link.stream.isLinked(nextEval) {
				return false
			}
		} else {
			if p.phase != phaseHeader {
				return false
			}
			if !serving && p.buf.Len() > 0 {
				return false
			}
		}
	}
	for i := range r.out {
		if r.out[i].snd.busy {
			return false
		}
	}
	return true
}

// Commit implements sim.Component.
func (r *Router) Commit() {
	for i := range r.in {
		p := &r.in[i]
		p.buf.Commit()
		p.rcv.commit()
		p.route, p.phase, p.remaining = p.nRoute, p.nPhase, p.nRemaining
	}
	for i := range r.out {
		o := &r.out[i]
		o.snd.commit()
		o.src = o.nSrc
	}
	r.ctl.serving, r.ctl.completeAt, r.ctl.rr = r.ctl.nServing, r.ctl.nCompleteAt, r.ctl.nRR
}

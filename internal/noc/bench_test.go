package noc

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSimulationRate measures how many router-cycles per second
// the two-phase kernel sustains on an idle 4x4 mesh.
func BenchmarkSimulationRate(b *testing.B) {
	b.ReportAllocs()
	clk := sim.NewClock()
	net, err := New(clk, Defaults(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	_ = net
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}

// BenchmarkLoadedMeshCycle measures cycle cost with traffic in flight.
func BenchmarkLoadedMeshCycle(b *testing.B) {
	b.ReportAllocs()
	clk := sim.NewClock()
	// Per-cycle cost benchmark: each iteration must be one cycle, so
	// dead-cycle skipping is disabled.
	clk.SetTimeWarp(false)
	net, err := New(clk, Defaults(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	var eps []*Endpoint
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			ep, err := net.NewEndpoint(Addr{x, y})
			if err != nil {
				b.Fatal(err)
			}
			eps = append(eps, ep)
		}
	}
	r := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			src := eps[r.Intn(len(eps))]
			dst := Addr{r.Intn(4), r.Intn(4)}
			_, _ = src.Send(dst, make([]uint16, 16))
		}
		clk.Step()
		for _, ep := range eps {
			for {
				if _, ok := ep.Recv(); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkKernelActivity compares the activity-scheduled kernel with
// the dense reference on a 16x16 mesh (256 routers + 256 endpoints)
// across traffic levels. Each iteration is one simulated cycle, so
// ns/op is the per-cycle cost; the cycles/sec metric is its inverse.
// The activity kernel's advantage is largest on idle and low-injection
// meshes, where most of the mesh sleeps.
func BenchmarkKernelActivity(b *testing.B) {
	b.ReportAllocs()
	loads := []struct {
		name string
		rate float64 // offered flits/cycle/node
	}{
		{"idle", 0},
		{"inj0.2pct", 0.002},
		{"inj0.5pct", 0.005},
		{"inj1pct", 0.01},
	}
	kernels := []struct {
		name  string
		dense bool
	}{
		{"activity", false},
		{"dense", true},
	}
	for _, load := range loads {
		for _, k := range kernels {
			b.Run(load.name+"/"+k.name, func(b *testing.B) {
				b.ReportAllocs()
				cfg := Defaults(16, 16)
				clk := sim.NewClock()
				clk.SetActivityScheduling(!k.dense)
				// Per-cycle cost benchmark: one iteration = one cycle.
				clk.SetTimeWarp(false)
				net, err := New(clk, cfg)
				if err != nil {
					b.Fatal(err)
				}
				type node struct {
					ep  *Endpoint
					rng *sim.Rand
				}
				var nodes []node
				for x := 0; x < cfg.Width; x++ {
					for y := 0; y < cfg.Height; y++ {
						ep, err := net.NewEndpoint(Addr{x, y})
						if err != nil {
							b.Fatal(err)
						}
						nodes = append(nodes, node{ep, sim.NewRand(uint64(x*31 + y))})
					}
				}
				pktProb := load.rate / 10 // 8-flit payload + header + size
				cycle := func() {
					if pktProb > 0 {
						for _, n := range nodes {
							if n.rng.Bool(pktProb) && n.ep.QueuedFlits() < 64 {
								dst := Addr{n.rng.Intn(cfg.Width), n.rng.Intn(cfg.Height)}
								if dst != n.ep.Addr() {
									_, _ = n.ep.Send(dst, make([]uint16, 8))
								}
							}
						}
					}
					clk.Step()
					for _, n := range nodes {
						for {
							if _, ok := n.ep.Recv(); !ok {
								break
							}
						}
					}
				}
				for i := 0; i < 1000; i++ { // reach steady state untimed
					cycle()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycle()
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// BenchmarkServiceEncodeDecode measures the service codec.
func BenchmarkServiceEncodeDecode(b *testing.B) {
	b.ReportAllocs()
	m := &Message{Svc: SvcWriteMem, Src: Addr{1, 0}, Addr: 0x100, Words: make([]uint16, 32)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeMessage(p); err != nil {
			b.Fatal(err)
		}
	}
}

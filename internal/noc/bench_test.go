package noc

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSimulationRate measures how many router-cycles per second
// the two-phase kernel sustains on an idle 4x4 mesh.
func BenchmarkSimulationRate(b *testing.B) {
	b.ReportAllocs()
	clk := sim.NewClock()
	net, err := New(clk, Defaults(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	_ = net
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}

// BenchmarkLoadedMeshCycle measures cycle cost with traffic in flight.
func BenchmarkLoadedMeshCycle(b *testing.B) {
	b.ReportAllocs()
	clk := sim.NewClock()
	// Per-cycle cost benchmark: each iteration must be one cycle, so
	// dead-cycle skipping is disabled.
	clk.SetTimeWarp(false)
	net, err := New(clk, Defaults(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	var eps []*Endpoint
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			ep, err := net.NewEndpoint(Addr{x, y})
			if err != nil {
				b.Fatal(err)
			}
			eps = append(eps, ep)
		}
	}
	r := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			src := eps[r.Intn(len(eps))]
			dst := Addr{r.Intn(4), r.Intn(4)}
			_, _ = src.Send(dst, make([]uint16, 16))
		}
		clk.Step()
		for _, ep := range eps {
			for {
				if _, ok := ep.Recv(); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkStreamingSteadyState measures the per-cycle cost of a
// wormhole held open end to end — a continuous train of max-size
// packets crossing a 4x1 mesh — under the event-per-flit streaming
// path and under the stepped 2-cycle handshake it batches. Packet
// injection and the drain after each delivery happen with the timer
// stopped, so ns/op and allocs/op are the flit path alone. The
// streaming sub-benchmark's allocs/op figure is gated at 0 by
// cmd/benchgate (-lower): flits are value types indexing a
// network-owned metadata table, and nothing on the linked path may
// touch the heap.
func BenchmarkStreamingSteadyState(b *testing.B) {
	b.ReportAllocs()
	for _, tc := range []struct {
		name      string
		streaming bool
	}{
		{"streaming", true},
		{"stepped", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			clk := sim.NewClock()
			// Per-cycle cost benchmark: each iteration must be one
			// cycle, so dead-cycle skipping is disabled.
			clk.SetTimeWarp(false)
			cfg := Defaults(4, 1)
			net, err := New(clk, cfg)
			if err != nil {
				b.Fatal(err)
			}
			net.SetFlitStreaming(tc.streaming)
			src, err := net.NewEndpoint(Addr{0, 0})
			if err != nil {
				b.Fatal(err)
			}
			dst, err := net.NewEndpoint(Addr{3, 0})
			if err != nil {
				b.Fatal(err)
			}
			// Keep a deep queue of max-size packets behind the head so
			// the sender's tail-to-header continuation holds the streams
			// linked across packet boundaries; top it back up (and drain
			// the sink) with the timer stopped whenever it runs low.
			// (Send stages into the injection queue at the next clock
			// edge, so the refill counts packets itself rather than
			// polling QueuedFlits, which reads committed state only.)
			payload := make([]uint16, MaxPayload(cfg.FlitBits))
			pktFlits := len(payload) + 2 // header + size
			refill := func() {
				for {
					if _, ok := dst.Recv(); !ok {
						break
					}
				}
				for q := src.QueuedFlits(); q < 6000; q += pktFlits {
					if _, err := src.Send(Addr{3, 0}, payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			refill()
			for i := 0; i < 2000; i++ { // engage the streams untimed
				clk.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clk.Step()
				if src.QueuedFlits() < 600 {
					b.StopTimer()
					refill()
					b.StartTimer()
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkKernelActivity compares the activity-scheduled kernel with
// the dense reference on a 16x16 mesh (256 routers + 256 endpoints)
// across traffic levels. Each iteration is one simulated cycle, so
// ns/op is the per-cycle cost; the cycles/sec metric is its inverse.
// The activity kernel's advantage is largest on idle and low-injection
// meshes, where most of the mesh sleeps.
func BenchmarkKernelActivity(b *testing.B) {
	b.ReportAllocs()
	loads := []struct {
		name string
		rate float64 // offered flits/cycle/node
	}{
		{"idle", 0},
		{"inj0.2pct", 0.002},
		{"inj0.5pct", 0.005},
		{"inj1pct", 0.01},
	}
	kernels := []struct {
		name  string
		dense bool
	}{
		{"activity", false},
		{"dense", true},
	}
	for _, load := range loads {
		for _, k := range kernels {
			b.Run(load.name+"/"+k.name, func(b *testing.B) {
				b.ReportAllocs()
				cfg := Defaults(16, 16)
				clk := sim.NewClock()
				clk.SetActivityScheduling(!k.dense)
				// Per-cycle cost benchmark: one iteration = one cycle.
				clk.SetTimeWarp(false)
				net, err := New(clk, cfg)
				if err != nil {
					b.Fatal(err)
				}
				type node struct {
					ep  *Endpoint
					rng *sim.Rand
				}
				var nodes []node
				for x := 0; x < cfg.Width; x++ {
					for y := 0; y < cfg.Height; y++ {
						ep, err := net.NewEndpoint(Addr{x, y})
						if err != nil {
							b.Fatal(err)
						}
						nodes = append(nodes, node{ep, sim.NewRand(uint64(x*31 + y))})
					}
				}
				pktProb := load.rate / 10 // 8-flit payload + header + size
				cycle := func() {
					if pktProb > 0 {
						for _, n := range nodes {
							if n.rng.Bool(pktProb) && n.ep.QueuedFlits() < 64 {
								dst := Addr{n.rng.Intn(cfg.Width), n.rng.Intn(cfg.Height)}
								if dst != n.ep.Addr() {
									_, _ = n.ep.Send(dst, make([]uint16, 8))
								}
							}
						}
					}
					clk.Step()
					for _, n := range nodes {
						for {
							if _, ok := n.ep.Recv(); !ok {
								break
							}
						}
					}
				}
				for i := 0; i < 1000; i++ { // reach steady state untimed
					cycle()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycle()
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
			})
		}
	}
}

// BenchmarkServiceEncodeDecode measures the service codec.
func BenchmarkServiceEncodeDecode(b *testing.B) {
	b.ReportAllocs()
	m := &Message{Svc: SvcWriteMem, Src: Addr{1, 0}, Addr: 0x100, Words: make([]uint16, 32)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeMessage(p); err != nil {
			b.Fatal(err)
		}
	}
}

package noc

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSimulationRate measures how many router-cycles per second
// the two-phase kernel sustains on an idle 4x4 mesh.
func BenchmarkSimulationRate(b *testing.B) {
	clk := sim.NewClock()
	net, err := New(clk, Defaults(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	_ = net
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}

// BenchmarkLoadedMeshCycle measures cycle cost with traffic in flight.
func BenchmarkLoadedMeshCycle(b *testing.B) {
	clk := sim.NewClock()
	net, err := New(clk, Defaults(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	var eps []*Endpoint
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			ep, err := net.NewEndpoint(Addr{x, y})
			if err != nil {
				b.Fatal(err)
			}
			eps = append(eps, ep)
		}
	}
	r := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			src := eps[r.Intn(len(eps))]
			dst := Addr{r.Intn(4), r.Intn(4)}
			_, _ = src.Send(dst, make([]uint16, 16))
		}
		clk.Step()
		for _, ep := range eps {
			for {
				if _, ok := ep.Recv(); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkServiceEncodeDecode measures the service codec.
func BenchmarkServiceEncodeDecode(b *testing.B) {
	m := &Message{Svc: SvcWriteMem, Src: Addr{1, 0}, Addr: 0x100, Words: make([]uint16, 32)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeMessage(p); err != nil {
			b.Fatal(err)
		}
	}
}

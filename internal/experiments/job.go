package experiments

import (
	"context"
	"fmt"

	"repro/internal/noc"
	"repro/internal/traffic"
)

// TrafficJob is the serializable description of one design-space point:
// a mesh configuration plus a synthetic-load experiment on it. It is
// the job body of the sweep service (internal/sweep) — everything a
// batch submitter may vary is a plain field here, with routing
// algorithms and traffic patterns selected by name so a job survives a
// JSON round trip and two structurally equal jobs describe the same
// simulation.
//
// Zero fields mean "the MultiNoC default": mesh parameters fall back to
// noc.Defaults, the pattern to uniform, the routing to XY, and the
// phase lengths to a short steady-state window. Canonical() applies
// those defaults explicitly, which is what the sweep service hashes for
// its dedupe key.
type TrafficJob struct {
	// Mesh geometry and router parameters (0 → MultiNoC defaults).
	Width       int     `json:"width,omitempty"`
	Height      int     `json:"height,omitempty"`
	FlitBits    int     `json:"flitBits,omitempty"`
	BufDepth    int     `json:"bufDepth,omitempty"`
	RouteCycles int     `json:"routeCycles,omitempty"`
	ClockMHz    float64 `json:"clockMHz,omitempty"`
	// Routing selects the routing algorithm by name: "xy" (default),
	// "yx" or "westfirst".
	Routing string `json:"routing,omitempty"`
	// Pattern selects the traffic pattern by name — any name of the
	// traffic pattern library: "uniform" (default), "transpose",
	// "bitcomp", "bitrev", "hotspot" (weighted Hotspots, or the legacy
	// single HotspotX/Y/Fraction spot), "bursty", "trace" (replaying
	// Trace) or "multicast" (a SendMulti group per injection).
	Pattern         string  `json:"pattern,omitempty"`
	HotspotX        int     `json:"hotspotX,omitempty"`
	HotspotY        int     `json:"hotspotY,omitempty"`
	HotspotFraction float64 `json:"hotspotFraction,omitempty"`
	// Hotspots is the weighted hotspot set; when empty, Canonical lifts
	// the legacy single-spot fields into it.
	Hotspots []traffic.HotspotSpec `json:"hotspots,omitempty"`
	// BurstLen and BurstPeak modulate arrivals with the on/off burst
	// process (zero → library defaults for the "bursty" pattern, no
	// modulation otherwise).
	BurstLen  float64 `json:"burstLen,omitempty"`
	BurstPeak float64 `json:"burstPeak,omitempty"`
	// Trace is the injection log replayed by the "trace" pattern.
	Trace []traffic.TraceEntry `json:"trace,omitempty"`
	// Multicast is the destination set of the "multicast" pattern;
	// MulticastUnicast delivers it by unicast replication (the oracle
	// mode) instead of path-based forwarding.
	Multicast        []noc.Addr `json:"multicast,omitempty"`
	MulticastUnicast bool       `json:"multicastUnicast,omitempty"`
	// Load parameters, as in traffic.Config.
	Rate         float64 `json:"rate"`
	PayloadFlits int     `json:"payloadFlits,omitempty"`
	Seed         uint64  `json:"seed"`
	Warmup       int     `json:"warmup,omitempty"`
	Measure      int     `json:"measure,omitempty"`
	Drain        int     `json:"drain,omitempty"`
	QueueCap     int     `json:"queueCap,omitempty"`
	// Kernel execution knobs. They never change results — only how the
	// simulation is scheduled — so Canonical() drops Parallel from the
	// dedupe identity but keeps Domains (packet-ID numbering and the
	// Completed log ordering are partition-dependent).
	Domains  int  `json:"domains,omitempty"`
	Parallel bool `json:"parallel,omitempty"`
}

// defaultJob holds the phase-length fallbacks for zero-valued jobs: a
// short steady-state window that keeps a default job cheap while still
// measuring something.
const (
	defaultJobWarmup  = 500
	defaultJobMeasure = 2000
	defaultJobDrain   = 20000
)

// Canonical returns the job with every default applied explicitly —
// two jobs describing the same simulation canonicalize to equal
// structs, the basis of the sweep service's dedupe key. Parallel is
// cleared: it selects an execution strategy with bit-identical results,
// not a different experiment.
func (j TrafficJob) Canonical() TrafficJob {
	if j.Width == 0 {
		j.Width = 8
	}
	if j.Height == 0 {
		j.Height = 8
	}
	d := noc.Defaults(j.Width, j.Height)
	if j.FlitBits == 0 {
		j.FlitBits = d.FlitBits
	}
	if j.BufDepth == 0 {
		j.BufDepth = d.BufDepth
	}
	if j.RouteCycles == 0 {
		j.RouteCycles = d.RouteCycles
	}
	if j.ClockMHz == 0 {
		j.ClockMHz = d.ClockMHz
	}
	if j.Routing == "" {
		j.Routing = "xy"
	}
	if j.Pattern == "" {
		j.Pattern = "uniform"
	}
	if j.Pattern == "hotspot" && len(j.Hotspots) == 0 {
		// Lift the legacy single-spot form into the weighted set, so
		// both forms of the same experiment share one dedupe identity.
		// A zero fraction is the legacy spelling of uniform traffic.
		if j.HotspotFraction == 0 {
			j.Pattern = "uniform"
		} else {
			j.Hotspots = []traffic.HotspotSpec{{X: j.HotspotX, Y: j.HotspotY, Weight: j.HotspotFraction}}
		}
		j.HotspotX, j.HotspotY, j.HotspotFraction = 0, 0, 0
	}
	if j.Pattern == "bursty" || j.BurstLen != 0 || j.BurstPeak != 0 {
		if j.BurstLen == 0 {
			j.BurstLen = 8
		}
		if j.BurstPeak == 0 {
			j.BurstPeak = 0.5
		}
	}
	if j.PayloadFlits == 0 {
		j.PayloadFlits = 8
	}
	if j.Warmup == 0 {
		j.Warmup = defaultJobWarmup
	}
	if j.Measure == 0 {
		j.Measure = defaultJobMeasure
	}
	if j.Drain == 0 {
		j.Drain = defaultJobDrain
	}
	if j.QueueCap == 0 {
		j.QueueCap = 64
	}
	if j.Domains == 0 {
		j.Domains = 1
	}
	j.Parallel = false
	return j
}

// routings maps routing names to algorithms. Names, not function
// pointers, are the job-level identity: they serialize and compare.
var routings = map[string]noc.RoutingFunc{
	"xy":        noc.RouteXY,
	"yx":        noc.RouteYX,
	"westfirst": noc.RouteWestFirst,
}

// NoCConfig resolves the job's mesh configuration.
func (j TrafficJob) NoCConfig() (noc.Config, error) {
	j = j.Canonical()
	routing, ok := routings[j.Routing]
	if !ok {
		return noc.Config{}, fmt.Errorf("experiments: unknown routing %q", j.Routing)
	}
	return noc.Config{
		Width: j.Width, Height: j.Height,
		FlitBits: j.FlitBits, BufDepth: j.BufDepth,
		RouteCycles: j.RouteCycles, Routing: routing,
		ClockMHz: j.ClockMHz,
	}, nil
}

// patternSpec assembles the traffic pattern spec of the (canonical)
// job. Pattern-parameter validation lives in traffic.PatternSpec
// .Validate, reached through Config.Validate.
func (j TrafficJob) patternSpec() traffic.PatternSpec {
	s := traffic.PatternSpec{
		Name:             j.Pattern,
		Hotspots:         j.Hotspots,
		Trace:            j.Trace,
		Group:            j.Multicast,
		MulticastUnicast: j.MulticastUnicast,
	}
	if j.BurstLen != 0 || j.BurstPeak != 0 {
		s.Burst = &traffic.BurstSpec{Len: j.BurstLen, Peak: j.BurstPeak}
	}
	return s
}

// Validate reports the first reason the job cannot run, nil when it is
// well-formed. The sweep service maps a non-nil result to a client
// error (HTTP 400) at submission time, before a worker is spent on it.
func (j TrafficJob) Validate() error {
	c := j.Canonical()
	ncfg, err := c.NoCConfig()
	if err != nil {
		return err
	}
	return c.trafficConfig().Validate(ncfg)
}

// trafficConfig assembles the traffic.Config for the (canonical) job.
// Mesh-dependent pattern checks run in traffic.Config.Validate.
func (j TrafficJob) trafficConfig() traffic.Config {
	domains := j.Domains
	if domains == 1 {
		domains = 0
	}
	return traffic.Config{
		Spec: j.patternSpec(), Rate: j.Rate, PayloadFlits: j.PayloadFlits,
		Seed: j.Seed, Warmup: j.Warmup, Measure: j.Measure, Drain: j.Drain,
		QueueCap: j.QueueCap, Domains: domains, Parallel: j.Parallel,
	}
}

// Run executes the job: an independent sim.Clock (or sharded Group),
// mesh and injector set per call, so any number of jobs run
// concurrently without sharing simulator state. ctx bounds the run in
// wall-clock time and maxCycles (0 = unbounded) in simulated time; both
// surface as errors from the kernel's cancellation hook, never as hangs.
func (j TrafficJob) Run(ctx context.Context, maxCycles uint64) (traffic.Result, error) {
	c := j.Canonical()
	c.Parallel = j.Parallel // execution strategy is the caller's choice
	ncfg, err := c.NoCConfig()
	if err != nil {
		return traffic.Result{}, err
	}
	tcfg := c.trafficConfig()
	tcfg.Ctx = ctx
	tcfg.MaxCycles = maxCycles
	return traffic.Run(ncfg, tcfg)
}

package experiments

import (
	"strings"
	"testing"
)

// TestAllSectionsRun executes every experiment end to end; each section
// carries its own internal assertions (mismatches return errors).
func TestAllSectionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short (race CI) runs")
	}
	for _, s := range All() {
		t.Run(s.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := s.Run(&sb); err != nil {
				t.Fatalf("%s failed: %v", s.ID, err)
			}
			out := sb.String()
			if !strings.Contains(out, "|") {
				t.Errorf("%s produced no table:\n%s", s.ID, out)
			}
		})
	}
}

// TestReportIsComplete checks the full report contains every section
// header and the regeneration note.
func TestReportIsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short (race CI) runs")
	}
	var sb strings.Builder
	if err := Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, s := range All() {
		if !strings.Contains(out, "## "+s.ID+":") {
			t.Errorf("report missing section %s", s.ID)
		}
	}
	if !strings.Contains(out, "cmd/experiments") {
		t.Error("report missing regeneration note")
	}
}

// TestReportDeterminism: two runs must produce byte-identical output
// (fixed seeds, no time dependence).
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short (race CI) runs")
	}
	var a, b strings.Builder
	if err := Report(&a); err != nil {
		t.Fatal(err)
	}
	if err := Report(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("report is not deterministic")
	}
}

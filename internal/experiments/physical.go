package experiments

import (
	"fmt"
	"io"

	"repro/internal/area"
	"repro/internal/floorplan"
	"repro/internal/sim"
)

// E4DeviceUtilization reproduces the §3 resource figures.
func E4DeviceUtilization(w io.Writer) error {
	inv := area.MultiNoC()
	u := inv.Total().Utilization(inv.Device)
	fmt.Fprintln(w, "Paper: \"The MultiNoC system uses 98% of the available slices and 78% of the LUTs\".")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "```")
	fmt.Fprint(w, inv.String())
	fmt.Fprintln(w, "```")
	fmt.Fprintf(w, "\n| resource | paper | model |\n|---|---|---|\n")
	fmt.Fprintf(w, "| slices | 98%% | %.1f%% |\n", 100*u.Slices)
	fmt.Fprintf(w, "| LUTs | 78%% | %.1f%% |\n", 100*u.LUTs)
	fmt.Fprintf(w, "| BlockRAMs | 12 of 14 (3 memories x 4 banks) | %d of %d |\n",
		inv.Total().BlockRAMs, inv.Device.Capacity.BlockRAMs)
	fmt.Fprintf(w, "\nNoC share of the prototype: %.0f%%  — \"the NoC area can be seen to be an important part of the design\".\n",
		100*inv.NoCFraction())
	return nil
}

// E5NoCAreaFraction reproduces the scalability claim: the NoC share
// drops below 10%/5% for large systems with richer IPs.
func E5NoCAreaFraction(w io.Writer) error {
	router := area.Router(8, 2).Slices
	fmt.Fprintln(w, "Paper: router area constant; for 10x10-class systems the NoC becomes \"typically less")
	fmt.Fprintln(w, "than 10 or 5%\" of the total as the IPs grow. NoC slice share vs IP size:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| IP size (x router area) | 2x2 | 4x4 | 10x10 |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, mult := range []int{1, 2, 5, 10, 20} {
		fmt.Fprintf(w, "| %dx |", mult)
		for _, n := range []int{2, 4, 10} {
			f := area.Scaled(n, n, mult*router, area.XC2V3000).NoCFraction()
			fmt.Fprintf(w, " %.1f%% |", 100*f)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nThe share depends only on the router:IP area ratio — 10x-router IPs put the NoC")
	fmt.Fprintln(w, "below 10%, 20x below 5%, matching §3. (MultiNoC's own IPs average ~2x, hence its ~49%.)")
	return nil
}

// E6Floorplan reruns the §3 floorplanning exercise.
func E6Floorplan(w io.Writer) error {
	p := floorplan.MultiNoC()
	r := sim.NewRand(7)
	sum := 0.0
	const n = 30
	for i := 0; i < n; i++ {
		pl, err := p.RandomPlacement(r)
		if err != nil {
			return err
		}
		sum += p.Cost(pl)
	}
	res, err := p.Anneal(42, 20000)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Paper: synthesis options alone could not close the 98-percent-full design; manual")
	fmt.Fprintln(w, "floorplanning (Figure 7) was required. Annealed wirelength vs random placement:")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| placement | HPWL cost |\n|---|---|\n")
	fmt.Fprintf(w, "| random (mean of %d) | %.1f |\n", n, sum/n)
	fmt.Fprintf(w, "| annealed | %.1f (%.0f%% lower) |\n", res.Cost, 100*(1-res.Cost/(sum/n)))
	fmt.Fprintln(w, "\nAnnealed layout (N=NoC, P=processors, M=memory, S=serial, ':'=BlockRAM column, pads bottom-left):")
	fmt.Fprintln(w, "```")
	fmt.Fprint(w, p.Render(res.Placement))
	fmt.Fprintln(w, "```")
	fmt.Fprintln(w, "The optimizer independently rediscovers the Figure 7 reasoning: serial at the pad")
	fmt.Fprintln(w, "corner, processors and memory on the BlockRAM columns, NoC centred.")
	return nil
}

package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/traffic"
)

func TestTrafficJobCanonicalIsStable(t *testing.T) {
	// Canonicalization is idempotent and erases the execution-strategy
	// flag, so jobs differing only in Parallel share an identity.
	j := TrafficJob{Rate: 0.05, Seed: 3, Parallel: true}
	c := j.Canonical()
	if c != c.Canonical() {
		t.Fatalf("Canonical not idempotent: %+v vs %+v", c, c.Canonical())
	}
	if c.Parallel {
		t.Fatal("Canonical kept Parallel")
	}
	serial := TrafficJob{Rate: 0.05, Seed: 3}
	if c != serial.Canonical() {
		t.Fatalf("parallel and serial jobs canonicalize differently:\n%+v\n%+v", c, serial.Canonical())
	}
}

func TestTrafficJobSurvivesJSONRoundTrip(t *testing.T) {
	j := TrafficJob{
		Width: 6, Height: 4, Routing: "yx", Pattern: "hotspot",
		HotspotX: 2, HotspotY: 1, HotspotFraction: 0.3,
		Rate: 0.08, PayloadFlits: 4, Seed: 42, Measure: 1500, Domains: 2,
	}
	bs, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back TrafficJob
	if err := json.Unmarshal(bs, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != j {
		t.Fatalf("round trip changed the job:\n got %+v\nwant %+v", back, j)
	}
}

func TestTrafficJobValidate(t *testing.T) {
	if err := (TrafficJob{Rate: 0.05, Seed: 1}).Validate(); err != nil {
		t.Fatalf("default job rejected: %v", err)
	}
	bad := []TrafficJob{
		{Rate: -0.1},
		{Rate: 0.05, Width: -3},
		{Rate: 0.05, Width: 40},
		{Rate: 0.05, Routing: "zigzag"},
		{Rate: 0.05, Pattern: "nope"},
		{Rate: 0.05, Pattern: "hotspot", HotspotX: 99},
		{Rate: 0.05, Pattern: "hotspot", HotspotFraction: 2},
		{Rate: 0.05, Measure: -5},
		{Rate: 0.05, Domains: 100},
		{Rate: 0.05, FlitBits: 13},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, j)
		}
	}
}

func TestTrafficJobRunMatchesDirectTrafficRun(t *testing.T) {
	j := TrafficJob{
		Width: 4, Height: 4, Rate: 0.05, PayloadFlits: 4, Seed: 9,
		Warmup: 200, Measure: 1000, Drain: 5000,
	}
	got, err := j.Run(context.Background(), 0)
	if err != nil {
		t.Fatalf("job run: %v", err)
	}
	ncfg, err := j.NoCConfig()
	if err != nil {
		t.Fatalf("NoCConfig: %v", err)
	}
	want, err := traffic.Run(ncfg, traffic.Config{
		Rate: 0.05, PayloadFlits: 4, Seed: 9,
		Warmup: 200, Measure: 1000, Drain: 5000,
	})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if got != want {
		t.Fatalf("adapter diverged from direct run:\n got %+v\nwant %+v", got, want)
	}
}

func TestTrafficJobRunHonoursBudgets(t *testing.T) {
	j := TrafficJob{Width: 8, Height: 8, Rate: 0.05, Seed: 2, Measure: 1_000_000}
	if _, err := j.Run(context.Background(), 3000); !errors.Is(err, traffic.ErrCycleBudget) {
		t.Fatalf("cycle budget: Run = %v, want ErrCycleBudget", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j.Run(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("wall clock: Run = %v, want context.Canceled", err)
	}
}

package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/traffic"
)

func TestTrafficJobCanonicalIsStable(t *testing.T) {
	// Canonicalization is idempotent and erases the execution-strategy
	// flag, so jobs differing only in Parallel share an identity.
	j := TrafficJob{Rate: 0.05, Seed: 3, Parallel: true}
	c := j.Canonical()
	if !reflect.DeepEqual(c, c.Canonical()) {
		t.Fatalf("Canonical not idempotent: %+v vs %+v", c, c.Canonical())
	}
	if c.Parallel {
		t.Fatal("Canonical kept Parallel")
	}
	serial := TrafficJob{Rate: 0.05, Seed: 3}
	if !reflect.DeepEqual(c, serial.Canonical()) {
		t.Fatalf("parallel and serial jobs canonicalize differently:\n%+v\n%+v", c, serial.Canonical())
	}
	// The legacy single-spot hotspot form and its weighted spelling
	// share a canonical identity, and the burst fields default for
	// bursty jobs — Canonical stays idempotent through both rewrites.
	legacy := TrafficJob{Rate: 0.05, Pattern: "hotspot", HotspotX: 2, HotspotY: 1, HotspotFraction: 0.3}
	weighted := TrafficJob{Rate: 0.05, Pattern: "hotspot",
		Hotspots: []traffic.HotspotSpec{{X: 2, Y: 1, Weight: 0.3}}}
	if !reflect.DeepEqual(legacy.Canonical(), weighted.Canonical()) {
		t.Fatalf("hotspot forms canonicalize differently:\n%+v\n%+v",
			legacy.Canonical(), weighted.Canonical())
	}
	bursty := (TrafficJob{Rate: 0.05, Pattern: "bursty"}).Canonical()
	if bursty.BurstLen != 8 || bursty.BurstPeak != 0.5 {
		t.Fatalf("bursty job missing burst defaults: %+v", bursty)
	}
	if !reflect.DeepEqual(bursty, bursty.Canonical()) {
		t.Fatalf("Canonical not idempotent on bursty: %+v vs %+v", bursty, bursty.Canonical())
	}
}

func TestTrafficJobSurvivesJSONRoundTrip(t *testing.T) {
	j := TrafficJob{
		Width: 6, Height: 4, Routing: "yx", Pattern: "hotspot",
		HotspotX: 2, HotspotY: 1, HotspotFraction: 0.3,
		Rate: 0.08, PayloadFlits: 4, Seed: 42, Measure: 1500, Domains: 2,
	}
	bs, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back TrafficJob
	if err := json.Unmarshal(bs, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, j) {
		t.Fatalf("round trip changed the job:\n got %+v\nwant %+v", back, j)
	}
	// The pattern-library fields survive the round trip too.
	rich := TrafficJob{
		Rate: 0.05, Pattern: "multicast",
		Multicast:        []noc.Addr{{X: 1, Y: 2}, {X: 3, Y: 0}},
		MulticastUnicast: true,
		Hotspots:         []traffic.HotspotSpec{{X: 4, Y: 4, Weight: 0.2}},
		BurstLen:         6, BurstPeak: 0.4,
		Trace: []traffic.TraceEntry{{Cycle: 7, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Payload: 3}},
	}
	bs, err = json.Marshal(rich)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var richBack TrafficJob
	if err := json.Unmarshal(bs, &richBack); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(richBack, rich) {
		t.Fatalf("round trip changed the job:\n got %+v\nwant %+v", richBack, rich)
	}
}

func TestTrafficJobValidate(t *testing.T) {
	if err := (TrafficJob{Rate: 0.05, Seed: 1}).Validate(); err != nil {
		t.Fatalf("default job rejected: %v", err)
	}
	bad := []TrafficJob{
		{Rate: -0.1},
		{Rate: 0.05, Width: -3},
		{Rate: 0.05, Width: 40},
		{Rate: 0.05, Routing: "zigzag"},
		{Rate: 0.05, Pattern: "nope"},
		{Rate: 0.05, Pattern: "hotspot", HotspotX: 99, HotspotFraction: 0.3},
		{Rate: 0.05, Pattern: "hotspot", HotspotFraction: 2},
		{Rate: 0.05, Pattern: "hotspot", Hotspots: []traffic.HotspotSpec{
			{X: 1, Y: 1, Weight: 0.7}, {X: 2, Y: 2, Weight: 0.7}}},
		{Rate: 0.05, Pattern: "bitrev", Width: 6, Height: 6},
		{Rate: 0.05, Pattern: "bursty", BurstPeak: 0.05},
		{Rate: 0.05, Pattern: "bursty", BurstLen: 0.2},
		{Rate: 0.05, Pattern: "trace"},
		{Rate: 0.05, Pattern: "trace", Trace: []traffic.TraceEntry{
			{Cycle: 1, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 20, Y: 0}, Payload: 1}}},
		{Rate: 0.05, Pattern: "multicast"},
		{Rate: 0.05, Pattern: "multicast", Multicast: []noc.Addr{{X: 1, Y: 1}, {X: 1, Y: 1}}},
		{Rate: 0.05, Measure: -5},
		{Rate: 0.05, Domains: 100},
		{Rate: 0.05, FlitBits: 13},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, j)
		}
	}
	good := []TrafficJob{
		{Rate: 0.05, Pattern: "bitrev"},
		{Rate: 0.05, Pattern: "bursty"},
		{Rate: 0.05, Pattern: "transpose", BurstLen: 4, BurstPeak: 0.4},
		{Rate: 0.05, Pattern: "multicast", Multicast: []noc.Addr{{X: 1, Y: 1}, {X: 7, Y: 7}}},
		{Rate: 0.05, Pattern: "trace", Trace: []traffic.TraceEntry{
			{Cycle: 1, Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Payload: 1}}},
	}
	for i, j := range good {
		if err := j.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
}

// TestTrafficJobPatternLibraryRuns: each pattern name runs end to end
// through the job adapter and measures traffic.
func TestTrafficJobPatternLibraryRuns(t *testing.T) {
	jobs := []TrafficJob{
		{Width: 4, Height: 4, Rate: 0.04, PayloadFlits: 4, Seed: 3,
			Warmup: 100, Measure: 800, Drain: 10000, Pattern: "bitrev"},
		{Width: 4, Height: 4, Rate: 0.04, PayloadFlits: 4, Seed: 3,
			Warmup: 100, Measure: 800, Drain: 10000, Pattern: "bursty"},
		{Width: 4, Height: 4, Rate: 0.02, PayloadFlits: 4, Seed: 3,
			Warmup: 100, Measure: 800, Drain: 10000, Pattern: "multicast",
			Multicast: []noc.Addr{{X: 0, Y: 3}, {X: 3, Y: 0}}},
		{Width: 4, Height: 4, Rate: 0.04, PayloadFlits: 4, Seed: 3,
			Warmup: 100, Measure: 800, Drain: 10000, Pattern: "hotspot",
			Hotspots: []traffic.HotspotSpec{{X: 3, Y: 3, Weight: 0.25}, {X: 0, Y: 0, Weight: 0.25}}},
	}
	for _, j := range jobs {
		res, err := j.Run(context.Background(), 0)
		if err != nil {
			t.Fatalf("%s: %v", j.Pattern, err)
		}
		if res.MeasuredPackets == 0 {
			t.Errorf("%s: job measured no packets", j.Pattern)
		}
	}
}

func TestTrafficJobRunMatchesDirectTrafficRun(t *testing.T) {
	j := TrafficJob{
		Width: 4, Height: 4, Rate: 0.05, PayloadFlits: 4, Seed: 9,
		Warmup: 200, Measure: 1000, Drain: 5000,
	}
	got, err := j.Run(context.Background(), 0)
	if err != nil {
		t.Fatalf("job run: %v", err)
	}
	ncfg, err := j.NoCConfig()
	if err != nil {
		t.Fatalf("NoCConfig: %v", err)
	}
	want, err := traffic.Run(ncfg, traffic.Config{
		Rate: 0.05, PayloadFlits: 4, Seed: 9,
		Warmup: 200, Measure: 1000, Drain: 5000,
	})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if got != want {
		t.Fatalf("adapter diverged from direct run:\n got %+v\nwant %+v", got, want)
	}
}

func TestTrafficJobRunHonoursBudgets(t *testing.T) {
	j := TrafficJob{Width: 8, Height: 8, Rate: 0.05, Seed: 2, Measure: 1_000_000}
	if _, err := j.Run(context.Background(), 3000); !errors.Is(err, traffic.ErrCycleBudget) {
		t.Fatalf("cycle budget: Run = %v, want ErrCycleBudget", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := j.Run(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("wall clock: Run = %v, want context.Canceled", err)
	}
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/traffic"
)

// E1LatencyFormula compares measured zero-load latency against the
// paper's model latency = (sum Ri + P) x 2 with Ri = 7.
func E1LatencyFormula(w io.Writer) error {
	cfg := noc.Defaults(8, 8)
	fmt.Fprintln(w, "Paper: minimal latency = (sum Ri + P) x 2, Ri >= 7 -> 14*hops + 2*P cycles.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| hops | payload flits | formula | measured | diff |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	worst := int64(0)
	for _, hops := range []int{1, 2, 4, 8} {
		for _, pay := range []int{4, 16, 64} {
			src := noc.Addr{X: 0, Y: 0}
			dst := noc.Addr{X: hops - 1, Y: 0}
			got, err := traffic.ProbeLatency(cfg, src, dst, pay)
			if err != nil {
				return err
			}
			want := noc.FormulaLatency(cfg, noc.HopCount(src, dst), pay+2)
			diff := int64(got) - int64(want)
			if diff < 0 && -diff > worst || diff > worst {
				worst = diff
				if worst < 0 {
					worst = -worst
				}
			}
			fmt.Fprintf(w, "| %d | %d | %d | %d | %+d |\n",
				noc.HopCount(src, dst), pay, want, got, diff)
		}
	}
	fmt.Fprintf(w, "\nMax |diff| = %d cycles (constant injection/ejection offset; slope matches the formula).\n", worst)
	return nil
}

// E2PeakThroughput reproduces the 1 Gbit/s router claim.
func E2PeakThroughput(w io.Writer) error {
	cfg := noc.Defaults(3, 3)
	res, err := traffic.PeakThroughput(cfg, 40)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Paper: 5 ports x 8 bits / 2 cycles @ 50 MHz = **1 Gbit/s** theoretical peak per router.\n\n")
	fmt.Fprintf(w, "| quantity | value |\n|---|---|\n")
	fmt.Fprintf(w, "| theoretical peak | %.3f Gbit/s |\n", res.TheoreticalGbps)
	fmt.Fprintf(w, "| measured (5 simultaneous connections, max packets) | %.3f Gbit/s |\n", res.MeasuredGbps)
	fmt.Fprintf(w, "| efficiency | %.1f%% |\n", 100*res.Efficiency)
	fmt.Fprintf(w, "| centre-router forwarding rate | %.3f flits/cycle (peak 2.5) |\n", res.FlitsPerCycle)
	fmt.Fprintln(w, "\nThe gap to 100% is per-packet header routing time (14 cycles per connection re-establishment).")
	return nil
}

// E3BufferDepth sweeps input buffer depth under saturating uniform
// load.
func E3BufferDepth(w io.Writer) error {
	fmt.Fprintln(w, "Paper: \"Larger buffers can provide enhanced NoC performance\"; MultiNoC uses")
	fmt.Fprintln(w, "2-flit buffers to fit the FPGA. Saturation throughput on a 4x4 mesh, uniform traffic:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| buffer depth | delivered (flits/cycle/node) | mean network latency | mean total latency |")
	fmt.Fprintln(w, "|---|---|---|---|")
	var base float64
	for _, depth := range []int{1, 2, 4, 8, 16} {
		cfg := noc.Defaults(4, 4)
		cfg.BufDepth = depth
		res, err := traffic.Run(cfg, traffic.Config{
			Rate: 0.40, PayloadFlits: 8, Seed: 11,
			Warmup: 3000, Measure: 10000, Drain: 30000,
		})
		if err != nil {
			return err
		}
		if depth == 1 {
			base = res.Delivered
		}
		fmt.Fprintf(w, "| %d | %.3f (%.2fx) | %.1f | %.1f |\n",
			depth, res.Delivered, res.Delivered/base,
			res.Latency.MeanCycles, res.Latency.MeanTotalCycles)
	}
	fmt.Fprintln(w, "\nDeeper buffers relieve wormhole head-of-line blocking: throughput doubles from depth 1 to 16.")
	return nil
}

// AblRouting compares the three routing algorithms under transpose
// traffic (which stresses dimension-ordered routing).
func AblRouting(w io.Writer) error {
	fmt.Fprintln(w, "Design choice (§2.1): deterministic XY. Alternatives under transpose traffic, 4x4, rate 0.15:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| routing | delivered | mean latency |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, tc := range []struct {
		name string
		fn   noc.RoutingFunc
	}{{"XY", noc.RouteXY}, {"YX", noc.RouteYX}, {"west-first", noc.RouteWestFirst}} {
		cfg := noc.Defaults(4, 4)
		cfg.Routing = tc.fn
		res, err := traffic.Run(cfg, traffic.Config{
			Pattern: traffic.Transpose, Rate: 0.15, PayloadFlits: 8, Seed: 5,
			Warmup: 3000, Measure: 10000, Drain: 30000,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %.3f | %.1f |\n", tc.name, res.Delivered, res.Latency.MeanCycles)
	}
	return nil
}

// AblFlitWidth shows peak bandwidth scaling with flit width.
func AblFlitWidth(w io.Writer) error {
	fmt.Fprintln(w, "Flit width trades wires for bandwidth (MultiNoC: 8 bits). Router peak at 50 MHz:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| flit bits | theoretical peak | measured |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, bits := range []int{8, 16, 32} {
		cfg := noc.Defaults(3, 3)
		cfg.FlitBits = bits
		res, err := traffic.PeakThroughput(cfg, 20)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %.2f Gbit/s | %.2f Gbit/s |\n", bits, res.TheoreticalGbps, res.MeasuredGbps)
	}
	return nil
}

// AblRouteCycles shows latency sensitivity to the per-hop routing time
// (the paper's Ri >= 7 means RouteCycles >= 14).
func AblRouteCycles(w io.Writer) error {
	fmt.Fprintln(w, "Zero-load latency across 8 hops, 16-flit payload, as the per-hop routing time varies:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| RouteCycles (2 x Ri) | measured latency |")
	fmt.Fprintln(w, "|---|---|")
	for _, rc := range []int{6, 10, 14, 20, 28} {
		cfg := noc.Defaults(8, 1)
		cfg.RouteCycles = rc
		got, err := traffic.ProbeLatency(cfg, noc.Addr{X: 0, Y: 0}, noc.Addr{X: 7, Y: 0}, 16)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d |\n", rc, got)
	}
	fmt.Fprintln(w, "\nLatency is linear in the routing time with slope = hop count, as the formula predicts.")
	return nil
}

// AblBaud measures host download time against the serial divisor (the
// paper's "low cost, low performance external communication" choice).
func AblBaud(w io.Writer) error {
	fmt.Fprintln(w, "Cycles to download a 64-word program over RS-232 vs divisor (cycles/bit):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| divisor | cycles | cycles/byte |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, div := range []int{8, 16, 32, 64} {
		cfg := defaultSystem()
		cfg.SerialDiv = div
		sys, err := core.New(cfg)
		if err != nil {
			return err
		}
		if err := sys.Boot(); err != nil {
			return err
		}
		words := make([]uint16, 64)
		start := sys.Clk.Cycle()
		if err := sys.Host.WriteMemory(noc.Addr{X: 0, Y: 1}, 0, words); err != nil {
			return err
		}
		elapsed := sys.Clk.Cycle() - start
		// Frame: 5 header bytes + 128 data bytes.
		fmt.Fprintf(w, "| %d | %d | %.0f |\n", div, elapsed, float64(elapsed)/133)
	}
	fmt.Fprintln(w, "\nDownload time scales linearly with the bit period: the host link, not the NoC,")
	fmt.Fprintln(w, "bounds system fill time — the paper's motivation for suggesting USB/PCI/Firewire.")
	return nil
}

func defaultSystem() core.Config { return core.Default() }

package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/noc"
	"repro/internal/r8"
	"repro/internal/sim"
)

func bootedSystem() (*core.System, error) {
	sys, err := core.New(core.Default())
	if err != nil {
		return nil, err
	}
	if err := sys.Boot(); err != nil {
		return nil, err
	}
	return sys, nil
}

// E7HostRoundTrips measures the Figure 9 debug operations across the
// full RS-232 + NoC path.
func E7HostRoundTrips(w io.Writer) error {
	sys, err := bootedSystem()
	if err != nil {
		return err
	}
	memAddr := noc.Addr{X: 1, Y: 1}
	div := 16
	fmt.Fprintf(w, "Serial divisor %d cycles/bit (1 byte = %d cycles on the wire).\n\n", div, 10*div)
	fmt.Fprintln(w, "| operation | cycles | wire bytes |")
	fmt.Fprintln(w, "|---|---|---|")

	measure := func(name string, bytes int, f func() error) error {
		start := sys.Clk.Cycle()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "| %s | %d | %d |\n", name, sys.Clk.Cycle()-start, bytes)
		return nil
	}
	data := make([]uint16, 16)
	for i := range data {
		data[i] = uint16(i)
	}
	if err := measure("write 16 words to remote memory", 5+32, func() error {
		return sys.Host.WriteMemory(memAddr, 0x0100, data)
	}); err != nil {
		return err
	}
	if err := measure("read 16 words back (round trip)", 5+5+32, func() error {
		words, err := sys.ReadMemory(memAddr, 0x0100, 16)
		if err != nil {
			return err
		}
		for i, v := range words {
			if v != data[i] {
				return fmt.Errorf("readback mismatch at %d", i)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Printf round trip: load a one-character program and wait for the
	// character to reach the host monitor.
	if _, err := sys.LoadProgramDirect(1, `
		LDI R1, 0xFFFF
		CLR R0
		LDI R2, '*'
		ST R2, R1, R0
		HALT`); err != nil {
		return err
	}
	if err := measure("activate P1 + printf('*') to monitor", 2+4, func() error {
		if err := sys.Activate(1); err != nil {
			return err
		}
		return sys.Host.RunUntil(func() bool { return sys.Output(1) == "*" }, 1_000_000)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThe serial line dominates every operation (160 cycles/byte), matching the paper's")
	fmt.Fprintln(w, "observation that the low-cost RS-232 interface is the system's performance limit.")
	return nil
}

// E8EdgeDetect reproduces Figure 10: parallel Sobel across the two
// processors, validated against the golden reference.
func E8EdgeDetect(w io.Writer) error {
	img := edge.NewImage(16, 18)
	r := sim.NewRand(5)
	for y := range img {
		for x := range img[y] {
			v := uint8(0)
			if x > 8 {
				v = 200
			}
			img[y][x] = v + uint8(r.Intn(16))
		}
	}
	want := edge.Sobel(img)
	cycles := map[int]uint64{}
	for _, n := range []int{1, 2} {
		sys, err := bootedSystem()
		if err != nil {
			return err
		}
		d := edge.NewDriver(sys, edge.Direct, 16)
		procs := []int{1, 2}[:n]
		if err := d.LoadKernels(procs...); err != nil {
			return err
		}
		got, c, err := d.Process(img, procs...)
		if err != nil {
			return err
		}
		if !got.Equal(want) {
			return fmt.Errorf("%d-processor result diverges from golden Sobel", n)
		}
		cycles[n] = c
	}
	fmt.Fprintln(w, "16x18 image, line-per-processor distribution, results verified against golden Sobel.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| processors | cycles (compute-bound, direct line transfer) | speedup |")
	fmt.Fprintln(w, "|---|---|---|")
	fmt.Fprintf(w, "| 1 | %d | 1.00x |\n", cycles[1])
	fmt.Fprintf(w, "| 2 | %d | %.2fx |\n", cycles[2], float64(cycles[1])/float64(cycles[2]))
	fmt.Fprintln(w, "\nOver the RS-232 path the host link serializes line transfers (E7), so the paper's")
	fmt.Fprintln(w, "GUI demo gains little from the second CPU; with line transfer off the critical path")
	fmt.Fprintln(w, "the two processors deliver near-linear speedup.")
	return nil
}

const pingPongRounds = 20

// E9WaitNotify measures the §2.4 synchronization primitive.
func E9WaitNotify(w io.Writer) error {
	sys, err := bootedSystem()
	if err != nil {
		return err
	}
	p1 := fmt.Sprintf(`
		LDI R5, %d
		CLR R1
	loop:	LDI R2, 0xFFFD
		LDI R3, 2
		ST R3, R1, R2    ; notify processor 2
		LDI R2, 0xFFFE
		ST R3, R1, R2    ; wait for processor 2
		DEC R5
		JMPNZ loop
		HALT`, pingPongRounds)
	p2 := fmt.Sprintf(`
		LDI R5, %d
		CLR R1
		LDI R3, 1
	loop:	LDI R2, 0xFFFE
		ST R3, R1, R2    ; wait for processor 1
		LDI R2, 0xFFFD
		ST R3, R1, R2    ; notify processor 1
		DEC R5
		JMPNZ loop
		HALT`, pingPongRounds)
	if _, err := sys.LoadProgramDirect(1, p1); err != nil {
		return err
	}
	if _, err := sys.LoadProgramDirect(2, p2); err != nil {
		return err
	}
	if err := sys.Activate(2); err != nil {
		return err
	}
	if err := sys.Activate(1); err != nil {
		return err
	}
	start := sys.Clk.Cycle()
	if err := sys.RunUntilHalted(10_000_000, 1, 2); err != nil {
		return err
	}
	total := sys.Clk.Cycle() - start
	perRound := float64(total) / pingPongRounds
	st1, st2 := sys.Proc(1).Stats(), sys.Proc(2).Stats()
	fmt.Fprintf(w, "%d notify/wait ping-pong rounds between P1 (router 01) and P2 (router 10):\n\n", pingPongRounds)
	fmt.Fprintf(w, "| quantity | value |\n|---|---|\n")
	fmt.Fprintf(w, "| total cycles | %d |\n", total)
	fmt.Fprintf(w, "| cycles per round trip (2 notifies + 2 waits) | %.1f |\n", perRound)
	fmt.Fprintf(w, "| notifies sent P1/P2 | %d / %d |\n", st1.Notifies, st2.Notifies)
	fmt.Fprintf(w, "| waits that actually blocked P1/P2 | %d / %d |\n", st1.WaitsBlocked, st2.WaitsBlocked)
	fmt.Fprintln(w, "\nA round trip costs two 2-hop notify packets plus instruction overhead, i.e. the")
	fmt.Fprintln(w, "message-passing synchronization the paper chose \"due to the use of NoCs\".")
	return nil
}

// E10ServiceMatrix exercises and counts all nine packet services.
func E10ServiceMatrix(w io.Writer) error {
	sys, err := bootedSystem()
	if err != nil {
		return err
	}
	sys.Host.ScanfData = func(noc.Addr) uint16 { return 7 }
	// P1: scanf, printf, wait for 2. P2: remote write + notify 1.
	if _, err := sys.LoadProgramDirect(1, `
		LDI R1, 0xFFFF
		CLR R0
		LD R2, R1, R0    ; scanf -> scanf return
		ST R2, R1, R0    ; printf
		LDI R2, 0xFFFE
		LDI R3, 2
		ST R3, R0, R2    ; wait for processor 2
		HALT`); err != nil {
		return err
	}
	if _, err := sys.LoadProgramDirect(2, `
		LDI R1, 0x0800   ; remote memory window
		CLR R0
		LDI R2, 0x55
		ST R2, R1, R0    ; write in memory via NoC
		LD R3, R1, R0    ; read from memory + read return
		LDI R2, 0xFFFD
		LDI R3, 1
		ST R3, R0, R2    ; notify processor 1
		HALT`); err != nil {
		return err
	}
	if err := sys.Activate(1); err != nil { // activate processor service
		return err
	}
	// Let P1 reach its wait (scanf + printf first) before starting P2,
	// so the wait genuinely blocks and sends its registration packet.
	if err := sys.Clk.RunUntil(func() bool { return sys.Procs[0].Waiting() }, 10_000_000); err != nil {
		return fmt.Errorf("P1 never blocked: %w", err)
	}
	if err := sys.Activate(2); err != nil {
		return err
	}
	if err := sys.RunUntilHalted(10_000_000, 1, 2); err != nil {
		return err
	}
	st1, st2 := sys.Proc(1).Stats(), sys.Proc(2).Stats()
	mem := sys.Mems[0].Engine()
	fmt.Fprintln(w, "One combined scenario touches every packet format of §2.1:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| # | service | observed |")
	fmt.Fprintln(w, "|---|---|---|")
	fmt.Fprintf(w, "| 1 | read from memory | remote reads by P2: %d |\n", st2.RemoteReads)
	fmt.Fprintf(w, "| 2 | read return | memory IP reads served: %d |\n", mem.ReadsServed)
	fmt.Fprintf(w, "| 3 | write in memory | memory IP writes served: %d |\n", mem.WritesServed)
	fmt.Fprintf(w, "| 4 | activate processor | activations P1+P2: %d |\n", st1.Activations+st2.Activations)
	fmt.Fprintf(w, "| 5 | printf | P1 printfs: %d (host saw %q) |\n", st1.Printfs, sys.Output(1))
	fmt.Fprintf(w, "| 6 | scanf | P1 scanfs: %d |\n", st1.Scanfs)
	fmt.Fprintf(w, "| 7 | scanf return | P1 received the host's 7 and printed it |\n")
	fmt.Fprintf(w, "| 8 | notify | P2 notifies: %d, P1 received: %d |\n", st2.Notifies, st1.NotifiesRecv)
	fmt.Fprintf(w, "| 9 | wait | P1 blocked waits: %d, registrations seen by P2: %d |\n",
		st1.WaitsBlocked, st2.WaitRegsRecv)
	for name, bad := range map[string]bool{
		"read":     st2.RemoteReads == 0,
		"readret":  mem.ReadsServed == 0,
		"write":    mem.WritesServed == 0,
		"activate": st1.Activations == 0 || st2.Activations == 0,
		"printf":   st1.Printfs == 0,
		"scanf":    st1.Scanfs == 0,
		"notify":   st2.Notifies == 0 || st1.NotifiesRecv == 0,
		"wait":     st1.WaitsBlocked == 0 || st2.WaitRegsRecv == 0,
	} {
		if bad {
			return fmt.Errorf("service %s not exercised", name)
		}
	}
	return nil
}

// E11CPI verifies the paper's CPI range on the cycle-accurate core.
func E11CPI(w io.Writer) error {
	fmt.Fprintln(w, "Paper: R8 CPI between 2 and 4. Measured per instruction class (always-ready memory):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| class | representative | CPI |")
	fmt.Fprintln(w, "|---|---|---|")
	classes := []struct {
		name string
		inst r8.Inst
	}{
		{"ALU register", r8.Inst{Op: r8.ADD, Rt: 1, Rs1: 2, Rs2: 3}},
		{"ALU immediate", r8.Inst{Op: r8.ADDI, Rt: 1, Imm: 1}},
		{"shift/unary", r8.Inst{Op: r8.SL0, Rt: 1, Rs1: 2}},
		{"jump", r8.Inst{Op: r8.JMP, Disp: 0}},
		{"load", r8.Inst{Op: r8.LD, Rt: 1, Rs1: 2, Rs2: 3}},
		{"store", r8.Inst{Op: r8.ST, Rt: 1, Rs1: 2, Rs2: 3}},
		{"stack push", r8.Inst{Op: r8.PUSH, Rs1: 1}},
	}
	lo, hi := 100.0, 0.0
	for _, c := range classes {
		bus := &simpleRAM{}
		cpu := r8.New()
		cpu.SP = 0x0800
		word, err := c.inst.Encode()
		if err != nil {
			return err
		}
		for i := 0; i < 64; i++ {
			bus.m[i] = word
		}
		halt, _ := r8.Inst{Op: r8.HALT}.Encode()
		bus.m[64] = halt
		for i := 0; i < 10000 && !cpu.Halted(); i++ {
			cpu.Step(bus)
		}
		cpi := cpu.CPI()
		if cpi < lo {
			lo = cpi
		}
		if cpi > hi {
			hi = cpi
		}
		fmt.Fprintf(w, "| %s | `%s` | %.2f |\n", c.name, c.inst.Disasm(), cpi)
	}
	// Call/return measured separately (needs a matching RTS).
	bus := &simpleRAM{}
	jsr, _ := r8.Inst{Op: r8.JSR, Disp: 1}.Encode()
	halt, _ := r8.Inst{Op: r8.HALT}.Encode()
	rts, _ := r8.Inst{Op: r8.RTS}.Encode()
	bus.m[0], bus.m[1], bus.m[2] = jsr, halt, rts
	cpu := r8.New()
	cpu.SP = 0x0800
	for i := 0; i < 100 && !cpu.Halted(); i++ {
		cpu.Step(bus)
	}
	callCPI := float64(cpu.Cycles-2) / 2 // exclude HALT's 2 cycles
	fmt.Fprintf(w, "| call/return | `JSR` + `RTS` | %.2f |\n", callCPI)
	if callCPI > hi {
		hi = callCPI
	}
	fmt.Fprintf(w, "\nRange [%.2f, %.2f] — inside the paper's [2, 4].\n", lo, hi)
	return nil
}

type simpleRAM struct{ m [4096]uint16 }

func (r *simpleRAM) Read(a uint16) (uint16, bool) { return r.m[a%4096], true }
func (r *simpleRAM) Write(a, v uint16) bool       { r.m[a%4096] = v; return true }

// E12SeaOfProcessors scales the platform to a 4x4 mesh with 14
// processors and measures a fixed-size parallel reduction.
func E12SeaOfProcessors(w io.Writer) error {
	const totalWork = 840 // divisible by 1,2,4,7,14
	fmt.Fprintf(w, "4x4 mesh, up to 14 processors, fixed total work (%d-element sum split evenly):\n\n", totalWork)
	fmt.Fprintln(w, "| processors | cycles | speedup | efficiency |")
	fmt.Fprintln(w, "|---|---|---|---|")
	var base uint64
	for _, n := range []int{1, 2, 4, 7, 14} {
		cfg, err := core.Scaled(4, 4, 14, 1)
		if err != nil {
			return err
		}
		sys, err := core.New(cfg)
		if err != nil {
			return err
		}
		if err := sys.Boot(); err != nil {
			return err
		}
		chunk := totalWork / n
		src := fmt.Sprintf(`
			.equ N, %d
			CLR R0
			CLR R1           ; sum
			LDI R2, data
			CLR R3           ; i
		loop:	LD R4, R2, R3
			ADD R1, R1, R4
			INC R3
			LDI R5, N
			SUB R6, R3, R5
			JMPNZ loop
			LDI R7, 0x0100
			ST R1, R7, R0
			HALT
		data:	.space %d`, chunk, chunk)
		for id := 1; id <= n; id++ {
			prog, err := sys.LoadProgramDirect(id, src)
			if err != nil {
				return err
			}
			dataBase := prog.Symbols["data"]
			for i := 0; i < chunk; i++ {
				sys.Proc(id).Banks().Write(dataBase+uint16(i), 1)
			}
		}
		start := sys.Clk.Cycle()
		ids := make([]int, n)
		for id := 1; id <= n; id++ {
			if err := sys.Activate(id); err != nil {
				return err
			}
			ids[id-1] = id
		}
		if err := sys.RunUntilHalted(50_000_000, ids...); err != nil {
			return err
		}
		elapsed := sys.Clk.Cycle() - start
		// Verify every partial sum.
		for id := 1; id <= n; id++ {
			if got := sys.Proc(id).Banks().Read(0x0100); got != uint16(chunk) {
				return fmt.Errorf("%d procs: P%d sum = %d, want %d", n, id, got, chunk)
			}
		}
		if n == 1 {
			base = elapsed
		}
		sp := float64(base) / float64(elapsed)
		fmt.Fprintf(w, "| %d | %d | %.2fx | %.0f%% |\n", n, elapsed, sp, 100*sp/float64(n))
	}
	fmt.Fprintln(w, "\nActivation is serialized over the RS-232 link, so efficiency dips as the")
	fmt.Fprintln(w, "processor count approaches the per-activation serial cost — the platform itself")
	fmt.Fprintln(w, "scales, as §3 argues, while the host link remains the bottleneck.")
	return nil
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// A6KernelSchedule validates the activity-scheduled simulation kernel
// against the dense reference kernel and reports how much of the mesh
// it actually evaluates. Everything printed here is deterministic; the
// wall-clock speedup (which tracks the skipped-work column) is measured
// by BenchmarkKernelActivity in internal/noc and BenchmarkAblKernelSchedule
// at the repository root.
func A6KernelSchedule(w io.Writer) error {
	fmt.Fprintln(w, "The kernel keeps an active set: routers, links and endpoints sleep while idle")
	fmt.Fprintln(w, "and are woken by link activity, so mostly-idle meshes cost almost nothing per")
	fmt.Fprintln(w, "cycle. Both kernels must produce bit-identical experiments:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| mesh | rate | delivered (flits/cycle/node) | mean latency | dense == activity |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, tc := range []struct {
		w, h int
		rate float64
	}{
		{8, 8, 0.02},
		{16, 16, 0.02},
		{16, 16, 0.10},
	} {
		cfg := noc.Defaults(tc.w, tc.h)
		run := func(dense bool) (traffic.Result, error) {
			return traffic.Run(cfg, traffic.Config{
				Rate: tc.rate, PayloadFlits: 8, Seed: 7,
				Warmup: 500, Measure: 3000, Drain: 20000,
				DenseKernel: dense,
			})
		}
		dres, err := run(true)
		if err != nil {
			return err
		}
		ares, err := run(false)
		if err != nil {
			return err
		}
		if dres != ares {
			return fmt.Errorf("experiments: kernel results diverged on %dx%d rate %.2f", tc.w, tc.h, tc.rate)
		}
		fmt.Fprintf(w, "| %dx%d | %.2f | %.4f | %.1f | %v |\n",
			tc.w, tc.h, tc.rate, ares.Delivered, ares.Latency.MeanCycles, dres == ares)
	}

	fmt.Fprintln(w, "\nShare of the 16x16 mesh (256 routers + 256 endpoints) the activity kernel")
	fmt.Fprintln(w, "evaluates per cycle under uniform traffic — the dense kernel always runs all 512:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| rate (flits/cycle/node) | mean active components | evaluated |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, rate := range []float64{0.10, 0.02, 0.01, 0.005, 0.002, 0} {
		mean, total, err := meanActive(rate)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %.3f | %d / %d | %.0f%% |\n", rate, mean, total, 100*float64(mean)/float64(total))
	}
	fmt.Fprintln(w, "\nWormhole switching holds every router on a packet's path active while the")
	fmt.Fprintln(w, "packet drains (14 cycles per hop), so the mesh saturates its *activity* well")
	fmt.Fprintln(w, "below link saturation; the kernel's win is at the low rates — and in the idle")
	fmt.Fprintln(w, "phases of full-system runs, where the NoC sleeps while processors compute.")
	return nil
}

// meanActive drives a 16x16 mesh at the given rate and averages the
// kernel's active-set size over the steady-state window.
func meanActive(rate float64) (mean, total int, err error) {
	ncfg := noc.Defaults(16, 16)
	clk := sim.NewClock()
	// This harness injects from outside the clock once per step, so a
	// step must stay exactly one cycle: time warping would jump the
	// router-delay gaps and change the offered process.
	clk.SetTimeWarp(false)
	net, err := noc.New(clk, ncfg)
	if err != nil {
		return 0, 0, err
	}
	type node struct {
		ep  *noc.Endpoint
		rng *sim.Rand
	}
	var nodes []node
	for x := 0; x < ncfg.Width; x++ {
		for y := 0; y < ncfg.Height; y++ {
			ep, err := net.NewEndpoint(noc.Addr{X: x, Y: y})
			if err != nil {
				return 0, 0, err
			}
			nodes = append(nodes, node{ep, sim.NewRand(uint64(x*31 + y))})
		}
	}
	pktProb := rate / 10 // 8-flit payload + header + size
	var sum, n uint64
	for i := 0; i < 4000; i++ {
		for _, nd := range nodes {
			if nd.rng.Bool(pktProb) && nd.ep.QueuedFlits() < 64 {
				dst := traffic.Uniform(nd.ep.Addr(), nd.rng, ncfg)
				if _, err := nd.ep.Send(dst, make([]uint16, 8)); err != nil {
					return 0, 0, err
				}
			}
		}
		clk.Step()
		if i >= 1000 {
			sum += uint64(clk.ActiveCount())
			n++
		}
	}
	return int(sum / n), clk.ComponentCount(), nil
}

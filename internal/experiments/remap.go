package experiments

import (
	"fmt"
	"io"

	"repro/internal/noc"
	"repro/internal/remap"
	"repro/internal/sim"
)

// A5DynamicRemap demonstrates the paper's partial/dynamic
// reconfiguration direction (§5): measure traffic, re-place the IPs to
// shorten hot paths, and validate the gain by re-simulating.
func A5DynamicRemap(w io.Writer) error {
	badPairs := [][2]noc.Addr{
		{{X: 0, Y: 0}, {X: 3, Y: 3}},
		{{X: 3, Y: 0}, {X: 0, Y: 3}},
		{{X: 1, Y: 0}, {X: 2, Y: 3}},
		{{X: 0, Y: 1}, {X: 3, Y: 2}},
	}
	measure := func(pairs [][2]noc.Addr) (noc.LatencyStats, []*noc.PacketMeta, error) {
		clk := sim.NewClock()
		net, err := noc.New(clk, noc.Defaults(4, 4))
		if err != nil {
			return noc.LatencyStats{}, nil, err
		}
		eps := map[noc.Addr]*noc.Endpoint{}
		for _, pr := range pairs {
			for _, a := range pr {
				if eps[a] == nil {
					ep, err := net.NewEndpoint(a)
					if err != nil {
						return noc.LatencyStats{}, nil, err
					}
					eps[a] = ep
				}
			}
		}
		const packets = 30
		for i := 0; i < packets; i++ {
			for _, pr := range pairs {
				if _, err := eps[pr[0]].Send(pr[1], make([]uint16, 8)); err != nil {
					return noc.LatencyStats{}, nil, err
				}
				if _, err := eps[pr[1]].Send(pr[0], make([]uint16, 8)); err != nil {
					return noc.LatencyStats{}, nil, err
				}
			}
		}
		want := uint64(packets * len(pairs) * 2)
		if err := clk.RunUntil(func() bool { return net.Delivered() == want }, 10_000_000); err != nil {
			return noc.LatencyStats{}, nil, err
		}
		return noc.Latencies(net.Completed()), net.Completed(), nil
	}

	before, metas, err := measure(badPairs)
	if err != nil {
		return err
	}
	prob := &remap.Problem{Width: 4, Height: 4, Flows: remap.MatrixFromMetas(metas)}
	seen := map[string]bool{}
	for _, f := range prob.Flows {
		for _, n := range []string{f.From, f.To} {
			if !seen[n] {
				seen[n] = true
				prob.IPs = append(prob.IPs, n)
			}
		}
	}
	res, err := prob.Optimize(11, 20000)
	if err != nil {
		return err
	}
	var newPairs [][2]noc.Addr
	for _, pr := range badPairs {
		newPairs = append(newPairs, [2]noc.Addr{
			res.Placement[pr[0].String()], res.Placement[pr[1].String()],
		})
	}
	after, _, err := measure(newPairs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Future work (§5): \"IP cores position be modified in execution at run-time,")
	fmt.Fprintln(w, "favoring the IPs communication with improved throughput\". Four chatty IP pairs")
	fmt.Fprintln(w, "placed maximally far apart, then re-placed from the measured traffic matrix:")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| placement | mean latency | p95 |\n|---|---|---|\n")
	fmt.Fprintf(w, "| original (adversarial) | %.1f | %d |\n", before.MeanCycles, before.P95Cycles)
	fmt.Fprintf(w, "| remapped (annealed, predicted -%0.f%% comm. cost) | %.1f | %d |\n",
		100*res.Improvement, after.MeanCycles, after.P95Cycles)
	if after.MeanCycles >= before.MeanCycles {
		return fmt.Errorf("remap regressed latency")
	}
	return nil
}

// Package r8asm is the two-pass assembler for the R8 processor — the
// role the paper's "R8 Simulator environment" [3] plays in the original
// flow: it turns assembly source into the object code the host's serial
// software downloads into a processor's local memory (§4).
//
// Syntax summary:
//
//	; comment              -- also "//"
//	label:  ADD R1, R2, R3
//	        LDI R4, 0x1234  ; pseudo: LDH+LDL pair
//	        JMPNZ loop      ; label resolved to a relative displacement
//	        .org  0x0020
//	        .equ  TOP, 0x03FF
//	val:    .word 1, 2, 0xFFFF, 'A', TOP+1
//	msg:    .string "hi\n"
//	buf:    .space 16
//
// Numbers are decimal, 0x/0b prefixed, or 'c' character literals.
// Expressions support + and - over numbers, labels and .equ symbols.
package r8asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/r8"
)

// Program is assembled object code: one or more memory segments plus
// the symbol table.
type Program struct {
	Segments []Segment
	Symbols  map[string]uint16
}

// Segment is a contiguous run of words at Base.
type Segment struct {
	Base  uint16
	Words []uint16
}

// Size returns the total word count across segments.
func (p *Program) Size() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Words)
	}
	return n
}

// Flatten lays the program into a memory image of the given word
// capacity (1024 for a MultiNoC local memory), failing when a segment
// exceeds it.
func (p *Program) Flatten(capWords int) ([]uint16, error) {
	img := make([]uint16, capWords)
	for _, s := range p.Segments {
		if int(s.Base)+len(s.Words) > capWords {
			return nil, fmt.Errorf("r8asm: segment at %#04x (+%d words) exceeds memory of %d words",
				s.Base, len(s.Words), capWords)
		}
		copy(img[s.Base:], s.Words)
	}
	return img, nil
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Line int
	Msg  string
}

func (e Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// ErrorList collects every diagnostic of an assembly run.
type ErrorList []Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	parts := make([]string, 0, len(l))
	for _, e := range l {
		parts = append(parts, e.Error())
	}
	return strings.Join(parts, "\n")
}

type item struct {
	line  int
	label string
	mnem  string
	args  []string
	addr  uint16
	size  uint16 // words emitted
}

type assembler struct {
	items   []item
	symbols map[string]uint16
	errs    ErrorList
}

// Assemble translates source into a Program. On failure it returns an
// ErrorList covering every diagnosed line.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: make(map[string]uint16)}
	a.parse(src)
	a.layout()
	prog := a.emit()
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	return prog, nil
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, Error{Line: line, Msg: fmt.Sprintf(format, args...)})
}

// parse splits source lines into labelled items.
func (a *assembler) parse(src string) {
	for n, raw := range strings.Split(src, "\n") {
		line := n + 1
		text := strings.TrimSpace(stripComment(raw))
		if text == "" {
			continue
		}
		it := item{line: line}
		if i := strings.Index(text, ":"); i >= 0 && !strings.ContainsAny(text[:i], " \t\"") {
			it.label = strings.TrimSpace(text[:i])
			if !validSymbol(it.label) {
				a.errorf(line, "invalid label %q", it.label)
			}
			text = strings.TrimSpace(text[i+1:])
		}
		if text != "" {
			fields := strings.SplitN(text, " ", 2)
			it.mnem = strings.ToUpper(fields[0])
			if len(fields) == 2 {
				it.args = splitArgs(fields[1])
			}
		}
		a.items = append(a.items, it)
	}
}

// stripComment removes ';' and '//' comments, ignoring comment starters
// inside string or character literals (e.g. LDI R2, ';').
func stripComment(s string) string {
	inStr, inChr := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\' && (inStr || inChr):
			i++
		case c == '"' && !inChr:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChr = !inChr
		case inStr || inChr:
		case c == ';':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

// splitArgs splits on commas, respecting quoted strings.
func splitArgs(s string) []string {
	var args []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case c == '\\' && inStr && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == ',' && !inStr:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" || len(args) > 0 {
		args = append(args, t)
	}
	return args
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// layout is pass 1: assign addresses and define symbols.
func (a *assembler) layout() {
	pc := uint16(0)
	for i := range a.items {
		it := &a.items[i]
		it.addr = pc
		switch it.mnem {
		case ".ORG":
			if v, ok := a.evalArg(it, 0, "address"); ok {
				pc = v
				it.addr = pc
			}
		case ".EQU":
			if len(it.args) != 2 {
				a.errorf(it.line, ".equ wants NAME, value")
				continue
			}
			name := it.args[0]
			if !validSymbol(name) {
				a.errorf(it.line, "invalid .equ name %q", name)
				continue
			}
			if v, ok := a.eval(it.line, it.args[1]); ok {
				a.define(it.line, name, v)
			}
		case ".WORD":
			it.size = uint16(len(it.args))
		case ".SPACE":
			if v, ok := a.evalArg(it, 0, "size"); ok {
				it.size = v
			}
		case ".STRING":
			if len(it.args) != 1 {
				a.errorf(it.line, ".string wants one quoted argument")
				continue
			}
			s, err := strconv.Unquote(it.args[0])
			if err != nil {
				a.errorf(it.line, "bad string %s: %v", it.args[0], err)
				continue
			}
			it.size = uint16(len(s) + 1) // NUL terminated, one char per word
		case "LDI":
			it.size = 2
		case "":
			// label-only line
		default:
			if _, ok := r8.OpByName(it.mnem); !ok {
				if pseudoSize(it.mnem) < 0 {
					a.errorf(it.line, "unknown mnemonic %q", it.mnem)
					continue
				}
			}
			it.size = 1
		}
		if it.label != "" {
			a.define(it.line, it.label, it.addr)
		}
		pc += it.size
	}
}

// pseudoSize reports the word count of single-word pseudo-instructions,
// or -1 when the mnemonic is not a pseudo.
func pseudoSize(m string) int {
	switch m {
	case "CLR", "INC", "DEC":
		return 1
	}
	return -1
}

func (a *assembler) define(line int, name string, v uint16) {
	if _, dup := a.symbols[name]; dup {
		a.errorf(line, "symbol %q redefined", name)
		return
	}
	a.symbols[name] = v
}

// emit is pass 2: encode every item.
func (a *assembler) emit() *Program {
	var segs []Segment
	put := func(words ...uint16) {
		if len(segs) == 0 {
			segs = append(segs, Segment{Base: 0})
		}
		s := &segs[len(segs)-1]
		s.Words = append(s.Words, words...)
	}
	for i := range a.items {
		it := &a.items[i]
		switch it.mnem {
		case "", ".EQU":
		case ".ORG":
			segs = append(segs, Segment{Base: it.addr})
		case ".WORD":
			for j := range it.args {
				v, _ := a.evalArg(it, j, "word")
				put(v)
			}
		case ".SPACE":
			for j := uint16(0); j < it.size; j++ {
				put(0)
			}
		case ".STRING":
			if len(it.args) == 1 {
				if s, err := strconv.Unquote(it.args[0]); err == nil {
					for _, c := range []byte(s) {
						put(uint16(c))
					}
					put(0)
				}
			}
		default:
			a.emitInst(it, put)
		}
	}
	p := &Program{Symbols: a.symbols}
	for _, s := range segs {
		if len(s.Words) > 0 {
			p.Segments = append(p.Segments, s)
		}
	}
	sort.Slice(p.Segments, func(i, j int) bool { return p.Segments[i].Base < p.Segments[j].Base })
	// Overlap check.
	for i := 1; i < len(p.Segments); i++ {
		prev, cur := p.Segments[i-1], p.Segments[i]
		if int(prev.Base)+len(prev.Words) > int(cur.Base) {
			a.errorf(0, "segments at %#04x and %#04x overlap", prev.Base, cur.Base)
		}
	}
	return p
}

func (a *assembler) emitInst(it *item, put func(...uint16)) {
	switch it.mnem {
	case "LDI": // LDI rt, imm16 -> LDH + LDL
		rt, ok := a.reg(it, 0)
		if !ok {
			return
		}
		v, ok := a.evalArg(it, 1, "immediate")
		if !ok {
			return
		}
		hi, _ := r8.Inst{Op: r8.LDH, Rt: rt, Imm: uint8(v >> 8)}.Encode()
		lo, _ := r8.Inst{Op: r8.LDL, Rt: rt, Imm: uint8(v)}.Encode()
		put(hi, lo)
		return
	case "CLR": // CLR rt -> XOR rt, rt, rt
		rt, ok := a.reg(it, 0)
		if !ok {
			return
		}
		w, _ := r8.Inst{Op: r8.XOR, Rt: rt, Rs1: rt, Rs2: rt}.Encode()
		put(w)
		return
	case "INC": // INC rt -> ADDI rt, 1
		rt, ok := a.reg(it, 0)
		if !ok {
			return
		}
		w, _ := r8.Inst{Op: r8.ADDI, Rt: rt, Imm: 1}.Encode()
		put(w)
		return
	case "DEC": // DEC rt -> SUBI rt, 1
		rt, ok := a.reg(it, 0)
		if !ok {
			return
		}
		w, _ := r8.Inst{Op: r8.SUBI, Rt: rt, Imm: 1}.Encode()
		put(w)
		return
	}

	op, ok := r8.OpByName(it.mnem)
	if !ok {
		return // already diagnosed in layout
	}
	inst := r8.Inst{Op: op}
	want := func(n int) bool {
		if len(it.args) != n {
			a.errorf(it.line, "%s wants %d operand(s), got %d", it.mnem, n, len(it.args))
			return false
		}
		return true
	}
	switch op.Fmt() {
	case r8.FmtR:
		if !want(3) {
			return
		}
		var ok1, ok2, ok3 bool
		inst.Rt, ok1 = a.reg(it, 0)
		inst.Rs1, ok2 = a.reg(it, 1)
		inst.Rs2, ok3 = a.reg(it, 2)
		if !ok1 || !ok2 || !ok3 {
			return
		}
	case r8.FmtI:
		if !want(2) {
			return
		}
		rt, ok := a.reg(it, 0)
		if !ok {
			return
		}
		v, ok := a.evalArg(it, 1, "immediate")
		if !ok {
			return
		}
		if v > 0xFF {
			a.errorf(it.line, "immediate %d exceeds 8 bits (use LDI)", v)
			return
		}
		inst.Rt, inst.Imm = rt, uint8(v)
	case r8.FmtJ:
		if !want(1) {
			return
		}
		target, ok := a.evalArg(it, 0, "target")
		if !ok {
			return
		}
		disp := int(target) - int(it.addr) - 1
		if disp < -128 || disp > 127 {
			a.errorf(it.line, "jump target %#04x out of range from %#04x (disp %d)", target, it.addr, disp)
			return
		}
		inst.Disp = int8(disp)
	case r8.FmtU:
		if !want(2) {
			return
		}
		var ok1, ok2 bool
		inst.Rt, ok1 = a.reg(it, 0)
		inst.Rs1, ok2 = a.reg(it, 1)
		if !ok1 || !ok2 {
			return
		}
	case r8.FmtS:
		switch op {
		case r8.RTS, r8.NOP, r8.HALT:
			if !want(0) {
				return
			}
		case r8.PUSH, r8.LDSP, r8.JMPR, r8.JSRR:
			if !want(1) {
				return
			}
			rs, ok := a.reg(it, 0)
			if !ok {
				return
			}
			inst.Rs1 = rs
		case r8.POP, r8.RDSP:
			if !want(1) {
				return
			}
			rt, ok := a.reg(it, 0)
			if !ok {
				return
			}
			inst.Rt = rt
		}
	}
	w, err := inst.Encode()
	if err != nil {
		a.errorf(it.line, "%v", err)
		return
	}
	put(w)
}

func (a *assembler) reg(it *item, idx int) (int, bool) {
	if idx >= len(it.args) {
		a.errorf(it.line, "%s: missing register operand %d", it.mnem, idx+1)
		return 0, false
	}
	s := strings.ToUpper(it.args[idx])
	if !strings.HasPrefix(s, "R") {
		a.errorf(it.line, "%s: operand %q is not a register", it.mnem, it.args[idx])
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		a.errorf(it.line, "%s: bad register %q", it.mnem, it.args[idx])
		return 0, false
	}
	return n, true
}

func (a *assembler) evalArg(it *item, idx int, what string) (uint16, bool) {
	if idx >= len(it.args) {
		a.errorf(it.line, "%s: missing %s operand", it.mnem, what)
		return 0, false
	}
	return a.eval(it.line, it.args[idx])
}

// eval computes a +/- expression over numbers and symbols.
func (a *assembler) eval(line int, expr string) (uint16, bool) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		a.errorf(line, "empty expression")
		return 0, false
	}
	total := 0
	sign := 1
	tok := strings.Builder{}
	flush := func() bool {
		s := tok.String()
		tok.Reset()
		if s == "" {
			a.errorf(line, "malformed expression %q", expr)
			return false
		}
		v, ok := a.term(line, s)
		if !ok {
			return false
		}
		total += sign * int(v)
		return true
	}
	inQuote := false
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		if c == '\'' {
			inQuote = !inQuote
			tok.WriteByte(c)
			continue
		}
		if inQuote {
			// Spaces and signs inside a character literal are data.
			tok.WriteByte(c)
			continue
		}
		switch {
		case c == '+' || c == '-':
			if tok.Len() == 0 && c == '-' && sign == 1 && total == 0 && i == 0 {
				sign = -1
				continue
			}
			if !flush() {
				return 0, false
			}
			if c == '+' {
				sign = 1
			} else {
				sign = -1
			}
		case c == ' ' || c == '\t':
		default:
			tok.WriteByte(c)
		}
	}
	if !flush() {
		return 0, false
	}
	return uint16(total), true
}

func (a *assembler) term(line int, s string) (uint16, bool) {
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			a.errorf(line, "bad character literal %s", s)
			return 0, false
		}
		return uint16(body[0]), true
	}
	if v, err := strconv.ParseUint(strings.ToLower(s), 0, 17); err == nil {
		return uint16(v), true
	}
	if v, ok := a.symbols[s]; ok {
		return v, true
	}
	a.errorf(line, "undefined symbol %q", s)
	return 0, false
}

package r8asm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/r8"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble failed:\n%v", err)
	}
	return p
}

func words(t *testing.T, p *Program) []uint16 {
	t.Helper()
	if len(p.Segments) != 1 {
		t.Fatalf("want one segment, got %d", len(p.Segments))
	}
	return p.Segments[0].Words
}

func decode(t *testing.T, w uint16) r8.Inst {
	t.Helper()
	inst, err := r8.Decode(w)
	if err != nil {
		t.Fatalf("decode %#04x: %v", w, err)
	}
	return inst
}

func TestBasicInstructions(t *testing.T) {
	p := assemble(t, `
		ADD R1, R2, R3
		ADDI R4, 10
		MOV R5, R6
		PUSH R7
		POP R8
		RTS
		HALT
	`)
	ws := words(t, p)
	wantOps := []r8.Op{r8.ADD, r8.ADDI, r8.MOV, r8.PUSH, r8.POP, r8.RTS, r8.HALT}
	if len(ws) != len(wantOps) {
		t.Fatalf("got %d words, want %d", len(ws), len(wantOps))
	}
	for i, op := range wantOps {
		if got := decode(t, ws[i]).Op; got != op {
			t.Errorf("word %d: op %s, want %s", i, got, op)
		}
	}
	in := decode(t, ws[0])
	if in.Rt != 1 || in.Rs1 != 2 || in.Rs2 != 3 {
		t.Errorf("ADD fields: %+v", in)
	}
	if in = decode(t, ws[3]); in.Rs1 != 7 {
		t.Errorf("PUSH source = R%d, want R7", in.Rs1)
	}
	if in = decode(t, ws[4]); in.Rt != 8 {
		t.Errorf("POP target = R%d, want R8", in.Rt)
	}
}

func TestLabelsAndJumps(t *testing.T) {
	p := assemble(t, `
		CLR R1
loop:	ADDI R1, 1
		SUBI R2, 1
		JMPNZ loop
		HALT
	`)
	ws := words(t, p)
	jmp := decode(t, ws[3])
	if jmp.Op != r8.JMPNZ {
		t.Fatalf("op = %s", jmp.Op)
	}
	// loop is at 1, jump at 3: disp = 1 - 3 - 1 = -3.
	if jmp.Disp != -3 {
		t.Errorf("disp = %d, want -3", jmp.Disp)
	}
}

func TestForwardReference(t *testing.T) {
	p := assemble(t, `
		JMP end
		NOP
end:	HALT
	`)
	ws := words(t, p)
	if d := decode(t, ws[0]).Disp; d != 1 {
		t.Errorf("forward disp = %d, want 1", d)
	}
}

func TestLDIPseudo(t *testing.T) {
	p := assemble(t, "LDI R3, 0xABCD\nHALT")
	ws := words(t, p)
	hi, lo := decode(t, ws[0]), decode(t, ws[1])
	if hi.Op != r8.LDH || hi.Imm != 0xAB || hi.Rt != 3 {
		t.Errorf("LDI hi = %+v", hi)
	}
	if lo.Op != r8.LDL || lo.Imm != 0xCD || lo.Rt != 3 {
		t.Errorf("LDI lo = %+v", lo)
	}
}

func TestPseudos(t *testing.T) {
	p := assemble(t, "CLR R2\nINC R3\nDEC R4")
	ws := words(t, p)
	if in := decode(t, ws[0]); in.Op != r8.XOR || in.Rt != 2 || in.Rs1 != 2 || in.Rs2 != 2 {
		t.Errorf("CLR = %+v", in)
	}
	if in := decode(t, ws[1]); in.Op != r8.ADDI || in.Imm != 1 {
		t.Errorf("INC = %+v", in)
	}
	if in := decode(t, ws[2]); in.Op != r8.SUBI || in.Imm != 1 {
		t.Errorf("DEC = %+v", in)
	}
}

func TestDirectives(t *testing.T) {
	p := assemble(t, `
		.equ TOP, 0x03FF
		.equ NEXT, TOP+1
		NOP
		.org 0x0100
data:	.word 1, 2, 0xFFFF, 'A', NEXT
buf:	.space 3
msg:	.string "hi"
	`)
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(p.Segments))
	}
	if p.Symbols["data"] != 0x0100 {
		t.Errorf("data = %#04x", p.Symbols["data"])
	}
	if p.Symbols["buf"] != 0x0105 {
		t.Errorf("buf = %#04x", p.Symbols["buf"])
	}
	if p.Symbols["msg"] != 0x0108 {
		t.Errorf("msg = %#04x", p.Symbols["msg"])
	}
	seg := p.Segments[1]
	want := []uint16{1, 2, 0xFFFF, 'A', 0x0400, 0, 0, 0, 'h', 'i', 0}
	if len(seg.Words) != len(want) {
		t.Fatalf("segment words = %v", seg.Words)
	}
	for i, w := range want {
		if seg.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, seg.Words[i], w)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	p := assemble(t, `
		nop           ; semicolon comment
		add r1, r2, r3 // slash comment
	`)
	ws := words(t, p)
	if len(ws) != 2 {
		t.Fatalf("words = %d, want 2", len(ws))
	}
	if decode(t, ws[1]).Op != r8.ADD {
		t.Error("lower-case mnemonic not accepted")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "FROB R1", "unknown mnemonic"},
		{"bad register", "ADD R1, R99, R2", "bad register"},
		{"not a register", "ADD R1, 5, R2", "not a register"},
		{"wrong operand count", "ADD R1, R2", "wants 3 operand"},
		{"imm too big", "ADDI R1, 300", "exceeds 8 bits"},
		{"undefined symbol", "JMP nowhere", "undefined symbol"},
		{"redefined label", "a: NOP\na: NOP", "redefined"},
		{"jump out of range", "JMP far\n.org 0x200\nfar: NOP", "out of range"},
		{"overlap", "NOP\nNOP\n.org 0x0001\nNOP", "overlap"},
		{"bad string", `.string hi`, "bad string"},
		{"rts operands", "RTS R1", "wants 0 operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatal("assembled without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			var list ErrorList
			if !errors.As(err, &list) || len(list) == 0 {
				t.Errorf("error is not a populated ErrorList: %T", err)
			}
		})
	}
}

func TestMultipleErrorsReported(t *testing.T) {
	_, err := Assemble("FROB R1\nADD R1, R99, R2\nJMP nowhere")
	var list ErrorList
	if !errors.As(err, &list) {
		t.Fatalf("error type %T", err)
	}
	if len(list) != 3 {
		t.Errorf("got %d errors, want 3:\n%v", len(list), err)
	}
	if list[0].Line != 1 || list[1].Line != 2 || list[2].Line != 3 {
		t.Errorf("line numbers: %+v", list)
	}
}

func TestFlatten(t *testing.T) {
	p := assemble(t, "NOP\n.org 0x3FE\n.word 7, 8")
	img, err := p.Flatten(1024)
	if err != nil {
		t.Fatal(err)
	}
	if img[0x3FE] != 7 || img[0x3FF] != 8 {
		t.Errorf("flatten misplaced data: %v %v", img[0x3FE], img[0x3FF])
	}
	if _, err := p.Flatten(512); err == nil {
		t.Error("overflowing flatten accepted")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	p := assemble(t, `
		LDI R1, 0x1234
		HALT
		.org 0x0200
		.word 0xDEAD, 0xBEEF
	`)
	var buf bytes.Buffer
	if err := WriteObject(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ParseObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Segments) != len(p.Segments) {
		t.Fatalf("segments %d vs %d", len(q.Segments), len(p.Segments))
	}
	for i := range p.Segments {
		if q.Segments[i].Base != p.Segments[i].Base {
			t.Errorf("segment %d base %#x vs %#x", i, q.Segments[i].Base, p.Segments[i].Base)
		}
		if len(q.Segments[i].Words) != len(p.Segments[i].Words) {
			t.Fatalf("segment %d size mismatch", i)
		}
		for j := range p.Segments[i].Words {
			if q.Segments[i].Words[j] != p.Segments[i].Words[j] {
				t.Errorf("segment %d word %d: %#x vs %#x",
					i, j, q.Segments[i].Words[j], p.Segments[i].Words[j])
			}
		}
	}
}

func TestParseObjectErrors(t *testing.T) {
	for _, src := range []string{"@XYZ", "GGGG", "@0000\n123456"} {
		if _, err := ParseObject(strings.NewReader(src)); err == nil {
			t.Errorf("ParseObject(%q) succeeded", src)
		}
	}
}

func TestAssembledProgramRunsOnCPU(t *testing.T) {
	// End-to-end: assemble a 10-element sum, run it on the
	// cycle-accurate core, check memory.
	p := assemble(t, `
		.equ N, 10
		CLR R0          ; index base
		CLR R1          ; sum
		LDI R2, data
		CLR R3          ; i
loop:	LD R4, R2, R3   ; R4 = data[i]
		ADD R1, R1, R4
		INC R3
		LDI R5, N
		SUB R6, R3, R5
		JMPNZ loop
		LDI R7, result
		ST R1, R7, R0
		HALT
data:	.word 1,2,3,4,5,6,7,8,9,10
result:	.word 0
	`)
	img, err := p.Flatten(1024)
	if err != nil {
		t.Fatal(err)
	}
	mem := &testRAM{}
	copy(mem.m[:], img)
	cpu := r8.New()
	for i := 0; i < 10000 && !cpu.Halted(); i++ {
		cpu.Step(mem)
	}
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	if cpu.Err() != nil {
		t.Fatal(cpu.Err())
	}
	if got := mem.m[p.Symbols["result"]]; got != 55 {
		t.Errorf("result = %d, want 55", got)
	}
}

type testRAM struct{ m [1024]uint16 }

func (r *testRAM) Read(a uint16) (uint16, bool) { return r.m[a%1024], true }
func (r *testRAM) Write(a, v uint16) bool       { r.m[a%1024] = v; return true }

func TestCharacterLiteralEdgeCases(t *testing.T) {
	// Space, semicolon and slash literals must survive comment
	// stripping and expression evaluation.
	p := assemble(t, `
		LDI R2, ' '    ; trailing comment
		LDI R3, ';'
		LDI R4, '/'
		.word ' ', ';', '/'  // another comment
	`)
	ws := words(t, p)
	if lo := decode(t, ws[1]); lo.Imm != ' ' {
		t.Errorf("space literal = %d", lo.Imm)
	}
	if lo := decode(t, ws[3]); lo.Imm != ';' {
		t.Errorf("semicolon literal = %d", lo.Imm)
	}
	if lo := decode(t, ws[5]); lo.Imm != '/' {
		t.Errorf("slash literal = %d", lo.Imm)
	}
	if ws[6] != ' ' || ws[7] != ';' || ws[8] != '/' {
		t.Errorf("literal words = %v", ws[6:9])
	}
}

func TestCharLiteralInExpression(t *testing.T) {
	p := assemble(t, ".word 'A'+1, 'z'-'a'")
	ws := words(t, p)
	if ws[0] != 'B' {
		t.Errorf("'A'+1 = %d", ws[0])
	}
	if ws[1] != 25 {
		t.Errorf("'z'-'a' = %d", ws[1])
	}
}

func TestObjectFormatProperty(t *testing.T) {
	// Arbitrary word contents and segment bases must survive the
	// textual object round trip.
	if err := quick.Check(func(base uint16, raw []uint16) bool {
		if len(raw) == 0 {
			raw = []uint16{0}
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		p := &Program{Segments: []Segment{{Base: base, Words: raw}}}
		var buf bytes.Buffer
		if err := WriteObject(&buf, p); err != nil {
			return false
		}
		q, err := ParseObject(&buf)
		if err != nil || len(q.Segments) != 1 || q.Segments[0].Base != base {
			return false
		}
		if len(q.Segments[0].Words) != len(raw) {
			return false
		}
		for i := range raw {
			if q.Segments[0].Words[i] != raw[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

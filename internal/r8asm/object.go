package r8asm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/r8"
)

// WriteObject emits the program in the textual object format the host's
// serial software consumes (the "generated object code" text file of
// §4): '@hhhh' address records followed by one 4-digit hex word per
// line, with disassembly comments for readability.
func WriteObject(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# r8 object v1")
	for _, seg := range p.Segments {
		fmt.Fprintf(bw, "@%04X\n", seg.Base)
		for i, word := range seg.Words {
			fmt.Fprintf(bw, "%04X  ; %04X: %s\n", word, int(seg.Base)+i, r8.DisasmWord(word))
		}
	}
	return bw.Flush()
}

// ParseObject reads the textual object format back into a Program.
func ParseObject(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	p := &Program{Symbols: map[string]uint16{}}
	var cur *Segment
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexAny(text, "#;"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "@") {
			base, err := strconv.ParseUint(text[1:], 16, 16)
			if err != nil {
				return nil, fmt.Errorf("r8asm: object line %d: bad address %q", line, text)
			}
			p.Segments = append(p.Segments, Segment{Base: uint16(base)})
			cur = &p.Segments[len(p.Segments)-1]
			continue
		}
		v, err := strconv.ParseUint(text, 16, 16)
		if err != nil {
			return nil, fmt.Errorf("r8asm: object line %d: bad word %q", line, text)
		}
		if cur == nil {
			p.Segments = append(p.Segments, Segment{Base: 0})
			cur = &p.Segments[len(p.Segments)-1]
		}
		cur.Words = append(cur.Words, uint16(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("r8asm: reading object: %w", err)
	}
	return p, nil
}

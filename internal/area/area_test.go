package area

import (
	"math"
	"strings"
	"testing"
)

// TestE4DeviceUtilization is experiment E4: the paper reports that
// MultiNoC occupies 98% of the XC2S200E's slices and 78% of its LUTs.
func TestE4DeviceUtilization(t *testing.T) {
	inv := MultiNoC()
	u := inv.Total().Utilization(inv.Device)
	if math.Abs(u.Slices-0.98) > 0.005 {
		t.Errorf("slice utilization = %.3f, paper says 0.98", u.Slices)
	}
	if math.Abs(u.LUTs-0.78) > 0.005 {
		t.Errorf("LUT utilization = %.3f, paper says 0.78", u.LUTs)
	}
	if !inv.Total().Fits(inv.Device) {
		t.Error("calibrated system does not fit the device")
	}
	// Three memory IPs x 4 BlockRAMs on a 14-BRAM device.
	if got := inv.Total().BlockRAMs; got != 12 {
		t.Errorf("BlockRAMs = %d, want 12", got)
	}
}

func TestNoCIsImportantPartOfPrototype(t *testing.T) {
	// §3: "The NoC area can be seen to be an important part of the
	// design when compared to the other IPs."
	f := MultiNoC().NoCFraction()
	if f < 0.35 || f > 0.60 {
		t.Errorf("prototype NoC fraction = %.2f, expected a dominant share", f)
	}
}

// TestE5NoCAreaFraction is experiment E5: with constant router area and
// richer IPs, the NoC share of a 10x10 system drops below 10% (and 5%
// for still larger IPs), as §3 claims.
func TestE5NoCAreaFraction(t *testing.T) {
	router := Router(8, 2).Slices
	// An IP ten times the router's size on a 10x10 mesh.
	f10 := Scaled(10, 10, 10*router, XC2V3000).NoCFraction()
	if f10 >= 0.10 {
		t.Errorf("10x10 with 10x-router IPs: NoC fraction %.3f, want < 0.10", f10)
	}
	f20 := Scaled(10, 10, 20*router, XC2V3000).NoCFraction()
	if f20 >= 0.05 {
		t.Errorf("10x10 with 20x-router IPs: NoC fraction %.3f, want < 0.05", f20)
	}
	// Fraction must be independent of mesh size (router per IP is
	// constant), and monotone in IP size.
	f4 := Scaled(4, 4, 10*router, XC2V3000).NoCFraction()
	if math.Abs(f4-f10) > 1e-9 {
		t.Errorf("NoC fraction varies with mesh size: %.4f vs %.4f", f4, f10)
	}
	if f20 >= f10 {
		t.Error("NoC fraction not monotone in IP area")
	}
}

func TestRouterAreaConstantAcrossMeshSize(t *testing.T) {
	// "The router surface will remain constant": per-router cost must
	// not depend on how many routers a system has.
	r := Router(8, 2)
	for _, n := range []int{4, 16, 100} {
		inv := Scaled(int(math.Sqrt(float64(n))), int(math.Sqrt(float64(n))), 1000, XC2V3000)
		per := inv.Items[0].Total().Slices / inv.Items[0].Count
		if per != r.Slices {
			t.Errorf("n=%d: per-router slices %d, want %d", n, per, r.Slices)
		}
	}
}

func TestRouterScalesWithBuffersAndFlitWidth(t *testing.T) {
	base := Router(8, 2)
	deeper := Router(8, 8)
	if deeper.Slices <= base.Slices {
		t.Error("deeper buffers are not larger")
	}
	wider := Router(16, 2)
	if wider.Slices <= base.Slices {
		t.Error("wider flits are not larger")
	}
	if shallow := Router(8, 1); shallow.Slices != base.Slices {
		t.Error("sub-baseline depth should clamp to the base cost")
	}
}

func TestMemoryBlockRAMs(t *testing.T) {
	if got := Memory(1024, XC2S200E).BlockRAMs; got != 4 {
		t.Errorf("1K-word memory = %d BRAMs, want 4 (Figure 4)", got)
	}
	if got := Memory(2048, XC2S200E).BlockRAMs; got != 8 {
		t.Errorf("2K-word memory = %d BRAMs, want 8", got)
	}
	// On Virtex-II's larger 18-Kbit BRAMs a 1K memory still needs its
	// four banks.
	if got := Memory(1024, XC2V3000).BlockRAMs; got != 4 {
		t.Errorf("1K on XC2V3000 = %d BRAMs, want 4", got)
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{1, 2, 3}
	b := Resources{10, 20, 30}
	if a.Add(b) != (Resources{11, 22, 33}) {
		t.Error("Add broken")
	}
	if a.Scale(3) != (Resources{3, 6, 9}) {
		t.Error("Scale broken")
	}
}

func TestFits(t *testing.T) {
	small := Device{Name: "tiny", Capacity: Resources{10, 10, 1}, BlockRAMBits: 4096}
	if (Resources{11, 1, 0}).Fits(small) {
		t.Error("slice overflow fits")
	}
	if !(Resources{10, 10, 1}).Fits(small) {
		t.Error("exact fit rejected")
	}
}

func TestInventoryString(t *testing.T) {
	s := MultiNoC().String()
	for _, want := range []string{"router", "r8-core", "memory-ip", "serial-ip", "98% slices", "78% LUTs"} {
		if !strings.Contains(s, want) {
			t.Errorf("inventory table missing %q:\n%s", want, s)
		}
	}
}

// Package area models FPGA resource consumption of MultiNoC's IP cores,
// replacing the Xilinx synthesis flow the paper used (§3). The per-core
// costs are calibrated so that the Figure 1 system reproduces the
// paper's headline utilization — 98% of the XC2S200E's slices and 78%
// of its LUTs — and the model then extrapolates the §3 scalability
// discussion: router area stays constant while IP area grows, so the
// NoC's share of a large system drops below 10% or 5%.
package area

import "fmt"

// Resources counts FPGA primitives.
type Resources struct {
	Slices    int
	LUTs      int
	BlockRAMs int
}

// Add returns element-wise r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.Slices + o.Slices, r.LUTs + o.LUTs, r.BlockRAMs + o.BlockRAMs}
}

// Scale returns r scaled by n.
func (r Resources) Scale(n int) Resources {
	return Resources{r.Slices * n, r.LUTs * n, r.BlockRAMs * n}
}

// Device is an FPGA with its resource capacity.
type Device struct {
	Name     string
	Capacity Resources
	// BlockRAMBits is the size of one BlockRAM (4 Kbit on Spartan-II).
	BlockRAMBits int
}

// XC2S200E is the paper's target: a Spartan-IIe with 2352 slices, 4704
// LUTs and fourteen 4-Kbit BlockRAMs — each holding exactly the
// 1024 x 4-bit bank of Figure 4.
var XC2S200E = Device{
	Name:         "XC2S200E",
	Capacity:     Resources{Slices: 2352, LUTs: 4704, BlockRAMs: 14},
	BlockRAMBits: 4096,
}

// XC2V3000 is a representative "larger FPGA device" for the paper's
// future-work scaling scenario (§5).
var XC2V3000 = Device{
	Name:         "XC2V3000",
	Capacity:     Resources{Slices: 14336, LUTs: 28672, BlockRAMs: 96},
	BlockRAMBits: 18 * 1024,
}

// Utilization reports r as a fraction of the device capacity per
// resource class.
type Utilization struct {
	Slices    float64
	LUTs      float64
	BlockRAMs float64
}

// Utilization computes the fraction of dev consumed by r.
func (r Resources) Utilization(dev Device) Utilization {
	return Utilization{
		Slices:    float64(r.Slices) / float64(dev.Capacity.Slices),
		LUTs:      float64(r.LUTs) / float64(dev.Capacity.LUTs),
		BlockRAMs: float64(r.BlockRAMs) / float64(dev.Capacity.BlockRAMs),
	}
}

// Fits reports whether r fits the device.
func (r Resources) Fits(dev Device) bool {
	return r.Slices <= dev.Capacity.Slices &&
		r.LUTs <= dev.Capacity.LUTs &&
		r.BlockRAMs <= dev.Capacity.BlockRAMs
}

// Calibrated per-core costs. The absolute numbers are the calibration
// knobs; their sum over the Figure 1 inventory hits the paper's 98%/78%
// utilization exactly (see TestE4DeviceUtilization).
var (
	// routerBase is a Hermes router with 8-bit flits and 2-flit
	// buffers.
	routerBase = Resources{Slices: 280, LUTs: 450}
	// routerPerBufFlit is the incremental cost of one extra buffered
	// flit-slot (all five ports together), per byte of flit width.
	routerPerBufFlit = Resources{Slices: 18, LUTs: 30}
	r8Core           = Resources{Slices: 420, LUTs: 700}
	memControl       = Resources{Slices: 45, LUTs: 80}
	serialIP         = Resources{Slices: 110, LUTs: 170}
	glueLogic        = Resources{Slices: 100, LUTs: 59}
)

// Router estimates one Hermes router. Buffer depth and flit width scale
// the buffer portion; the paper's instance is Router(8, 2).
func Router(flitBits, bufDepth int) Resources {
	extra := bufDepth - 2
	if extra < 0 {
		extra = 0
	}
	inc := routerPerBufFlit.Scale(extra * flitBits / 8 * 5)
	base := routerBase
	if flitBits > 8 {
		// Datapath widening: crossbar and buffers grow with flit width.
		base.Slices += routerBase.Slices * (flitBits - 8) / 16
		base.LUTs += routerBase.LUTs * (flitBits - 8) / 16
	}
	return base.Add(inc)
}

// R8 estimates one R8 soft core (without its local memory).
func R8() Resources { return r8Core }

// Memory estimates a Memory IP of the given word capacity: control
// logic plus the BlockRAMs of Figure 4 (4-bit banks).
func Memory(words int, dev Device) Resources {
	r := memControl
	bits := words * 4 // one bank holds words x 4 bits
	perBank := (bits + dev.BlockRAMBits - 1) / dev.BlockRAMBits
	r.BlockRAMs = 4 * perBank
	return r
}

// Serial estimates the Serial IP.
func Serial() Resources { return serialIP }

// Glue estimates top-level interconnect and clock management.
func Glue() Resources { return glueLogic }

// Item is one inventory line.
type Item struct {
	Name  string
	Count int
	Each  Resources
}

// Total returns Count x Each.
func (it Item) Total() Resources { return it.Each.Scale(it.Count) }

// Inventory is a bill of FPGA resources for a system.
type Inventory struct {
	Device Device
	Items  []Item
}

// Total sums the inventory.
func (inv Inventory) Total() Resources {
	var t Resources
	for _, it := range inv.Items {
		t = t.Add(it.Total())
	}
	return t
}

// NoCFraction returns the slice share consumed by items whose name
// marks them as NoC infrastructure ("router").
func (inv Inventory) NoCFraction() float64 {
	var nocS, totS int
	for _, it := range inv.Items {
		t := it.Total()
		totS += t.Slices
		if it.Name == "router" {
			nocS += t.Slices
		}
	}
	if totS == 0 {
		return 0
	}
	return float64(nocS) / float64(totS)
}

// String renders the inventory as the utilization table of §3.
func (inv Inventory) String() string {
	s := fmt.Sprintf("%-22s %8s %8s %6s\n", "core", "slices", "LUTs", "BRAMs")
	for _, it := range inv.Items {
		t := it.Total()
		s += fmt.Sprintf("%-19s x%d %8d %8d %6d\n", it.Name, it.Count, t.Slices, t.LUTs, t.BlockRAMs)
	}
	t := inv.Total()
	u := t.Utilization(inv.Device)
	s += fmt.Sprintf("%-22s %8d %8d %6d\n", "total", t.Slices, t.LUTs, t.BlockRAMs)
	s += fmt.Sprintf("%s utilization: %.0f%% slices, %.0f%% LUTs, %.0f%% BlockRAMs\n",
		inv.Device.Name, 100*u.Slices, 100*u.LUTs, 100*u.BlockRAMs)
	return s
}

// MultiNoC returns the Figure 1 system's inventory on the XC2S200E:
// four routers, two R8 cores, three memory IPs (two local, one remote),
// the serial IP and glue.
func MultiNoC() Inventory {
	dev := XC2S200E
	return Inventory{
		Device: dev,
		Items: []Item{
			{"router", 4, Router(8, 2)},
			{"r8-core", 2, R8()},
			{"memory-ip", 3, Memory(1024, dev)},
			{"serial-ip", 1, Serial()},
			{"glue", 1, Glue()},
		},
	}
}

// Scaled returns the inventory of a width x height mesh whose IPs each
// consume ipSlices slices (the paper: "the IPs connected to the NoC can
// increase in area and functionality. The router surface will remain
// constant").
func Scaled(width, height, ipSlices int, dev Device) Inventory {
	n := width * height
	return Inventory{
		Device: dev,
		Items: []Item{
			{"router", n, Router(8, 2)},
			{"ip", n, Resources{Slices: ipSlices, LUTs: ipSlices * 2}},
		},
	}
}

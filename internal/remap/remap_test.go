package remap

import (
	"fmt"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

func TestCostIsVolumeTimesHops(t *testing.T) {
	p := &Problem{
		Width: 4, Height: 1,
		IPs:   []string{"a", "b"},
		Flows: []Flow{{From: "a", To: "b", Volume: 10}},
	}
	pl := Placement{"a": {X: 0, Y: 0}, "b": {X: 3, Y: 0}}
	c, err := p.Cost(pl)
	if err != nil {
		t.Fatal(err)
	}
	if c != 40 { // 10 x HopCount(4)
		t.Errorf("cost = %v, want 40", c)
	}
	if _, err := p.Cost(Placement{"a": {X: 0, Y: 0}}); err == nil {
		t.Error("missing placement accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{Width: 0, Height: 2},
		{Width: 1, Height: 1, IPs: []string{"a", "b"}},
		{Width: 2, Height: 2, IPs: []string{"a", "a"}},
		{Width: 2, Height: 2, IPs: []string{"a"}, Pinned: map[string]noc.Addr{"x": {}}},
		{Width: 2, Height: 2, IPs: []string{"a"}, Pinned: map[string]noc.Addr{"a": {X: 5, Y: 0}}},
	}
	for i, p := range bad {
		if _, err := p.Optimize(1, 10); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOptimizePullsChattyIPsTogether(t *testing.T) {
	// The deterministic initial placement is row-major over sorted
	// names, so naming the hot partner "zz-hot" and padding with nine
	// idle IPs strands it at (2,2) — five hops from its pinned peer.
	// The optimizer must bring it adjacent.
	ips := []string{"hot1", "zz-hot"}
	for i := 1; i <= 9; i++ {
		ips = append(ips, fmt.Sprintf("m%d", i))
	}
	p := &Problem{
		Width: 4, Height: 4,
		IPs:    ips,
		Pinned: map[string]noc.Addr{"hot1": {X: 0, Y: 0}},
		Flows:  []Flow{{From: "hot1", To: "zz-hot", Volume: 100}, {From: "zz-hot", To: "hot1", Volume: 100}},
	}
	res, err := p.Optimize(7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Initial != 1000 {
		t.Fatalf("initial cost = %v, want the stranded 1000", res.Initial)
	}
	if res.Cost >= res.Initial {
		t.Errorf("no improvement: %v -> %v", res.Initial, res.Cost)
	}
	// Optimal: zz-hot adjacent to hot1 -> 2 hops per direction = 400.
	if res.Cost != 400 {
		t.Errorf("final cost = %v, want optimal 400", res.Cost)
	}
	if res.Placement["hot1"] != (noc.Addr{X: 0, Y: 0}) {
		t.Error("pinned IP moved")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	p := &Problem{
		Width: 3, Height: 3,
		IPs: []string{"a", "b", "c", "d"},
		Flows: []Flow{
			{From: "a", To: "b", Volume: 5},
			{From: "b", To: "c", Volume: 3},
			{From: "c", To: "d", Volume: 9},
		},
	}
	r1, err := p.Optimize(3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Optimize(3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Errorf("nondeterministic: %v vs %v", r1.Cost, r2.Cost)
	}
	for k, v := range r1.Placement {
		if r2.Placement[k] != v {
			t.Errorf("placement differs at %s", k)
		}
	}
}

func TestMatrixFromMetas(t *testing.T) {
	metas := []*noc.PacketMeta{
		{Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Len: 10},
		{Src: noc.Addr{X: 0, Y: 0}, Dst: noc.Addr{X: 1, Y: 1}, Len: 6},
		{Src: noc.Addr{X: 1, Y: 1}, Dst: noc.Addr{X: 0, Y: 0}, Len: 4},
	}
	flows := MatrixFromMetas(metas)
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(flows))
	}
	if flows[0].Volume != 16 || flows[1].Volume != 4 {
		t.Errorf("volumes %v %v", flows[0].Volume, flows[1].Volume)
	}
}

// TestRemapImprovesRealLatency closes the loop the paper's future-work
// section imagines: measure traffic on a bad placement, optimize the
// assignment, and verify the re-placed system actually delivers lower
// latency in simulation.
func TestRemapImprovesRealLatency(t *testing.T) {
	// Workload: four IP pairs, each pair exchanging packets, placed so
	// every pair sits maximally far apart on a 4x4 mesh.
	badPairs := [][2]noc.Addr{
		{{X: 0, Y: 0}, {X: 3, Y: 3}},
		{{X: 3, Y: 0}, {X: 0, Y: 3}},
		{{X: 1, Y: 0}, {X: 2, Y: 3}},
		{{X: 0, Y: 1}, {X: 3, Y: 2}},
	}
	measure := func(pairs [][2]noc.Addr) (float64, []*noc.PacketMeta) {
		clk := sim.NewClock()
		net, err := noc.New(clk, noc.Defaults(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		eps := map[noc.Addr]*noc.Endpoint{}
		for _, pr := range pairs {
			for _, a := range pr {
				if eps[a] == nil {
					ep, err := net.NewEndpoint(a)
					if err != nil {
						t.Fatal(err)
					}
					eps[a] = ep
				}
			}
		}
		const packets = 30
		for i := 0; i < packets; i++ {
			for _, pr := range pairs {
				if _, err := eps[pr[0]].Send(pr[1], make([]uint16, 8)); err != nil {
					t.Fatal(err)
				}
				if _, err := eps[pr[1]].Send(pr[0], make([]uint16, 8)); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := uint64(packets * len(pairs) * 2)
		if err := clk.RunUntil(func() bool { return net.Delivered() == want }, 10_000_000); err != nil {
			t.Fatal(err)
		}
		stats := noc.Latencies(net.Completed())
		return stats.MeanCycles, net.Completed()
	}

	before, metas := measure(badPairs)

	// Build the remap problem from the observed traffic.
	prob := &Problem{Width: 4, Height: 4, Flows: MatrixFromMetas(metas)}
	seen := map[string]bool{}
	for _, f := range prob.Flows {
		for _, n := range []string{f.From, f.To} {
			if !seen[n] {
				seen[n] = true
				prob.IPs = append(prob.IPs, n)
			}
		}
	}
	res, err := prob.Optimize(11, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement <= 0.3 {
		t.Fatalf("predicted improvement only %.0f%%", 100*res.Improvement)
	}

	// Apply the new placement: each original address maps to its new
	// router; rebuild the pair list accordingly.
	var newPairs [][2]noc.Addr
	for _, pr := range badPairs {
		newPairs = append(newPairs, [2]noc.Addr{
			res.Placement[pr[0].String()],
			res.Placement[pr[1].String()],
		})
	}
	after, _ := measure(newPairs)
	if after >= before {
		t.Errorf("remap did not help: mean latency %.1f -> %.1f", before, after)
	}
	t.Logf("mean latency %.1f -> %.1f cycles (predicted cost -%.0f%%)",
		before, after, 100*res.Improvement)
}

// Package remap implements the paper's partial/dynamic reconfiguration
// research direction (§5): "the IP cores position be modified in
// execution at run-time, favoring the IPs communication with improved
// throughput."
//
// Given a measured traffic matrix (packets exchanged between IPs) and a
// mesh, the optimizer searches the assignment of IPs to routers that
// minimizes total communication cost — the sum over flows of
// volume x hop-distance — using deterministic simulated annealing. The
// result is the placement a reconfiguration controller would load; the
// predicted improvement is validated against actual simulation in the
// package tests and the A-series experiments.
package remap

import (
	"fmt"
	"sort"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Flow is directed traffic volume between two IPs (arbitrary units;
// flits or packets).
type Flow struct {
	From, To string
	Volume   float64
}

// Problem is a placement-optimization instance.
type Problem struct {
	Width, Height int
	// IPs lists the movable cores. Pinned IPs keep their position
	// (e.g. the Serial IP must stay next to its pads).
	IPs    []string
	Pinned map[string]noc.Addr
	Flows  []Flow
}

// Placement assigns each IP a router.
type Placement map[string]noc.Addr

// Cost is the total volume-weighted hop count of the placement.
func (p *Problem) Cost(pl Placement) (float64, error) {
	total := 0.0
	for _, f := range p.Flows {
		a, ok := pl[f.From]
		if !ok {
			return 0, fmt.Errorf("remap: flow source %q unplaced", f.From)
		}
		b, ok := pl[f.To]
		if !ok {
			return 0, fmt.Errorf("remap: flow target %q unplaced", f.To)
		}
		total += f.Volume * float64(noc.HopCount(a, b))
	}
	return total, nil
}

// validate checks the instance.
func (p *Problem) validate() error {
	if p.Width < 1 || p.Height < 1 {
		return fmt.Errorf("remap: bad mesh %dx%d", p.Width, p.Height)
	}
	if len(p.IPs) > p.Width*p.Height {
		return fmt.Errorf("remap: %d IPs exceed %d routers", len(p.IPs), p.Width*p.Height)
	}
	seen := map[string]bool{}
	for _, ip := range p.IPs {
		if seen[ip] {
			return fmt.Errorf("remap: IP %q listed twice", ip)
		}
		seen[ip] = true
	}
	for name, at := range p.Pinned {
		if !seen[name] {
			return fmt.Errorf("remap: pinned IP %q not in the IP list", name)
		}
		if at.X < 0 || at.X >= p.Width || at.Y < 0 || at.Y >= p.Height {
			return fmt.Errorf("remap: pin %q at %s outside the mesh", name, at)
		}
	}
	return nil
}

// initial builds a deterministic row-major placement honouring pins.
func (p *Problem) initial() Placement {
	pl := make(Placement, len(p.IPs))
	used := map[noc.Addr]bool{}
	for name, at := range p.Pinned {
		pl[name] = at
		used[at] = true
	}
	var free []noc.Addr
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			a := noc.Addr{X: x, Y: y}
			if !used[a] {
				free = append(free, a)
			}
		}
	}
	names := append([]string(nil), p.IPs...)
	sort.Strings(names)
	i := 0
	for _, name := range names {
		if _, pinned := p.Pinned[name]; pinned {
			continue
		}
		pl[name] = free[i]
		i++
	}
	return pl
}

// Result is an optimization outcome.
type Result struct {
	Placement Placement
	Cost      float64
	Initial   float64
	// Improvement is 1 - Cost/Initial.
	Improvement float64
}

// Optimize anneals the assignment. Movable IPs swap routers (or move to
// empty ones); pinned IPs never move.
func (p *Problem) Optimize(seed uint64, iters int) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cur := p.initial()
	curCost, err := p.Cost(cur)
	if err != nil {
		return Result{}, err
	}
	res := Result{Initial: curCost}
	var movable []string
	for _, ip := range p.IPs {
		if _, pinned := p.Pinned[ip]; !pinned {
			movable = append(movable, ip)
		}
	}
	if len(movable) == 0 || iters <= 0 {
		res.Placement, res.Cost = cur, curCost
		return res, nil
	}
	// All mesh cells are swap candidates; occupied-by describes the
	// inverse mapping.
	occ := map[noc.Addr]string{}
	for name, at := range cur {
		occ[at] = name
	}
	var cells []noc.Addr
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			cells = append(cells, noc.Addr{X: x, Y: y})
		}
	}
	pinnedAt := map[noc.Addr]bool{}
	for _, at := range p.Pinned {
		pinnedAt[at] = true
	}

	r := sim.NewRand(seed)
	best := clonePlacement(cur)
	bestCost := curCost
	t0 := curCost/4 + 1
	for i := 0; i < iters; i++ {
		temp := t0 * float64(iters-i) / float64(iters)
		name := movable[r.Intn(len(movable))]
		from := cur[name]
		to := cells[r.Intn(len(cells))]
		if to == from || pinnedAt[to] {
			continue
		}
		other, occupied := occ[to]
		// Apply the move/swap.
		cur[name] = to
		occ[to] = name
		if occupied {
			cur[other] = from
			occ[from] = other
		} else {
			delete(occ, from)
		}
		cc, err := p.Cost(cur)
		if err != nil {
			return Result{}, err
		}
		accept := cc <= curCost
		if !accept && temp > 0 {
			accept = r.Float64() < (curCost-cc)/temp+0.5 && cc-curCost < temp
		}
		if accept {
			curCost = cc
			if cc < bestCost {
				best, bestCost = clonePlacement(cur), cc
			}
			continue
		}
		// Revert.
		cur[name] = from
		occ[from] = name
		if occupied {
			cur[other] = to
			occ[to] = other
		} else {
			delete(occ, to)
		}
	}
	res.Placement = best
	res.Cost = bestCost
	if res.Initial > 0 {
		res.Improvement = 1 - res.Cost/res.Initial
	}
	return res, nil
}

func clonePlacement(pl Placement) Placement {
	out := make(Placement, len(pl))
	for k, v := range pl {
		out[k] = v
	}
	return out
}

// MatrixFromMetas builds a flow list from delivered packet metadata,
// naming IPs by their router address string — the "measured traffic"
// input a runtime reconfiguration controller would use.
func MatrixFromMetas(metas []*noc.PacketMeta) []Flow {
	vol := map[[2]noc.Addr]float64{}
	for _, m := range metas {
		vol[[2]noc.Addr{m.Src, m.Dst}] += float64(m.Len)
	}
	keys := make([][2]noc.Addr, 0, len(vol))
	for k := range vol {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0].Encode() < b[0].Encode()
		}
		return a[1].Encode() < b[1].Encode()
	})
	flows := make([]Flow, 0, len(keys))
	for _, k := range keys {
		flows = append(flows, Flow{From: k[0].String(), To: k[1].String(), Volume: vol[k]})
	}
	return flows
}

// Package mem implements the MultiNoC Memory IP core (§2.3): storage
// built from four BlockRAM banks of 1024 x 4-bit words accessed in
// parallel as 16-bit words, plus the control logic that serves
// read/write service packets arriving from the Hermes NoC.
//
// The same engine backs both deployments the paper uses: the
// independently accessible remote memory (see IP) and the local memory
// inside each Processor IP (driven by internal/procip, which implements
// the processor-priority arbitration and the busyNoCR8/busyNoCMem
// interlock of Figure 4).
package mem

import (
	"fmt"

	"repro/internal/noc"
)

// BankCount is the number of BlockRAM banks (Figure 4).
const BankCount = 4

// Banks is the 4-bank nibble-sliced storage: bank k holds bits
// [4k+3:4k] of every word, so a 16-bit access reads or writes all four
// banks in parallel, exactly as Figure 4 draws it.
type Banks struct {
	bank  [BankCount][]uint8
	words int

	Reads  uint64
	Writes uint64
}

// NewBanks allocates storage for the given word count (1024 in
// MultiNoC).
func NewBanks(words int) *Banks {
	b := &Banks{words: words}
	for k := range b.bank {
		b.bank[k] = make([]uint8, words)
	}
	return b
}

// Words reports the capacity in 16-bit words.
func (b *Banks) Words() int { return b.words }

// Read assembles a 16-bit word from the four banks. Addresses wrap
// modulo the capacity, matching address decoding that ignores high bits.
func (b *Banks) Read(addr uint16) uint16 {
	i := int(addr) % b.words
	b.Reads++
	var v uint16
	for k := BankCount - 1; k >= 0; k-- {
		v = v<<4 | uint16(b.bank[k][i]&0xF)
	}
	return v
}

// Write stores a 16-bit word nibble-wise across the banks.
func (b *Banks) Write(addr, v uint16) {
	i := int(addr) % b.words
	b.Writes++
	for k := 0; k < BankCount; k++ {
		b.bank[k][i] = uint8(v >> (4 * k) & 0xF)
	}
}

// Load copies an image into the banks starting at address 0.
func (b *Banks) Load(img []uint16) error {
	if len(img) > b.words {
		return fmt.Errorf("mem: image of %d words exceeds capacity %d", len(img), b.words)
	}
	for i, v := range img {
		b.Write(uint16(i), v)
	}
	return nil
}

// Dump copies n words starting at addr.
func (b *Banks) Dump(addr uint16, n int) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = b.Read(addr + uint16(i))
	}
	return out
}

// engine states.
const (
	engIdle = iota
	engWriting
	engReading
	engSendReturn
)

// Engine is the NoC-side control logic of a Memory IP. The owning
// component delivers decoded service messages with Deliver and calls
// Tick once per cycle; banksFree and nocFree implement the Figure 4
// arbitration (the processor has priority over the banks, and the
// busyNoCR8 interlock can hold the shared NoC interface).
type Engine struct {
	banks *Banks
	send  func(dst noc.Addr, m *noc.Message) error

	inbox []*noc.Message
	state int
	// current operation
	cur   *noc.Message
	idx   int
	words []uint16

	// Stats.
	WritesServed uint64
	ReadsServed  uint64
	Rejected     uint64
}

// NewEngine couples banks to a packet transmit function (typically a
// closure over noc.Endpoint.SendMessage).
func NewEngine(banks *Banks, send func(dst noc.Addr, m *noc.Message) error) *Engine {
	return &Engine{banks: banks, send: send}
}

// Deliver queues a service message for processing. Only read and write
// services are meaningful to a memory; anything else is counted and
// dropped.
func (e *Engine) Deliver(m *noc.Message) {
	switch m.Svc {
	case noc.SvcReadMem, noc.SvcWriteMem:
		e.inbox = append(e.inbox, m)
	default:
		e.Rejected++
	}
}

// Busy reports the busyNoCMem signal: a NoC-side operation is under
// way (§2.3).
func (e *Engine) Busy() bool { return e.state != engIdle || len(e.inbox) > 0 }

// Tick advances the engine by one clock cycle. banksFree is false when
// the processor claimed the banks this cycle (processor priority);
// nocFree is false while the processor side holds the shared NoC
// interface (busyNoCR8).
func (e *Engine) Tick(banksFree, nocFree bool) {
	switch e.state {
	case engIdle:
		if len(e.inbox) == 0 {
			return
		}
		e.cur = e.inbox[0]
		e.inbox = e.inbox[1:]
		e.idx = 0
		if e.cur.Svc == noc.SvcWriteMem {
			e.state = engWriting
		} else {
			e.words = make([]uint16, 0, e.cur.Count)
			e.state = engReading
		}
	case engWriting:
		if !banksFree {
			return
		}
		e.banks.Write(e.cur.Addr+uint16(e.idx), e.cur.Words[e.idx])
		e.idx++
		if e.idx == len(e.cur.Words) {
			e.WritesServed++
			e.state = engIdle
		}
	case engReading:
		if !banksFree {
			return
		}
		e.words = append(e.words, e.banks.Read(e.cur.Addr+uint16(len(e.words))))
		if len(e.words) == e.cur.Count {
			e.state = engSendReturn
		}
	case engSendReturn:
		if !nocFree {
			return
		}
		reply := &noc.Message{
			Svc:   noc.SvcReadReturn,
			Addr:  e.cur.Addr,
			Words: e.words,
		}
		// Send failures indicate a protocol bug (oversized reply);
		// count and drop rather than wedging the memory.
		if err := e.send(e.cur.Src, reply); err != nil {
			e.Rejected++
		} else {
			e.ReadsServed++
		}
		e.words = nil
		e.state = engIdle
	}
}

// IP is the standalone remote Memory IP of Figure 1: banks + engine on
// a NoC endpoint, with no processor interface.
type IP struct {
	banks *Banks
	eng   *Engine
	ep    *noc.Endpoint
}

// NewIP creates the remote memory at the given mesh address and
// registers it with the network's primary clock (domain 0 on a sharded
// network, matching its endpoint's placement).
func NewIP(net *noc.Network, addr noc.Addr, words int) (*IP, error) {
	ep, err := net.NewEndpointFor(net.Clock(), addr)
	if err != nil {
		return nil, err
	}
	banks := NewBanks(words)
	ip := &IP{banks: banks, ep: ep}
	ip.eng = NewEngine(banks, func(dst noc.Addr, m *noc.Message) error {
		_, err := ep.SendMessage(dst, m)
		return err
	})
	ep.SetOwner(ip)
	net.Clock().Register(ip)
	return ip, nil
}

// Banks exposes the storage for test setup and host-side verification.
func (ip *IP) Banks() *Banks { return ip.banks }

// Engine exposes the control logic's counters.
func (ip *IP) Engine() *Engine { return ip.eng }

// Name implements sim.Component.
func (ip *IP) Name() string { return fmt.Sprintf("memip%s", ip.ep.Addr()) }

// Eval implements sim.Component.
func (ip *IP) Eval() {
	for {
		m, ok, err := ip.ep.RecvMessage()
		if !ok {
			break
		}
		if err != nil {
			ip.eng.Rejected++
			continue
		}
		ip.eng.Deliver(m)
	}
	ip.eng.Tick(true, true)
}

// Commit implements sim.Component.
func (ip *IP) Commit() {}

// Idle implements sim.Idler: a remote memory sleeps whenever its engine
// has no operation in flight and no packet awaits dispatch. The
// endpoint wakes it (via SetOwner) when a service packet completes.
func (ip *IP) Idle() bool { return !ip.eng.Busy() && ip.ep.Pending() == 0 }

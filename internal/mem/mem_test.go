package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

func TestBanksRoundTrip(t *testing.T) {
	if err := quick.Check(func(addr, v uint16) bool {
		b := NewBanks(1024)
		b.Write(addr, v)
		return b.Read(addr) == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBanksNibbleSlicing(t *testing.T) {
	b := NewBanks(16)
	b.Write(3, 0xABCD)
	// Bank k holds bits [4k+3:4k]: D in bank 0, C in 1, B in 2, A in 3.
	want := []uint8{0xD, 0xC, 0xB, 0xA}
	for k := 0; k < BankCount; k++ {
		if b.bank[k][3] != want[k] {
			t.Errorf("bank %d nibble = %#x, want %#x", k, b.bank[k][3], want[k])
		}
	}
}

func TestBanksAddressWrap(t *testing.T) {
	b := NewBanks(1024)
	b.Write(1024+5, 0x1111)
	if b.Read(5) != 0x1111 {
		t.Error("address did not wrap modulo capacity")
	}
}

func TestBanksLoadDump(t *testing.T) {
	b := NewBanks(8)
	if err := b.Load([]uint16{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := b.Dump(0, 4)
	for i, want := range []uint16{1, 2, 3, 0} {
		if got[i] != want {
			t.Errorf("dump[%d] = %d, want %d", i, got[i], want)
		}
	}
	if err := b.Load(make([]uint16, 9)); err == nil {
		t.Error("oversized load accepted")
	}
}

// harness builds a 2x2 net with a remote memory at 11 and a raw
// endpoint at 00 to poke it, mirroring Figure 1's topology.
func harness(t *testing.T) (*sim.Clock, *noc.Network, *IP, *noc.Endpoint) {
	t.Helper()
	clk := sim.NewClock()
	net, err := noc.New(clk, noc.Defaults(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewIP(net, noc.Addr{X: 1, Y: 1}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	host, err := net.NewEndpoint(noc.Addr{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	return clk, net, ip, host
}

func awaitMessage(t *testing.T, clk *sim.Clock, ep *noc.Endpoint, max uint64) *noc.Message {
	t.Helper()
	var got *noc.Message
	err := clk.RunUntil(func() bool {
		m, ok, err := ep.RecvMessage()
		if err != nil {
			t.Fatalf("RecvMessage: %v", err)
		}
		got = m
		return ok
	}, max)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestWriteThenReadOverNoC(t *testing.T) {
	clk, _, ip, host := harness(t)
	dst := noc.Addr{X: 1, Y: 1}
	write := &noc.Message{Svc: noc.SvcWriteMem, Addr: 0x0100, Words: []uint16{0xAA55, 0x1234, 0xFFFF}}
	if _, err := host.SendMessage(dst, write); err != nil {
		t.Fatal(err)
	}
	read := &noc.Message{Svc: noc.SvcReadMem, Addr: 0x0100, Count: 3}
	if _, err := host.SendMessage(dst, read); err != nil {
		t.Fatal(err)
	}
	reply := awaitMessage(t, clk, host, 100000)
	if reply.Svc != noc.SvcReadReturn {
		t.Fatalf("reply service = %s", reply.Svc)
	}
	if reply.Addr != 0x0100 {
		t.Errorf("reply addr = %#x", reply.Addr)
	}
	want := []uint16{0xAA55, 0x1234, 0xFFFF}
	for i, w := range want {
		if reply.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, reply.Words[i], w)
		}
	}
	if ip.Banks().Read(0x0101) != 0x1234 {
		t.Error("banks not updated")
	}
	if ip.Engine().WritesServed != 1 || ip.Engine().ReadsServed != 1 {
		t.Errorf("served counters: %+v", ip.Engine())
	}
}

func TestReadReturnGoesToRequester(t *testing.T) {
	// Two requesters; each must get its own data back.
	clk, net, ip, host := harness(t)
	other, err := net.NewEndpoint(noc.Addr{X: 0, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	ip.Banks().Write(10, 111)
	ip.Banks().Write(20, 222)
	dst := noc.Addr{X: 1, Y: 1}
	if _, err := host.SendMessage(dst, &noc.Message{Svc: noc.SvcReadMem, Addr: 10, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := other.SendMessage(dst, &noc.Message{Svc: noc.SvcReadMem, Addr: 20, Count: 1}); err != nil {
		t.Fatal(err)
	}
	m1 := awaitMessage(t, clk, host, 100000)
	m2 := awaitMessage(t, clk, other, 100000)
	if m1.Words[0] != 111 {
		t.Errorf("host got %d, want 111", m1.Words[0])
	}
	if m2.Words[0] != 222 {
		t.Errorf("other got %d, want 222", m2.Words[0])
	}
}

func TestNonMemoryServiceRejected(t *testing.T) {
	clk, _, ip, host := harness(t)
	if _, err := host.SendMessage(noc.Addr{X: 1, Y: 1}, &noc.Message{Svc: noc.SvcActivate}); err != nil {
		t.Fatal(err)
	}
	if err := clk.RunUntil(func() bool { return ip.Engine().Rejected > 0 }, 100000); err != nil {
		t.Fatal("activate not rejected:", err)
	}
}

func TestEngineBankArbitration(t *testing.T) {
	// With banksFree always false, a write op must make no progress;
	// releasing the banks lets it finish. This is the
	// processor-priority rule of §2.3.
	banks := NewBanks(64)
	var sent []*noc.Message
	eng := NewEngine(banks, func(dst noc.Addr, m *noc.Message) error {
		sent = append(sent, m)
		return nil
	})
	eng.Deliver(&noc.Message{Svc: noc.SvcWriteMem, Addr: 0, Words: []uint16{7, 8}})
	eng.Tick(true, true) // dequeues
	for i := 0; i < 10; i++ {
		eng.Tick(false, true) // banks held by processor
	}
	if banks.Read(0) == 7 {
		t.Fatal("write progressed while banks were busy")
	}
	eng.Tick(true, true)
	eng.Tick(true, true)
	if banks.Read(0) != 7 || banks.Read(1) != 8 {
		t.Errorf("write incomplete: %d %d", banks.Read(0), banks.Read(1))
	}
	if !eng.Busy() {
		// After the final write the engine went idle, which is fine —
		// Busy must have been true *during* the op; spot-check via a
		// fresh op below.
	}
	eng.Deliver(&noc.Message{Svc: noc.SvcReadMem, Addr: 0, Count: 1})
	if !eng.Busy() {
		t.Error("engine not busy with queued op")
	}
	eng.Tick(true, true)
	eng.Tick(true, true)
	// Reply blocked while NoC interface is held (busyNoCR8).
	for i := 0; i < 5; i++ {
		eng.Tick(true, false)
	}
	if len(sent) != 0 {
		t.Fatal("read return sent while NoC interface busy")
	}
	eng.Tick(true, true)
	if len(sent) != 1 || sent[0].Words[0] != 7 {
		t.Fatalf("read return = %+v", sent)
	}
}

func TestEngineServiceTiming(t *testing.T) {
	// A k-word write takes exactly k bank cycles after dispatch.
	banks := NewBanks(64)
	eng := NewEngine(banks, func(noc.Addr, *noc.Message) error { return nil })
	eng.Deliver(&noc.Message{Svc: noc.SvcWriteMem, Addr: 0, Words: []uint16{1, 2, 3, 4, 5}})
	ticks := 0
	for eng.Busy() {
		eng.Tick(true, true)
		ticks++
		if ticks > 100 {
			t.Fatal("engine wedged")
		}
	}
	// 1 dispatch + 5 writes.
	if ticks != 6 {
		t.Errorf("write of 5 words took %d ticks, want 6", ticks)
	}
	if banks.Writes != 5 {
		t.Errorf("bank writes = %d, want 5", banks.Writes)
	}
}

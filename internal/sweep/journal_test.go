package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func testSpec(rate float64, seed uint64) JobSpec {
	return JobSpec{TrafficJob: experiments.TrafficJob{
		Width: 4, Height: 4, Rate: rate, PayloadFlits: 4, Seed: seed,
		Warmup: 50, Measure: 200, Drain: 2000,
	}}
}

func writeTestJournal(t *testing.T, path string) (BatchEntry, JobRecord) {
	t.Helper()
	jn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	be := BatchEntry{ID: "b-test", Specs: []JobSpec{testSpec(0.05, 1)}}
	rec := JobRecord{Key: be.Specs[0].Key(), Spec: be.Specs[0], Status: StatusDone, Attempts: 1}
	if err := jn.AppendBatch(be); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if err := jn.AppendJob(rec); err != nil {
		t.Fatalf("AppendJob: %v", err)
	}
	if err := jn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return be, rec
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	be, rec := writeTestJournal(t, path)
	jn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer jn.Close()
	if jn.Dropped != 0 {
		t.Errorf("clean journal dropped %d bytes", jn.Dropped)
	}
	if len(jn.Batches) != 1 || jn.Batches[0].ID != be.ID {
		t.Fatalf("batches = %+v, want one %q", jn.Batches, be.ID)
	}
	if len(jn.Jobs) != 1 || jn.Jobs[0].Key != rec.Key || jn.Jobs[0].Status != StatusDone {
		t.Fatalf("jobs = %+v, want one done %q", jn.Jobs, rec.Key)
	}
}

func TestJournalRecoversFromTornTail(t *testing.T) {
	// A crash mid-append leaves a half-written final record. Recovery
	// must keep every intact record and truncate the torn tail so the
	// journal is appendable again.
	cases := []struct {
		name string
		tail string
	}{
		{"no newline", `{"t":"job","crc":1,"d":{"key":"x"`},
		{"not json", "garbage bytes here\n"},
		{"bad crc", `{"t":"job","crc":12345,"d":{"key":"x","spec":{"rate":1,"seed":0},"status":"done"}}` + "\n"},
		{"unknown type", `{"t":"mystery","crc":0,"d":null}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j")
			writeTestJournal(t, path)
			intact, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			jn, err := OpenJournal(path)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			if jn.Dropped != int64(len(tc.tail)) {
				t.Errorf("Dropped = %d, want %d", jn.Dropped, len(tc.tail))
			}
			if len(jn.Batches) != 1 || len(jn.Jobs) != 1 {
				t.Errorf("recovered %d batches / %d jobs, want 1/1", len(jn.Batches), len(jn.Jobs))
			}
			// The journal must be appendable after recovery and the new
			// record must survive the next replay.
			if err := jn.AppendJob(JobRecord{Key: "post", Spec: testSpec(0.01, 9), Status: StatusFailed}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			jn.Close()
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(after), string(intact)) {
				t.Error("recovery rewrote intact records")
			}
			jn2, err := OpenJournal(path)
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			defer jn2.Close()
			if jn2.Dropped != 0 || len(jn2.Jobs) != 2 {
				t.Errorf("after re-append: dropped=%d jobs=%d, want 0/2", jn2.Dropped, len(jn2.Jobs))
			}
		})
	}
}

func TestJournalCorruptionMidFile(t *testing.T) {
	// Corruption in the middle (bit rot) cuts replay there: records
	// before it survive, records after are sacrificed — never a wrong
	// record, never a crash.
	path := filepath.Join(t.TempDir(), "j")
	writeTestJournal(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	idx := len(data) - 10
	data[idx] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jn, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer jn.Close()
	if len(jn.Batches) != 1 || len(jn.Jobs) != 0 {
		t.Errorf("recovered %d batches / %d jobs, want 1/0", len(jn.Batches), len(jn.Jobs))
	}
	if jn.Dropped == 0 {
		t.Error("corruption not reported in Dropped")
	}
}

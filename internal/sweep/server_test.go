package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/traffic"
)

func postBatch(t *testing.T, url string, req SubmitRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestHTTPSubmitPollAndResults(t *testing.T) {
	s, err := NewService(Config{Workers: 2, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postBatch(t, srv.URL, SubmitRequest{
		ID:   "sweep-1",
		Jobs: []JobSpec{testSpec(0.02, 1), testSpec(0.05, 2)},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", resp.StatusCode)
	}
	snap := decode[BatchSnapshot](t, resp)
	if snap.ID != "sweep-1" || len(snap.Jobs) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Long-poll until done, then read one job's result directly.
	resp, err = http.Get(srv.URL + "/v1/batches/sweep-1?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	final := decode[BatchSnapshot](t, resp)
	if !final.Done {
		t.Fatalf("wait=1 returned unfinished batch: %+v", final)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + final.Jobs[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	rec := decode[JobRecord](t, resp)
	if rec.Status != StatusDone || rec.Result == nil || rec.Result.Offered != 1 {
		t.Fatalf("job record = %+v, want done with result", rec)
	}

	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[Stats](t, resp)
	if st.Computed != 2 || st.Workers != 2 {
		t.Errorf("stats = %+v, want computed=2 workers=2", st)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s, err := NewService(Config{
		Workers:  1,
		QueueCap: 1,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			started <- struct{}{}
			<-gate
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); drain(t, s) }()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Invalid spec → 400.
	resp := postBatch(t, srv.URL, SubmitRequest{Jobs: []JobSpec{testSpec(-1, 0)}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unparseable body → 400.
	r2, err := http.Post(srv.URL+"/v1/batches", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: %d, want 400", r2.StatusCode)
	}
	r2.Body.Close()

	// Unknown batch / job → 404.
	for _, path := range []string{"/v1/batches/nope", "/v1/jobs/nope"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, r.StatusCode)
		}
		r.Body.Close()
	}

	// Fill the worker and the queue...
	resp = postBatch(t, srv.URL, SubmitRequest{ID: "b1", Jobs: []JobSpec{testSpec(0.02, 1)}})
	resp.Body.Close()
	<-started
	resp = postBatch(t, srv.URL, SubmitRequest{ID: "b2", Jobs: []JobSpec{testSpec(0.02, 2)}})
	resp.Body.Close()

	// ...so the next batch gets 429 with a Retry-After hint.
	resp = postBatch(t, srv.URL, SubmitRequest{Jobs: []JobSpec{testSpec(0.02, 3)}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over capacity: %d, want 429", resp.StatusCode)
	}
	if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || after < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// Batch ID reuse with different jobs → 409.
	resp = postBatch(t, srv.URL, SubmitRequest{ID: "b1", Jobs: []JobSpec{testSpec(0.07, 9)}})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("mismatched resubmit: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Idempotent resubmit of b1 → 202 again.
	resp = postBatch(t, srv.URL, SubmitRequest{ID: "b1", Jobs: []JobSpec{testSpec(0.02, 1)}})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("idempotent resubmit: %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHTTPPatternSweep: malformed pattern-library parameters are caught
// at submission time — no worker is spent before the 400 — and a batch
// sweeping several pattern names runs to completion on the real
// simulator with measured results for every job.
func TestHTTPPatternSweep(t *testing.T) {
	s, err := NewService(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := func(mut func(*experiments.TrafficJob)) JobSpec {
		js := testSpec(0.04, 7)
		mut(&js.TrafficJob)
		return js
	}

	bad := []JobSpec{
		spec(func(j *experiments.TrafficJob) { // hotspot weights sum > 1
			j.Pattern = "hotspot"
			j.Hotspots = []traffic.HotspotSpec{
				{X: 1, Y: 1, Weight: 0.7}, {X: 2, Y: 2, Weight: 0.7}}
		}),
		spec(func(j *experiments.TrafficJob) { // empty multicast set
			j.Pattern = "multicast"
		}),
		spec(func(j *experiments.TrafficJob) { // trace entry off the mesh
			j.Pattern = "trace"
			j.Trace = []traffic.TraceEntry{
				{Cycle: 1, Dst: noc.Addr{X: 9, Y: 0}, Payload: 1}}
		}),
		spec(func(j *experiments.TrafficJob) { // rate at the burst peak
			j.Pattern = "bursty"
			j.BurstPeak = 0.04
		}),
	}
	for i, js := range bad {
		resp := postBatch(t, srv.URL, SubmitRequest{Jobs: []JobSpec{js}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad pattern %d: %d, want 400", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	jobs := []JobSpec{
		spec(func(j *experiments.TrafficJob) { j.Pattern = "bitrev" }),
		spec(func(j *experiments.TrafficJob) { j.Pattern = "transpose" }),
		spec(func(j *experiments.TrafficJob) { j.Pattern = "bursty"; j.Rate = 0.03 }),
		spec(func(j *experiments.TrafficJob) {
			j.Pattern = "multicast"
			j.Rate = 0.02
			j.Multicast = []noc.Addr{{X: 0, Y: 3}, {X: 3, Y: 0}, {X: 3, Y: 3}}
		}),
	}
	resp := postBatch(t, srv.URL, SubmitRequest{ID: "patterns", Jobs: jobs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pattern batch: %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/batches/patterns?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	final := decode[BatchSnapshot](t, resp)
	if !final.Done || len(final.Jobs) != len(jobs) {
		t.Fatalf("pattern batch did not finish: %+v", final)
	}
	for i, js := range final.Jobs {
		r, err := http.Get(srv.URL + "/v1/jobs/" + js.Key)
		if err != nil {
			t.Fatal(err)
		}
		rec := decode[JobRecord](t, r)
		if rec.Status != StatusDone || rec.Result == nil || rec.Result.MeasuredPackets == 0 {
			t.Errorf("pattern job %d: %+v, want done with measured traffic", i, rec)
		}
	}
}

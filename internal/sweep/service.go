package sweep

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/traffic"
)

// Config parameterizes a Service. Zero values select the documented
// defaults.
type Config struct {
	// Workers is the number of concurrent job runners (default 4).
	Workers int
	// QueueCap bounds the number of queued (not yet running) jobs. A
	// submission whose new jobs would push the backlog past the cap
	// first sheds idle batches and otherwise gets a BacklogError; a
	// single batch larger than the cap is never accepted (default 256).
	QueueCap int
	// JournalPath is the crash-safe record store. Empty runs the
	// service in-memory: no durability, no restart resume.
	JournalPath string

	// DefaultMaxWall bounds each attempt's wall-clock time when the
	// spec doesn't (default 2m).
	DefaultMaxWall time.Duration
	// DefaultMaxCycles bounds each job's simulated time when the spec
	// doesn't (default 50M cycles).
	DefaultMaxCycles uint64
	// DefaultMaxRetries is the transient-failure retry bound when the
	// spec doesn't set one (default 2).
	DefaultMaxRetries int

	// BackoffBase and BackoffMax shape the exponential retry backoff:
	// base<<attempt, capped, with ±50% jitter (defaults 100ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// ShedIdleAfter is how long a batch must go unpolled before its
	// queued jobs become shedding candidates under queue pressure
	// (default 30s; negative disables shedding).
	ShedIdleAfter time.Duration

	// Runner executes one job attempt. Nil selects the real simulator
	// (spec.TrafficJob.Run); tests inject failures here. The spec
	// arrives with MaxCycles already resolved against the default.
	Runner func(ctx context.Context, spec JobSpec) (traffic.Result, error)

	// Now and Sleep are test seams for the clock (defaults time.Now and
	// a context-aware time.Sleep).
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.DefaultMaxWall <= 0 {
		c.DefaultMaxWall = 2 * time.Minute
	}
	if c.DefaultMaxCycles == 0 {
		c.DefaultMaxCycles = 50_000_000
	}
	if c.DefaultMaxRetries == 0 {
		c.DefaultMaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.ShedIdleAfter == 0 {
		c.ShedIdleAfter = 30 * time.Second
	}
	if c.Runner == nil {
		c.Runner = func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			return spec.TrafficJob.Run(ctx, spec.MaxCycles)
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	return c
}

// job is the mutable server-side state of one deduplicated job. All
// fields are guarded by the service mutex except during an attempt,
// when the owning worker reads Spec/Attempts from its private copy.
type job struct {
	rec     JobRecord
	batches map[string]*batch
}

// batch tracks one accepted submission: which jobs it references and
// when a client last looked at it (the shedding signal).
type batch struct {
	id       string
	keys     []string
	lastSeen time.Time
}

// Stats is a point-in-time snapshot of service health counters.
type Stats struct {
	Workers   int  `json:"workers"`
	QueueLen  int  `json:"queueLen"`
	InFlight  int  `json:"inFlight"`
	Jobs      int  `json:"jobs"`
	Batches   int  `json:"batches"`
	Computed  int  `json:"computed"`
	CacheHits int  `json:"cacheHits"`
	Shed      int  `json:"shed"`
	Respawns  int  `json:"respawns"`
	Draining  bool `json:"draining"`
	// JournalDropped is how many bytes of corrupt journal tail were
	// discarded at startup (0 for a clean journal).
	JournalDropped int64 `json:"journalDropped"`
}

// BatchSnapshot is the client-visible state of a batch.
type BatchSnapshot struct {
	ID   string      `json:"id"`
	Jobs []JobRecord `json:"jobs"`
	// Done is true once every job in the batch is terminal.
	Done bool `json:"done"`
}

// Service is the sweep job service: a bounded queue feeding a
// fixed-size worker pool, with journal-backed dedupe and resume.
type Service struct {
	cfg     Config
	journal *Journal // nil when running in-memory

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	jobs     map[string]*job
	batches  map[string]*batch
	draining bool
	closed   bool
	inFlight int
	avgDur   time.Duration // EWMA of job wall time, for Retry-After
	rng      *mrand.Rand   // backoff jitter; seeded for reproducible tests

	computed  int
	cacheHits int
	shed      int
	respawns  int
	dropped   int64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// NewService opens (and replays) the journal, requeues every journaled
// job that never reached a terminal record, and starts the worker pool.
func NewService(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		batches: make(map[string]*batch),
		rng:     mrand.New(mrand.NewSource(1)),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	if cfg.JournalPath != "" {
		jn, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jn
		s.dropped = jn.Dropped
		s.replay(jn)
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// replay rebuilds in-memory state from a journal: terminal job records
// first (later records win — a shed job may have been resubmitted and
// finished), then batches, requeuing every referenced job without a
// terminal record. Runs before the workers start, so no locking.
func (s *Service) replay(jn *Journal) {
	for i := range jn.Jobs {
		rec := jn.Jobs[i]
		if rec.Status == StatusDone {
			rec.Cached = true // anything served from here on is from the journal
		}
		if j, ok := s.jobs[rec.Key]; ok {
			j.rec = rec
		} else {
			s.jobs[rec.Key] = &job{rec: rec, batches: make(map[string]*batch)}
		}
	}
	now := s.cfg.Now()
	for _, be := range jn.Batches {
		b := &batch{id: be.ID, lastSeen: now}
		for i := range be.Specs {
			key := be.Specs[i].Key()
			b.keys = append(b.keys, key)
			j, ok := s.jobs[key]
			if !ok {
				j = &job{
					rec:     JobRecord{Key: key, Spec: be.Specs[i], Status: StatusQueued},
					batches: make(map[string]*batch),
				}
				s.jobs[key] = j
				s.queue = append(s.queue, j)
			}
			j.batches[b.id] = b
		}
		s.batches[b.id] = b
	}
}

// worker is one pool goroutine. The deferred exit handler tells a
// normal return (drain) apart from a killed worker — a panic that
// somehow escaped the per-attempt recover, or a runtime.Goexit from a
// hostile model — and respawns a replacement so the pool never
// shrinks. The in-flight job of a killed worker is retried or failed,
// never lost.
func (s *Service) worker() {
	var cur *job
	normal := false
	defer func() {
		if normal {
			s.wg.Done()
			return
		}
		r := recover()
		s.mu.Lock()
		s.respawns++
		if cur != nil {
			s.workerDiedLocked(cur, r)
		}
		s.mu.Unlock()
		go s.worker() // the replacement inherits this worker's WaitGroup slot
	}()
	for {
		j := s.next()
		if j == nil {
			normal = true
			return
		}
		cur = j
		s.runJob(j)
		cur = nil
	}
}

// next blocks until a job is available, returning nil when the service
// is draining.
func (s *Service) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		if len(s.queue) > 0 {
			j := s.queue[0]
			s.queue = s.queue[1:]
			j.rec.Status = StatusRunning
			s.inFlight++
			return j
		}
		s.cond.Wait()
	}
}

// workerDiedLocked disposes of the job a killed worker was running:
// one more transient attempt if the retry budget allows, a terminal
// failure otherwise.
func (s *Service) workerDiedLocked(j *job, panicked any) {
	s.inFlight--
	why := "worker killed during attempt"
	if panicked != nil {
		why = fmt.Sprintf("worker killed by escaped panic: %v", panicked)
	}
	if j.rec.Attempts <= s.retriesFor(j.rec.Spec) && !s.draining {
		j.rec.Status = StatusQueued
		s.queue = append(s.queue, j)
	} else {
		j.rec.Status = StatusFailed
		j.rec.Error = why
		s.finishLocked(j, 0)
	}
	s.cond.Broadcast()
}

// retriesFor resolves a spec's transient-retry budget.
func (s *Service) retriesFor(spec JobSpec) int {
	switch {
	case spec.MaxRetries > 0:
		return spec.MaxRetries
	case spec.MaxRetries < 0:
		return 0
	default:
		return s.cfg.DefaultMaxRetries
	}
}

// runJob drives one job to a terminal state (or back to queued if the
// service is force-stopped mid-run): attempt, classify, maybe back off
// and retry.
func (s *Service) runJob(j *job) {
	start := s.cfg.Now()
	for {
		res, err := s.attempt(j)

		s.mu.Lock()
		switch {
		case err == nil:
			j.rec.Status = StatusDone
			j.rec.Result = &res
			j.rec.Error, j.rec.Stack = "", ""
			s.computed++
			s.finishLocked(j, s.cfg.Now().Sub(start))
			s.mu.Unlock()
			return

		case s.baseCtx.Err() != nil && errors.Is(err, context.Canceled):
			// Forced stop (drain deadline expired): the attempt was cut
			// short through no fault of the job. Put it back in queued
			// state — unjournaled, so a restart resumes it.
			j.rec.Status = StatusQueued
			j.rec.Error = ""
			s.inFlight--
			s.mu.Unlock()
			return

		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, traffic.ErrCycleBudget):
			j.rec.Status = StatusTimeout
			j.rec.Error = err.Error()
			s.finishLocked(j, s.cfg.Now().Sub(start))
			s.mu.Unlock()
			return

		case IsTransient(err) && j.rec.Attempts <= s.retriesFor(j.rec.Spec):
			attempt := j.rec.Attempts
			s.mu.Unlock()
			s.cfg.Sleep(s.baseCtx, s.backoff(attempt))
			if s.baseCtx.Err() != nil {
				s.mu.Lock()
				j.rec.Status = StatusQueued
				s.inFlight--
				s.mu.Unlock()
				return
			}
			continue

		default:
			j.rec.Status = StatusFailed
			j.rec.Error = err.Error()
			var pe *PanicError
			if errors.As(err, &pe) {
				j.rec.Stack = pe.Stack
			}
			s.finishLocked(j, s.cfg.Now().Sub(start))
			s.mu.Unlock()
			return
		}
	}
}

// attempt runs the Runner once under the per-job wall-clock deadline,
// converting a panic into a PanicError instead of letting it unwind
// the worker.
func (s *Service) attempt(j *job) (res traffic.Result, err error) {
	s.mu.Lock()
	j.rec.Attempts++
	spec := j.rec.Spec
	s.mu.Unlock()

	if spec.MaxCycles == 0 {
		spec.MaxCycles = s.cfg.DefaultMaxCycles
	}
	wall := s.cfg.DefaultMaxWall
	if spec.MaxWallMS > 0 {
		wall = time.Duration(spec.MaxWallMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, wall)
	defer cancel()

	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return s.cfg.Runner(ctx, spec)
}

// backoff computes the sleep before retry attempt+1: exponential in
// the attempt number, capped, with ±50% jitter so colliding retries
// spread out.
func (s *Service) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	s.mu.Lock()
	jit := time.Duration(s.rng.Int63n(int64(d) + 1))
	s.mu.Unlock()
	return d/2 + jit
}

// finishLocked records a terminal transition: journal it, update the
// latency estimate, wake pollers. dur==0 skips the estimate (the job
// never ran).
func (s *Service) finishLocked(j *job, dur time.Duration) {
	s.inFlight--
	if dur > 0 {
		if s.avgDur == 0 {
			s.avgDur = dur
		} else {
			s.avgDur = (s.avgDur*4 + dur) / 5
		}
	}
	if s.journal != nil && !s.closed {
		if err := s.journal.AppendJob(j.rec); err != nil {
			// The record stays served from memory; durability is lost
			// for this one record but the service keeps running.
			j.rec.Error = appendErr(j.rec.Error, fmt.Sprintf("journal append failed: %v", err))
		}
	}
	s.cond.Broadcast()
}

func appendErr(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "; " + extra
}

// Submit accepts a batch of job specs. An empty batchID gets a fresh
// one; resubmitting an existing ID with the same jobs is idempotent
// (it returns the current snapshot), with different jobs it is
// ErrBatchMismatch. Errors: ValidationError (a spec is malformed),
// BacklogError (queue full even after shedding), ErrDraining.
func (s *Service) Submit(batchID string, specs []JobSpec) (BatchSnapshot, error) {
	if len(specs) == 0 {
		return BatchSnapshot{}, &ValidationError{Index: 0, Err: errors.New("empty batch")}
	}
	keys := make([]string, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return BatchSnapshot{}, &ValidationError{Index: i, Err: err}
		}
		keys[i] = specs[i].Key()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return BatchSnapshot{}, ErrDraining
	}
	if batchID == "" {
		batchID = newBatchID()
	}
	if b, ok := s.batches[batchID]; ok {
		if !equalKeys(b.keys, keys) {
			return BatchSnapshot{}, ErrBatchMismatch
		}
		b.lastSeen = s.cfg.Now()
		return s.snapshotLocked(b), nil
	}

	// How many queue slots does this batch need? Only jobs that are
	// new (or terminal-but-not-done, which re-run) occupy one.
	need := 0
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		j, ok := s.jobs[k]
		if !ok || (j.rec.Status.Terminal() && j.rec.Status != StatusDone) {
			need++
		}
	}
	if len(s.queue)+need > s.cfg.QueueCap {
		s.shedLocked(len(s.queue)+need-s.cfg.QueueCap, batchID)
		if len(s.queue)+need > s.cfg.QueueCap {
			return BatchSnapshot{}, &BacklogError{RetryAfter: s.retryAfterLocked(need)}
		}
	}

	// Journal the acceptance before exposing any state: a batch the
	// client saw accepted must survive a crash.
	if s.journal != nil {
		if err := s.journal.AppendBatch(BatchEntry{ID: batchID, Specs: specs}); err != nil {
			return BatchSnapshot{}, err
		}
	}

	b := &batch{id: batchID, keys: keys, lastSeen: s.cfg.Now()}
	s.batches[batchID] = b
	for i, k := range keys {
		j, ok := s.jobs[k]
		switch {
		case !ok:
			j = &job{
				rec:     JobRecord{Key: k, Spec: specs[i], Status: StatusQueued},
				batches: make(map[string]*batch),
			}
			s.jobs[k] = j
			s.queue = append(s.queue, j)
		case j.rec.Status == StatusDone:
			s.cacheHits++
			j.rec.Cached = true
		case j.rec.Status.Terminal():
			// failed / timeout / shed: a fresh submission asks again.
			j.rec = JobRecord{Key: k, Spec: specs[i], Status: StatusQueued}
			s.queue = append(s.queue, j)
		}
		j.batches[b.id] = b
	}
	s.cond.Broadcast()
	return s.snapshotLocked(b), nil
}

// shedLocked frees up to want queue slots by shedding queued jobs
// whose every referencing batch has gone unpolled for ShedIdleAfter,
// idlest batches first. Shed is a journaled terminal state; a
// resubmission of the same spec requeues it.
func (s *Service) shedLocked(want int, requester string) {
	if s.cfg.ShedIdleAfter < 0 || want <= 0 {
		return
	}
	cutoff := s.cfg.Now().Add(-s.cfg.ShedIdleAfter)
	idle := func(j *job) (time.Time, bool) {
		var latest time.Time
		for id, b := range j.batches {
			if id == requester || b.lastSeen.After(cutoff) {
				return time.Time{}, false
			}
			if b.lastSeen.After(latest) {
				latest = b.lastSeen
			}
		}
		return latest, len(j.batches) > 0
	}
	type cand struct {
		j    *job
		seen time.Time
	}
	var cands []cand
	for _, j := range s.queue {
		if seen, ok := idle(j); ok {
			cands = append(cands, cand{j, seen})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].seen.Before(cands[b].seen) })
	if len(cands) > want {
		cands = cands[:want]
	}
	if len(cands) == 0 {
		return
	}
	doomed := make(map[*job]bool, len(cands))
	for _, c := range cands {
		doomed[c.j] = true
	}
	kept := s.queue[:0]
	for _, j := range s.queue {
		if doomed[j] {
			j.rec.Status = StatusShed
			j.rec.Error = "shed under queue pressure (batch idle)"
			s.shed++
			s.inFlight++ // finishLocked undoes this; shed jobs never ran
			s.finishLocked(j, 0)
			continue
		}
		kept = append(kept, j)
	}
	s.queue = kept
}

// retryAfterLocked estimates when a rejected submitter should try
// again: the queue's expected drain time for `need` slots, clamped to
// [1s, 60s].
func (s *Service) retryAfterLocked(need int) time.Duration {
	avg := s.avgDur
	if avg <= 0 {
		avg = time.Second
	}
	pending := len(s.queue) + s.inFlight + need
	d := avg * time.Duration((pending+s.cfg.Workers-1)/s.cfg.Workers)
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

func (s *Service) snapshotLocked(b *batch) BatchSnapshot {
	snap := BatchSnapshot{ID: b.id, Done: true}
	for _, k := range b.keys {
		rec := s.jobs[k].rec
		if !rec.Status.Terminal() {
			snap.Done = false
		}
		snap.Jobs = append(snap.Jobs, rec)
	}
	return snap
}

// BatchStatus returns the batch's snapshot and refreshes its activity
// stamp (a polled batch is never shed).
func (s *Service) BatchStatus(id string) (BatchSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	if !ok {
		return BatchSnapshot{}, false
	}
	b.lastSeen = s.cfg.Now()
	return s.snapshotLocked(b), true
}

// WaitBatch blocks until every job in the batch is terminal or ctx
// expires, returning the final snapshot either way.
func (s *Service) WaitBatch(ctx context.Context, id string) (BatchSnapshot, error) {
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		b, ok := s.batches[id]
		if !ok {
			return BatchSnapshot{}, fmt.Errorf("sweep: unknown batch %q", id)
		}
		b.lastSeen = s.cfg.Now()
		snap := s.snapshotLocked(b)
		if snap.Done {
			return snap, nil
		}
		if err := ctx.Err(); err != nil {
			return snap, err
		}
		if s.draining {
			return snap, ErrDraining
		}
		s.cond.Wait()
	}
}

// Job returns the record for one job key.
func (s *Service) Job(key string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[key]
	if !ok {
		return JobRecord{}, false
	}
	return j.rec, true
}

// Stats returns current health counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:        s.cfg.Workers,
		QueueLen:       len(s.queue),
		InFlight:       s.inFlight,
		Jobs:           len(s.jobs),
		Batches:        len(s.batches),
		Computed:       s.computed,
		CacheHits:      s.cacheHits,
		Shed:           s.shed,
		Respawns:       s.respawns,
		Draining:       s.draining,
		JournalDropped: s.dropped,
	}
}

// Drain shuts the service down gracefully: stop dispatching, let
// in-flight jobs finish, then close the journal. Queued jobs stay
// journaled as pending — a restart resumes them. If ctx expires first,
// in-flight jobs are force-cancelled and also return to the pending
// pool rather than being recorded as failures.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
	}
	s.baseCancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

func newBatchID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("sweep: batch id entropy: %v", err))
	}
	return "b-" + hex.EncodeToString(b[:])
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The journal is the service's only durable state: an append-only file
// of JSON lines, each wrapping one payload with a CRC. Two record types
// exist — "batch" (a batch was accepted, with its job keys and specs)
// and "job" (a job reached a terminal state, with its full record).
// Recovery replays the file line by line and stops at the first
// corrupt or truncated line, truncating the file back to the last good
// record: a crash mid-append costs at most the record being written,
// never an earlier one.
type journalLine struct {
	T   string          `json:"t"` // "batch" or "job"
	CRC uint32          `json:"crc"`
	D   json.RawMessage `json:"d"`
}

// BatchEntry journals an accepted batch: its ID and the specs of the
// jobs it references, so a restarted service can rebuild the batch →
// job mapping and requeue whatever never reached a terminal record.
type BatchEntry struct {
	ID    string    `json:"id"`
	Specs []JobSpec `json:"specs"`
}

// Journal is the append-only record store. Appends are not
// concurrency-safe; the service serializes them under its own lock.
type Journal struct {
	f *os.File
	w *bufio.Writer
	// Batches and Jobs hold the replayed state after OpenJournal.
	Batches []BatchEntry
	Jobs    []JobRecord
	// Dropped counts bytes truncated from a corrupt tail on open.
	Dropped int64
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record into Batches/Jobs, and truncates any corrupt or
// half-written tail so the file ends on a record boundary for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j := &Journal{f: f}
	good, err := j.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: seek journal: %w", err)
	}
	if size > good {
		j.Dropped = size - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: truncate corrupt journal tail: %w", err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: seek journal: %w", err)
		}
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// replay scans the journal from the start and returns the offset just
// past the last intact record. Anything unparseable — bad JSON, a CRC
// mismatch, a line without a trailing newline — ends the replay there.
func (j *Journal) replay() (int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("sweep: seek journal: %w", err)
	}
	r := bufio.NewReader(j.f)
	var good int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// io.EOF with a partial line = torn final write: drop it.
			return good, nil
		}
		var rec journalLine
		if json.Unmarshal(line, &rec) != nil {
			return good, nil
		}
		if crc32.ChecksumIEEE(rec.D) != rec.CRC {
			return good, nil
		}
		switch rec.T {
		case "batch":
			var b BatchEntry
			if json.Unmarshal(rec.D, &b) != nil {
				return good, nil
			}
			j.Batches = append(j.Batches, b)
		case "job":
			var jr JobRecord
			if json.Unmarshal(rec.D, &jr) != nil {
				return good, nil
			}
			j.Jobs = append(j.Jobs, jr)
		default:
			return good, nil
		}
		good += int64(len(line))
	}
}

func (j *Journal) append(typ string, payload any) error {
	d, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("sweep: marshal journal %s: %w", typ, err)
	}
	line, err := json.Marshal(journalLine{T: typ, CRC: crc32.ChecksumIEEE(d), D: d})
	if err != nil {
		return fmt.Errorf("sweep: marshal journal line: %w", err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("sweep: flush journal: %w", err)
	}
	// Sync per record: a terminal result acknowledged to a client must
	// survive a crash. Sweep jobs run for milliseconds to minutes, so
	// the fsync is noise next to the work it makes durable.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync journal: %w", err)
	}
	return nil
}

// AppendBatch journals an accepted batch before its jobs are enqueued.
func (j *Journal) AppendBatch(b BatchEntry) error { return j.append("batch", b) }

// AppendJob journals a job's terminal record.
func (j *Journal) AppendJob(r JobRecord) error { return j.append("job", r) }

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Package sweep is the design-space exploration service: it accepts
// batches of simulation configurations (experiments.TrafficJob points —
// topology, mesh size, injection rate, routing, seeds, clock domains),
// fans them out across a worker pool with one independent sim.Clock per
// job, and aggregates latency/throughput results. It is the repo's
// "millions of users" workload: the simulator as a server.
//
// Robustness is the design center, because a 10k-job batch is only as
// useful as its worst job:
//
//   - Panic isolation: a panicking model becomes a failed-job record
//     carrying the captured stack, never a dead worker. A worker killed
//     outright (runtime.Goexit, a panic escaping the per-attempt
//     recover) is respawned and its job retried or failed — the pool
//     never shrinks.
//   - Deadlines: every job runs under a wall-clock deadline (context)
//     and a simulated-cycle budget, both enforced inside the kernel via
//     sim.Clock's cancellation hook, so a runaway configuration ends as
//     a recorded timeout instead of a hung worker.
//   - Retry: transient failures (sweep.Transient, worker kills) are
//     retried with exponential backoff and jitter, up to a bounded
//     attempt count; everything else fails fast.
//   - Backpressure: the queue is bounded. When it is full the service
//     first sheds queued jobs of batches no client has polled recently
//     (oldest first, journaled as "shed"), and otherwise rejects the
//     submission with a retry-after hint (HTTP 429).
//   - Durability: accepted batches and every terminal job record are
//     appended to a crash-safe journal; a restarted service resumes
//     unfinished jobs and serves finished ones from the journal-backed
//     dedupe cache, keyed by (canonical config, seed, code version),
//     without recomputing them. Graceful drain (SIGTERM) finishes
//     in-flight jobs and leaves the rest journaled for the next run.
//
// Every job reaches exactly one terminal state: done, failed, timeout
// or shed.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/traffic"
)

// CodeVersion names the simulator revision for the dedupe cache: a
// journaled result is only reused by a binary with the same version, so
// bump this whenever a change alters simulation results.
const CodeVersion = "multinoc-sim-7"

// JobSpec is one sweep job: a design-space point plus per-job
// robustness knobs. The embedded TrafficJob is the job's identity (see
// Key); the knobs only shape how hard the service tries to compute it.
type JobSpec struct {
	experiments.TrafficJob
	// MaxWallMS bounds the job's wall-clock time per attempt in
	// milliseconds (0 → the service default). Exceeding it is a
	// terminal timeout.
	MaxWallMS int64 `json:"maxWallMS,omitempty"`
	// MaxCycles bounds the job's simulated time (0 → the service
	// default). Exceeding it is a terminal timeout.
	MaxCycles uint64 `json:"maxCycles,omitempty"`
	// MaxRetries bounds retries after transient failures (0 → the
	// service default, -1 → no retries).
	MaxRetries int `json:"maxRetries,omitempty"`
}

// Validate reports why the spec cannot be accepted, nil when it can.
func (s JobSpec) Validate() error {
	if s.MaxWallMS < 0 {
		return fmt.Errorf("sweep: negative wall-clock deadline %dms", s.MaxWallMS)
	}
	if s.MaxRetries < -1 {
		return fmt.Errorf("sweep: invalid retry bound %d", s.MaxRetries)
	}
	return s.TrafficJob.Validate()
}

// Key is the job's dedupe identity: a hash of the canonical
// configuration (defaults applied, execution-strategy flags erased),
// the seed it contains, and the simulator's CodeVersion. Two specs with
// equal keys describe bit-identical simulations, so one result serves
// both — across batches and across service restarts.
func (s JobSpec) Key() string {
	canon, err := json.Marshal(s.TrafficJob.Canonical())
	if err != nil {
		// A TrafficJob is plain data; marshalling cannot fail.
		panic(fmt.Sprintf("sweep: marshal canonical job: %v", err))
	}
	h := sha256.New()
	h.Write(canon)
	h.Write([]byte("|" + CodeVersion))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	// StatusDone is terminal: the job computed a Result.
	StatusDone Status = "done"
	// StatusFailed is terminal: the job panicked, returned a permanent
	// error, or exhausted its retries.
	StatusFailed Status = "failed"
	// StatusTimeout is terminal: the job exceeded its wall-clock
	// deadline or simulated-cycle budget.
	StatusTimeout Status = "timeout"
	// StatusShed is terminal: the job was load-shed from a full queue
	// before running (its batch had gone idle). Resubmitting the same
	// spec requeues it.
	StatusShed Status = "shed"
)

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusTimeout, StatusShed:
		return true
	}
	return false
}

// JobRecord is the full observable state of one job, as served by the
// API and journaled on terminal transitions.
type JobRecord struct {
	Key      string  `json:"key"`
	Spec     JobSpec `json:"spec"`
	Status   Status  `json:"status"`
	Attempts int     `json:"attempts,omitempty"`
	Error    string  `json:"error,omitempty"`
	// Stack carries the captured goroutine stack of a panicking model.
	Stack  string          `json:"stack,omitempty"`
	Result *traffic.Result `json:"result,omitempty"`
	// Cached marks a job satisfied from the dedupe cache rather than
	// computed for this submission.
	Cached bool `json:"cached,omitempty"`
}

// PanicError is a recovered model panic, converted into an ordinary
// error so it can be journaled and served instead of killing a worker.
type PanicError struct {
	Value string
	Stack string
}

func (e *PanicError) Error() string { return "panic: " + e.Value }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the worker pool retries the job (with
// exponential backoff and jitter, up to its retry bound) instead of
// failing it permanently.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// ValidationError rejects a submission: job Index of the batch failed
// validation. The HTTP layer maps it to 400.
type ValidationError struct {
	Index int
	Err   error
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("sweep: job %d invalid: %v", e.Index, e.Err)
}
func (e *ValidationError) Unwrap() error { return e.Err }

// BacklogError rejects a submission because the queue is full even
// after shedding. The HTTP layer maps it to 429 with a Retry-After.
type BacklogError struct {
	RetryAfter time.Duration
}

func (e *BacklogError) Error() string {
	return fmt.Sprintf("sweep: queue full, retry after %s", e.RetryAfter)
}

// ErrDraining rejects submissions while the service shuts down.
var ErrDraining = errors.New("sweep: service draining")

// ErrBatchMismatch rejects a batch ID reused with different jobs.
var ErrBatchMismatch = errors.New("sweep: batch id exists with different jobs")

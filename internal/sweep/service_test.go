package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/traffic"
)

// instantRunner succeeds immediately with a distinguishable result.
func instantRunner(ctx context.Context, spec JobSpec) (traffic.Result, error) {
	return traffic.Result{Offered: 1, Delivered: 1}, nil
}

func waitDone(t *testing.T, s *Service, id string) BatchSnapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := s.WaitBatch(ctx, id)
	if err != nil {
		t.Fatalf("WaitBatch(%s): %v (snapshot %+v)", id, err, snap)
	}
	return snap
}

func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestServiceRunsBatchToDone(t *testing.T) {
	s, err := NewService(Config{Workers: 2, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	snap, err := s.Submit("", []JobSpec{testSpec(0.02, 1), testSpec(0.05, 2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitDone(t, s, snap.ID)
	for _, rec := range final.Jobs {
		if rec.Status != StatusDone || rec.Result == nil || rec.Attempts != 1 {
			t.Errorf("job %s: %+v, want done with result in one attempt", rec.Key, rec)
		}
	}
}

func TestPanicBecomesFailedRecordWithStack(t *testing.T) {
	// A panicking model must end as a failed record carrying the stack
	// — and the worker that caught it keeps serving other jobs.
	s, err := NewService(Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			if spec.Seed == 666 {
				panic("model corrupted its flit buffer")
			}
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	snap, err := s.Submit("", []JobSpec{testSpec(0.02, 666), testSpec(0.02, 2)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	bad, good := final.Jobs[0], final.Jobs[1]
	if bad.Status != StatusFailed {
		t.Fatalf("panicking job = %s, want failed", bad.Status)
	}
	if !strings.Contains(bad.Error, "model corrupted its flit buffer") {
		t.Errorf("failed record lost the panic value: %q", bad.Error)
	}
	if !strings.Contains(bad.Stack, "sweep") {
		t.Errorf("failed record carries no stack: %q", bad.Stack)
	}
	if good.Status != StatusDone {
		t.Errorf("job after the panic = %s, want done (worker survived)", good.Status)
	}
	if st := s.Stats(); st.Respawns != 0 {
		t.Errorf("respawns = %d, want 0 (panic was recovered in place)", st.Respawns)
	}
}

func TestHungJobHitsWallClockDeadline(t *testing.T) {
	s, err := NewService(Config{
		Workers:        1,
		DefaultMaxWall: 30 * time.Millisecond,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			<-ctx.Done() // a hung model: only the deadline frees the worker
			return traffic.Result{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	snap, err := s.Submit("", []JobSpec{testSpec(0.02, 1)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	if final.Jobs[0].Status != StatusTimeout {
		t.Fatalf("hung job = %+v, want timeout", final.Jobs[0])
	}
}

func TestCycleBudgetBecomesTimeout(t *testing.T) {
	// Real simulator, absurdly small cycle budget: the kernel's cancel
	// hook fires and the service records a timeout, not a hang.
	s, err := NewService(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	spec := testSpec(0.05, 1)
	spec.Measure = 1_000_000
	spec.MaxCycles = 2000
	snap, err := s.Submit("", []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	rec := final.Jobs[0]
	if rec.Status != StatusTimeout || !strings.Contains(rec.Error, "cycle budget") {
		t.Fatalf("over-budget job = %+v, want cycle-budget timeout", rec)
	}
}

func TestTransientErrorsRetryWithBackoffThenSucceed(t *testing.T) {
	var calls atomic.Int32
	var mu sync.Mutex
	var sleeps []time.Duration
	s, err := NewService(Config{
		Workers:           1,
		DefaultMaxRetries: 3,
		BackoffBase:       100 * time.Millisecond,
		BackoffMax:        time.Second,
		Sleep: func(ctx context.Context, d time.Duration) {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
		},
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			if calls.Add(1) <= 2 {
				return traffic.Result{}, Transient(errors.New("spurious allocator hiccup"))
			}
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	snap, err := s.Submit("", []JobSpec{testSpec(0.02, 1)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	rec := final.Jobs[0]
	if rec.Status != StatusDone || rec.Attempts != 3 {
		t.Fatalf("flaky job = %+v, want done in 3 attempts", rec)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != 2 {
		t.Fatalf("backoff slept %d times, want 2 (%v)", len(sleeps), sleeps)
	}
	for i, d := range sleeps {
		// attempt n backs off in [base<<(n-1)/2, base<<(n-1)*1.5]
		base := 100 * time.Millisecond << i
		if d < base/2 || d > base+base/2 {
			t.Errorf("backoff %d = %v, want within ±50%% of %v", i, d, base)
		}
	}
}

func TestTransientErrorsExhaustRetriesThenFail(t *testing.T) {
	var calls atomic.Int32
	s, err := NewService(Config{
		Workers: 1,
		Sleep:   func(context.Context, time.Duration) {},
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			calls.Add(1)
			return traffic.Result{}, Transient(errors.New("never better"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	spec := testSpec(0.02, 1)
	spec.MaxRetries = 1
	snap, err := s.Submit("", []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	rec := final.Jobs[0]
	if rec.Status != StatusFailed || rec.Attempts != 2 {
		t.Fatalf("exhausted job = %+v, want failed after 2 attempts", rec)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner called %d times, want 2", got)
	}
	// MaxRetries -1 disables retries entirely.
	calls.Store(0)
	spec.MaxRetries = -1
	spec.Seed = 2
	snap2, err := s.Submit("", []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitDone(t, s, snap2.ID)
	if final2.Jobs[0].Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("no-retry job attempted %d times (runner %d), want 1", final2.Jobs[0].Attempts, calls.Load())
	}
}

func TestKilledWorkerIsRespawnedAndJobRetried(t *testing.T) {
	// runtime.Goexit kills the worker goroutine outright — no panic to
	// recover. The pool must respawn a replacement and the in-flight
	// job must still reach a terminal state.
	var calls atomic.Int32
	s, err := NewService(Config{
		Workers: 1,
		Sleep:   func(context.Context, time.Duration) {},
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			if calls.Add(1) == 1 {
				runtime.Goexit()
			}
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	snap, err := s.Submit("", []JobSpec{testSpec(0.02, 1)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	rec := final.Jobs[0]
	if rec.Status != StatusDone || rec.Attempts != 2 {
		t.Fatalf("job of killed worker = %+v, want done on attempt 2", rec)
	}
	if st := s.Stats(); st.Respawns != 1 {
		t.Errorf("respawns = %d, want 1", st.Respawns)
	}
}

func TestKilledWorkerExhaustsRetriesToFailure(t *testing.T) {
	s, err := NewService(Config{
		Workers: 1,
		Sleep:   func(context.Context, time.Duration) {},
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			runtime.Goexit() // every attempt kills its worker
			return traffic.Result{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	spec := testSpec(0.02, 1)
	spec.MaxRetries = 1
	snap, err := s.Submit("", []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	rec := final.Jobs[0]
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "worker killed") {
		t.Fatalf("job = %+v, want failed with worker-killed error", rec)
	}
	if st := s.Stats(); st.Respawns != 2 {
		t.Errorf("respawns = %d, want 2", st.Respawns)
	}
}

func TestDedupeAcrossBatches(t *testing.T) {
	var calls atomic.Int32
	s, err := NewService(Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			calls.Add(1)
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	spec := testSpec(0.02, 1)
	snap1, err := s.Submit("", []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, snap1.ID)

	// Same config in a new batch (even with different robustness knobs
	// and execution strategy): served from cache, not recomputed.
	again := spec
	again.MaxRetries = 5
	again.Parallel = true
	snap2, err := s.Submit("", []JobSpec{again, testSpec(0.04, 2)})
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap2.ID)
	if final.Jobs[0].Key != snap1.Jobs[0].Key {
		t.Fatalf("identical configs got different keys: %s vs %s", final.Jobs[0].Key, snap1.Jobs[0].Key)
	}
	if !final.Jobs[0].Cached || final.Jobs[0].Status != StatusDone {
		t.Errorf("dedup hit = %+v, want cached done record", final.Jobs[0])
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("runner ran %d times for 3 submissions of 2 distinct configs, want 2", got)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("cacheHits = %d, want 1", st.CacheHits)
	}
}

func TestBackpressureRejectsWithRetryAfter(t *testing.T) {
	started := make(chan struct{}, 2)
	gate := make(chan struct{})
	s, err := NewService(Config{
		Workers:  1,
		QueueCap: 1,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			started <- struct{}{}
			<-gate
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); drain(t, s) }()

	// Job 1 occupies the worker...
	if _, err := s.Submit("busy", []JobSpec{testSpec(0.02, 1)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	// ...job 2 the single queue slot.
	if _, err := s.Submit("busy2", []JobSpec{testSpec(0.02, 2)}); err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	// Poll the batches so they are active: shedding must not touch them.
	if _, ok := s.BatchStatus("busy2"); !ok {
		t.Fatal("batch lost")
	}
	_, err = s.Submit("over", []JobSpec{testSpec(0.02, 3)})
	var be *BacklogError
	if !errors.As(err, &be) {
		t.Fatalf("over-capacity Submit = %v, want BacklogError", err)
	}
	if be.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", be.RetryAfter)
	}
	if _, ok := s.BatchStatus("over"); ok {
		t.Error("rejected batch was registered")
	}
}

func TestQueuePressureShedsIdleBatch(t *testing.T) {
	started := make(chan struct{}, 2)
	gate := make(chan struct{})
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	s, err := NewService(Config{
		Workers:       1,
		QueueCap:      2,
		ShedIdleAfter: time.Minute,
		Now:           clock,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			started <- struct{}{}
			<-gate
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); drain(t, s) }()

	snap, err := s.Submit("idle", []JobSpec{testSpec(0.02, 1), testSpec(0.02, 2)})
	if err != nil {
		t.Fatal(err)
	}
	queuedKey := snap.Jobs[1].Key
	<-started // job 1 in flight; only job 2 still occupies the queue

	// The batch goes unpolled past the idle threshold...
	nowMu.Lock()
	now = now.Add(2 * time.Minute)
	nowMu.Unlock()

	// ...so a new submission under queue pressure sheds its queued job.
	snap2, err := s.Submit("fresh", []JobSpec{testSpec(0.02, 3), testSpec(0.02, 4)})
	if err != nil {
		t.Fatalf("Submit after idle = %v, want shed to make room", err)
	}
	rec, ok := s.Job(queuedKey)
	if !ok || rec.Status != StatusShed {
		t.Fatalf("idle batch's queued job = %+v, want shed", rec)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
	// The shed record is terminal, so the idle batch still completes.
	_ = snap2
}

func TestDrainFinishesInFlightAndKeepsQueuedPending(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	s, err := NewService(Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "j"),
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			started <- struct{}{}
			<-gate
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("b1", []JobSpec{testSpec(0.02, 1), testSpec(0.02, 2)}); err != nil {
		t.Fatal(err)
	}
	<-started // job 1 is in flight, job 2 queued

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Once the drain flag is visible, submissions are refused.
	for !s.Stats().Draining {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit("late", []JobSpec{testSpec(0.02, 9)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}
	close(gate) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Restart on the same journal: the finished job is served from the
	// journal, the queued one resumes and completes.
	var calls atomic.Int32
	var ranSeeds sync.Map
	s2, err := NewService(Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "j"),
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			calls.Add(1)
			ranSeeds.Store(spec.Seed, true)
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	final := waitDone(t, s2, "b1")
	if !final.Done {
		t.Fatalf("resumed batch not done: %+v", final)
	}
	for i, rec := range final.Jobs {
		if rec.Status != StatusDone {
			t.Errorf("job %d after resume = %s, want done", i, rec.Status)
		}
	}
	if !final.Jobs[0].Cached {
		t.Error("finished job not marked cached after restart")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("restart recomputed: runner ran %d times, want 1 (only the pending job)", got)
	}
	if _, recomputed := ranSeeds.Load(uint64(1)); recomputed {
		t.Error("restart re-ran the journaled done job")
	}
}

func TestForcedDrainReturnsInFlightJobToPending(t *testing.T) {
	// A drain whose deadline expires force-cancels the in-flight job;
	// it must come back as pending (resumed on restart), not failed.
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	s, err := NewService(Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "j"),
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			started <- struct{}{}
			<-ctx.Done() // hung job: survives graceful drain, dies on force
			return traffic.Result{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("b1", []JobSpec{testSpec(0.02, 1)}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("forced Drain: %v", err)
	}

	var calls atomic.Int32
	s2, err := NewService(Config{
		Workers:     1,
		JournalPath: filepath.Join(dir, "j"),
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			calls.Add(1)
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	final := waitDone(t, s2, "b1")
	if final.Jobs[0].Status != StatusDone || calls.Load() != 1 {
		t.Fatalf("force-stopped job after restart = %+v (runner %d), want recomputed done",
			final.Jobs[0], calls.Load())
	}
}

func TestRestartAfterTornJournalWrite(t *testing.T) {
	// Crash simulation at the journal level: finish a batch, then
	// corrupt the journal tail as a mid-write crash would, and restart.
	// The torn record's job must be recomputed; intact ones must not.
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	s, err := NewService(Config{Workers: 1, JournalPath: path, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Submit("b1", []JobSpec{testSpec(0.02, 1), testSpec(0.02, 2)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, snap.ID)
	drain(t, s)

	// Tear the final record: chop the last 5 bytes of the file.
	truncateTail(t, path, 5)

	var calls atomic.Int32
	s2, err := NewService(Config{
		Workers:     1,
		JournalPath: path,
		Runner: func(ctx context.Context, spec JobSpec) (traffic.Result, error) {
			calls.Add(1)
			return instantRunner(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	if st := s2.Stats(); st.JournalDropped == 0 {
		t.Error("torn tail not reported in stats")
	}
	final := waitDone(t, s2, "b1")
	for i, rec := range final.Jobs {
		if rec.Status != StatusDone {
			t.Errorf("job %d = %s, want done", i, rec.Status)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("recomputed %d jobs, want exactly the torn one (1)", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := NewService(Config{Workers: 1, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	bad := testSpec(-0.5, 1)
	_, err = s.Submit("", []JobSpec{testSpec(0.02, 1), bad})
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Index != 1 {
		t.Fatalf("Submit = %v, want ValidationError at index 1", err)
	}
	if _, err := s.Submit("", nil); err == nil {
		t.Error("empty batch accepted")
	}
	// A rejected batch leaves no partial state behind.
	if st := s.Stats(); st.Jobs != 0 || st.QueueLen != 0 {
		t.Errorf("rejected submissions leaked state: %+v", st)
	}
}

func TestBatchIdempotencyAndMismatch(t *testing.T) {
	s, err := NewService(Config{Workers: 1, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	specs := []JobSpec{testSpec(0.02, 1)}
	if _, err := s.Submit("b1", specs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("b1", specs); err != nil {
		t.Errorf("idempotent resubmit rejected: %v", err)
	}
	if _, err := s.Submit("b1", []JobSpec{testSpec(0.09, 9)}); !errors.Is(err, ErrBatchMismatch) {
		t.Errorf("conflicting resubmit = %v, want ErrBatchMismatch", err)
	}
}

// TestConcurrentClocksMatchSerial is the concurrency-correctness
// anchor: N simulations on independent Clocks racing in the pool
// produce results bit-identical to the same jobs run serially. Run
// with -race this also proves the clocks share no state.
func TestConcurrentClocksMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	specs := make([]JobSpec, 8)
	for i := range specs {
		specs[i] = testSpec(0.01+0.01*float64(i%4), uint64(100+i))
	}
	specs[5].Domains = 2 // a sharded job among the plain ones

	serial := make(map[string]traffic.Result, len(specs))
	for _, sp := range specs {
		res, err := sp.TrafficJob.Run(context.Background(), 0)
		if err != nil {
			t.Fatalf("serial run: %v", err)
		}
		serial[sp.Key()] = res
	}

	s, err := NewService(Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	snap, err := s.Submit("", specs)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, snap.ID)
	for _, rec := range final.Jobs {
		if rec.Status != StatusDone {
			t.Fatalf("job %s: %+v", rec.Key, rec)
		}
		if *rec.Result != serial[rec.Key] {
			t.Errorf("job %s diverged under concurrency:\n got %+v\nwant %+v",
				rec.Key, *rec.Result, serial[rec.Key])
		}
	}
}

func truncateTail(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// SubmitRequest is the POST /v1/batches body.
type SubmitRequest struct {
	// ID optionally names the batch; resubmitting the same ID with the
	// same jobs is idempotent. Empty lets the service pick one.
	ID   string    `json:"id,omitempty"`
	Jobs []JobSpec `json:"jobs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/batches          submit a batch       → 202 BatchSnapshot
//	GET  /v1/batches/{id}     poll a batch         → 200 BatchSnapshot
//	GET  /v1/batches/{id}?wait=1   long-poll until done (≤25s)
//	GET  /v1/jobs/{key}       one job's record     → 200 JobRecord
//	GET  /v1/healthz          service stats        → 200 Stats
//
// Failure mapping: invalid spec → 400, unknown id/key → 404, batch id
// conflict → 409, queue full → 429 with Retry-After (seconds),
// draining → 503.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/batches", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
		snap, err := s.Submit(req.ID, req.Jobs)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, snap)
	})

	mux.HandleFunc("GET /v1/batches/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if r.URL.Query().Get("wait") != "" {
			ctx, cancel := context.WithTimeout(r.Context(), 25*time.Second)
			defer cancel()
			snap, err := s.WaitBatch(ctx, id)
			switch {
			case err == nil, errors.Is(err, context.DeadlineExceeded),
				errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
				writeJSON(w, http.StatusOK, snap) // partial snapshot on timeout/drain
			default:
				writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			}
			return
		}
		snap, ok := s.BatchStatus(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown batch " + id})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	mux.HandleFunc("GET /v1/jobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := s.Job(r.PathValue("key"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + r.PathValue("key")})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}

func writeSubmitError(w http.ResponseWriter, err error) {
	var ve *ValidationError
	var be *BacklogError
	switch {
	case errors.As(err, &ve):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: ve.Error()})
	case errors.As(err, &be):
		w.Header().Set("Retry-After", strconv.Itoa(int(be.RetryAfter.Seconds()+0.5)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: be.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrBatchMismatch):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

package edge

import (
	"fmt"

	"repro/internal/core"
)

// Transport selects how image lines move between host and processors.
type Transport int

// Transports. Serial is the paper's RS-232 path (Figure 10's GUI);
// Direct is a zero-cost memory backdoor that isolates the embedded
// compute time from the serial bottleneck.
const (
	Direct Transport = iota
	Serial
)

// Driver distributes lines of an image across MultiNoC processors and
// collects the processed lines, implementing the host side of the
// Figure 10 application.
type Driver struct {
	Sys   *core.System
	T     Transport
	Width int

	kernelLoaded map[int]bool
}

// NewDriver creates a driver for images of the given width.
func NewDriver(sys *core.System, t Transport, width int) *Driver {
	return &Driver{Sys: sys, T: t, Width: width, kernelLoaded: make(map[int]bool)}
}

// LoadKernels assembles the Sobel kernel and starts it on the given
// processors.
func (d *Driver) LoadKernels(procs ...int) error {
	src := ProgramSource(d.Width)
	for _, id := range procs {
		var err error
		if d.T == Serial {
			_, err = d.Sys.LoadProgram(id, src)
		} else {
			_, err = d.Sys.LoadProgramDirect(id, src)
		}
		if err != nil {
			return fmt.Errorf("edge: kernel for processor %d: %w", id, err)
		}
		if err := d.Sys.Activate(id); err != nil {
			return err
		}
		d.kernelLoaded[id] = true
	}
	// Give the activate packets time to land.
	d.Sys.Clk.Run(2000)
	return nil
}

// StopKernels halts the kernels via the exit flag.
func (d *Driver) StopKernels(procs ...int) error {
	for _, id := range procs {
		if err := d.writeWords(id, FlagAddr, []uint16{FlagExit}); err != nil {
			return err
		}
	}
	return d.Sys.RunUntilHalted(1_000_000, procs...)
}

func (d *Driver) writeWords(id int, addr uint16, words []uint16) error {
	p := d.Sys.Proc(id)
	if p == nil {
		return fmt.Errorf("edge: no processor %d", id)
	}
	if d.T == Serial {
		return d.Sys.Host.WriteMemory(p.Addr(), addr, words)
	}
	for i, w := range words {
		p.Banks().Write(addr+uint16(i), w)
	}
	return nil
}

func (d *Driver) readWords(id int, addr uint16, n int) ([]uint16, error) {
	p := d.Sys.Proc(id)
	if d.T == Serial {
		return d.Sys.Host.ReadMemory(p.Addr(), addr, n)
	}
	return p.Banks().Dump(addr, n), nil
}

func rowWords(row []uint8) []uint16 {
	out := make([]uint16, len(row))
	for i, v := range row {
		out[i] = uint16(v)
	}
	return out
}

// Process runs the whole image through the given processors,
// distributing interior lines round-robin and assembling the output.
// It returns the processed image and the simulated clock cycles spent.
func (d *Driver) Process(img Image, procs ...int) (Image, uint64, error) {
	if img.W() != d.Width {
		return nil, 0, fmt.Errorf("edge: image width %d, driver built for %d", img.W(), d.Width)
	}
	for _, id := range procs {
		if !d.kernelLoaded[id] {
			return nil, 0, fmt.Errorf("edge: kernel not loaded on processor %d", id)
		}
	}
	start := d.Sys.Clk.Cycle()
	out := NewImage(img.W(), img.H())
	in0, _, _, outAddr := Layout(d.Width)

	type task struct {
		y    int
		busy bool
	}
	state := make(map[int]*task, len(procs))
	for _, id := range procs {
		state[id] = &task{}
	}
	next := 1
	remaining := 0
	if img.H() > 2 {
		remaining = img.H() - 2
	}

	for remaining > 0 {
		progressed := false
		for _, id := range procs {
			st := state[id]
			if !st.busy && next < img.H()-1 {
				y := next
				next++
				// Three input rows then the go flag.
				var words []uint16
				words = append(words, rowWords(img[y-1])...)
				words = append(words, rowWords(img[y])...)
				words = append(words, rowWords(img[y+1])...)
				if err := d.writeWords(id, in0, words); err != nil {
					return nil, 0, err
				}
				if err := d.writeWords(id, FlagAddr, []uint16{FlagGo}); err != nil {
					return nil, 0, err
				}
				st.y, st.busy = y, true
				progressed = true
				continue
			}
			if st.busy {
				flag, err := d.readWords(id, FlagAddr, 1)
				if err != nil {
					return nil, 0, err
				}
				if flag[0] == FlagDone {
					row, err := d.readWords(id, outAddr, d.Width)
					if err != nil {
						return nil, 0, err
					}
					for x, v := range row {
						out[st.y][x] = uint8(v)
					}
					if err := d.writeWords(id, FlagAddr, []uint16{FlagIdle}); err != nil {
						return nil, 0, err
					}
					st.busy = false
					remaining--
					progressed = true
				}
			}
		}
		if !progressed {
			if d.T == Direct {
				// The memory backdoor is free, so step exactly until a
				// busy kernel posts its result instead of burning a
				// fixed poll interval. A timeout just re-enters the
				// outer loop, which has its own wedge guard.
				_ = d.Sys.Clk.RunUntil(func() bool {
					for _, id := range procs {
						if state[id].busy && d.Sys.Proc(id).Banks().Read(FlagAddr) == FlagDone {
							return true
						}
					}
					return false
				}, 1_000_000)
			} else {
				// Over the serial path each flag poll costs a full
				// frame round trip; let the kernels compute in bulk.
				d.Sys.Clk.Run(200)
			}
		}
		if d.Sys.Clk.Cycle()-start > 500_000_000 {
			return nil, 0, fmt.Errorf("edge: processing wedged")
		}
	}
	return out, d.Sys.Clk.Cycle() - start, nil
}

package edge

import (
	"testing"

	"repro/internal/core"
	"repro/internal/r8asm"
	"repro/internal/r8sim"
	"repro/internal/sim"
)

func TestSobelRowKnownValues(t *testing.T) {
	// A vertical step edge: zeros then 100s.
	above := []uint8{0, 0, 100, 100}
	cur := []uint8{0, 0, 100, 100}
	below := []uint8{0, 0, 100, 100}
	out := SobelRow(above, cur, below)
	if out[0] != 0 || out[3] != 0 {
		t.Error("borders not zeroed")
	}
	// At x=1: gx = (100+200+100) - 0 = 400 -> clamp 255; gy = 0.
	if out[1] != 255 {
		t.Errorf("out[1] = %d, want 255", out[1])
	}
	// At x=2: gx = (100+200+100)-(0) = 400 -> also clamped.
	if out[2] != 255 {
		t.Errorf("out[2] = %d, want 255", out[2])
	}
}

func TestSobelFlatImageIsZero(t *testing.T) {
	img := NewImage(8, 8)
	for y := range img {
		for x := range img[y] {
			img[y][x] = 77
		}
	}
	out := Sobel(img)
	for y := range out {
		for x := range out[y] {
			if out[y][x] != 0 {
				t.Fatalf("flat image produced %d at (%d,%d)", out[y][x], x, y)
			}
		}
	}
}

// kernelRow runs the generated R8 kernel on the fast functional
// simulator for one line and returns the output row.
func kernelRow(t *testing.T, above, cur, below []uint8) []uint8 {
	t.Helper()
	w := len(cur)
	prog, err := r8asm.Assemble(ProgramSource(w))
	if err != nil {
		t.Fatalf("kernel does not assemble:\n%v", err)
	}
	m := r8sim.New(1024)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	in0, in1, in2, outAddr := Layout(w)
	for i := 0; i < w; i++ {
		m.Mem[in0+uint16(i)] = uint16(above[i])
		m.Mem[in1+uint16(i)] = uint16(cur[i])
		m.Mem[in2+uint16(i)] = uint16(below[i])
	}
	m.Mem[FlagAddr] = FlagGo
	for step := 0; step < 2_000_000; step++ {
		m.StepInst()
		if m.Mem[FlagAddr] == FlagDone {
			break
		}
		if m.Halted() {
			t.Fatalf("kernel halted unexpectedly: %v", m.Err())
		}
	}
	if m.Mem[FlagAddr] != FlagDone {
		t.Fatal("kernel never finished")
	}
	out := make([]uint8, w)
	for i := 0; i < w; i++ {
		out[i] = uint8(m.Mem[outAddr+uint16(i)])
	}
	return out
}

func TestKernelMatchesGoldenRow(t *testing.T) {
	above := []uint8{10, 20, 30, 40, 50, 60, 70, 80}
	cur := []uint8{15, 25, 35, 45, 55, 65, 75, 85}
	below := []uint8{12, 22, 32, 200, 52, 62, 72, 82}
	got := kernelRow(t, above, cur, below)
	want := SobelRow(above, cur, below)
	for x := range want {
		if got[x] != want[x] {
			t.Errorf("x=%d: kernel %d, golden %d", x, got[x], want[x])
		}
	}
}

func TestKernelMatchesGoldenRandomized(t *testing.T) {
	r := sim.NewRand(77)
	for trial := 0; trial < 25; trial++ {
		w := 3 + r.Intn(14)
		rows := make([][]uint8, 3)
		for i := range rows {
			rows[i] = make([]uint8, w)
			for x := range rows[i] {
				rows[i][x] = uint8(r.Intn(256))
			}
		}
		got := kernelRow(t, rows[0], rows[1], rows[2])
		want := SobelRow(rows[0], rows[1], rows[2])
		for x := range want {
			if got[x] != want[x] {
				t.Fatalf("trial %d width %d x=%d: kernel %d, golden %d",
					trial, w, x, got[x], want[x])
			}
		}
	}
}

func TestKernelExitFlag(t *testing.T) {
	prog, err := r8asm.Assemble(ProgramSource(8))
	if err != nil {
		t.Fatal(err)
	}
	m := r8sim.New(1024)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	m.Mem[FlagAddr] = FlagExit
	halted, err := m.Run(10000)
	if !halted || err != nil {
		t.Fatalf("exit flag did not halt kernel: %v %v", halted, err)
	}
}

func TestProgramSourcePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 200 accepted")
		}
	}()
	ProgramSource(200)
}

// testImage builds a deterministic image with edges.
func testImage(w, h int) Image {
	img := NewImage(w, h)
	r := sim.NewRand(5)
	for y := range img {
		for x := range img[y] {
			v := uint8(0)
			if x > w/2 {
				v = 200
			}
			if y == h/2 {
				v = 255
			}
			img[y][x] = v + uint8(r.Intn(16))
		}
	}
	return img
}

// TestFullSystemParallelEdgeDetect is experiment E8's correctness half:
// the two-processor MultiNoC must produce the golden Sobel image.
func TestFullSystemParallelEdgeDetect(t *testing.T) {
	sys, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	img := testImage(16, 10)
	d := NewDriver(sys, Direct, 16)
	if err := d.LoadKernels(1, 2); err != nil {
		t.Fatal(err)
	}
	got, cycles, err := d.Process(img, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("no cycles accounted")
	}
	want := Sobel(img)
	if !got.Equal(want) {
		t.Error("parallel edge detection diverges from golden Sobel")
	}
	if err := d.StopKernels(1, 2); err != nil {
		t.Fatal(err)
	}
}

// TestE8SpeedupTwoProcessors is experiment E8's performance half:
// with the serial bottleneck removed, two processors must beat one.
func TestE8SpeedupTwoProcessors(t *testing.T) {
	img := testImage(16, 18)
	want := Sobel(img)
	cycles := map[int]uint64{}
	for _, n := range []int{1, 2} {
		sys, err := core.New(core.Default())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Boot(); err != nil {
			t.Fatal(err)
		}
		d := NewDriver(sys, Direct, 16)
		procs := []int{1, 2}[:n]
		if err := d.LoadKernels(procs...); err != nil {
			t.Fatal(err)
		}
		got, c, err := d.Process(img, procs...)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%d-processor result wrong", n)
		}
		cycles[n] = c
	}
	speedup := float64(cycles[1]) / float64(cycles[2])
	if speedup < 1.5 {
		t.Errorf("2-processor speedup %.2f, want >= 1.5 (1p=%d cycles, 2p=%d)",
			speedup, cycles[1], cycles[2])
	}
}

// TestSerialTransportEdgeDetect runs one line through the full RS-232
// path, the exact Figure 10 dataflow.
func TestSerialTransportEdgeDetect(t *testing.T) {
	sys, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	img := testImage(8, 3)
	d := NewDriver(sys, Serial, 8)
	if err := d.LoadKernels(1); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Process(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Sobel(img)
	if !got.Equal(want) {
		t.Error("serial-path edge detection diverges from golden")
	}
}

func TestDriverErrorPaths(t *testing.T) {
	sys, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(sys, Direct, 16)
	// Kernel not loaded.
	if _, _, err := d.Process(NewImage(16, 4), 1); err == nil {
		t.Error("Process without kernel accepted")
	}
	if err := d.LoadKernels(1); err != nil {
		t.Fatal(err)
	}
	// Wrong width.
	if _, _, err := d.Process(NewImage(8, 4), 1); err == nil {
		t.Error("width mismatch accepted")
	}
	// Unknown processor.
	if err := d.LoadKernels(9); err == nil {
		t.Error("bogus processor id accepted")
	}
}

func TestTinyImages(t *testing.T) {
	sys, err := core.New(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(sys, Direct, 4)
	if err := d.LoadKernels(1); err != nil {
		t.Fatal(err)
	}
	// A 2-row image has no interior lines: output all zero, no work.
	out, _, err := d.Process(NewImage(4, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	for y := range out {
		for x := range out[y] {
			if out[y][x] != 0 {
				t.Fatal("2-row image produced nonzero output")
			}
		}
	}
}

package rcc

import (
	"testing"

	"repro/internal/r8asm"
	"repro/internal/r8sim"
)

const benchSource = `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main() { return fib(12); }
`

// BenchmarkCompile measures the full R8C pipeline (lex, parse, codegen).
func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(benchSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledExecution measures the functional simulator running
// compiled code (recursive fib(12)).
func BenchmarkCompiledExecution(b *testing.B) {
	b.ReportAllocs()
	asm, err := CompileOpts(benchSource, Options{StackTop: 0xFEFF})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := r8asm.Assemble(asm)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		m := r8sim.New(65536)
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		halted, err := m.Run(50_000_000)
		if err != nil || !halted {
			b.Fatalf("halted=%v err=%v", halted, err)
		}
		if int16(m.Regs[3]) != 144 {
			b.Fatalf("fib(12) = %d", int16(m.Regs[3]))
		}
		retired = m.Retired
	}
	b.ReportMetric(float64(retired), "instructions")
}

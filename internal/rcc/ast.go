package rcc

// Program is a parsed R8C translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl is a global variable or array. At, when non-nil, pins the
// symbol to a fixed address instead of allocating storage — the hook
// for the Figure 6 remote windows (e.g. `int remote[1024] @ 0x0800;`).
type VarDecl struct {
	Name string
	// Size is 1 for scalars, the element count for arrays.
	Size    int
	IsArray bool
	At      *int
	Line    int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is `{ ... }`.
type Block struct {
	Stmts []Stmt
}

// LocalDecl is `int x;` or `int x = expr;`.
type LocalDecl struct {
	Name string
	Init Expr
	Line int
}

// Assign is `lhs = expr;` where lhs is a variable or element.
type Assign struct {
	Name  string
	Index Expr // nil for scalars
	Value Expr
	Line  int
}

// If is `if (cond) then else else`.
type If struct {
	Cond Expr
	Then *Block
	Else *Block
}

// While is `while (cond) body`.
type While struct {
	Cond Expr
	Body *Block
}

// For is `for (init; cond; post) body`; any clause may be empty. Init
// and Post are statements (a declaration, assignment or expression);
// a nil Cond means "always true".
type For struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body *Block
}

// Return is `return expr;` (expr may be nil).
type Return struct {
	Value Expr
	Line  int
}

// Break and Continue control the innermost loop.
type Break struct{ Line int }

// Continue re-tests the innermost loop condition.
type Continue struct{ Line int }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	X Expr
}

func (*Block) stmt()     {}
func (*LocalDecl) stmt() {}
func (*Assign) stmt()    {}
func (*If) stmt()        {}
func (*While) stmt()     {}
func (*For) stmt()       {}
func (*Return) stmt()    {}
func (*Break) stmt()     {}
func (*Continue) stmt()  {}
func (*ExprStmt) stmt()  {}

// Expr is an expression node.
type Expr interface{ expr() }

// Num is an integer literal.
type Num struct {
	Val  int
	Line int
}

// Ident references a variable (or bare array name in address context).
type Ident struct {
	Name string
	Line int
}

// Index is `arr[i]`.
type Index struct {
	Name string
	I    Expr
	Line int
}

// Call is `f(args...)`, including the intrinsics.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Binary is a two-operand operation.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Unary is `-x`, `~x` or `!x`.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

func (*Num) expr()    {}
func (*Ident) expr()  {}
func (*Index) expr()  {}
func (*Call) expr()   {}
func (*Binary) expr() {}
func (*Unary) expr()  {}

package rcc

import "fmt"

type parser struct {
	toks []token
	pos  int
}

// Parse builds the AST of an R8C source file.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		if err := p.topLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) line() int  { return p.cur().line }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		what := text
		if what == "" {
			what = fmt.Sprintf("token kind %d", kind)
		}
		return t, errf(t.line, "expected %q, found %q", what, t.text)
	}
	p.advance()
	return t, nil
}

// topLevel parses `int name ...` as either a global or a function.
func (p *parser) topLevel(prog *Program) error {
	if !p.accept(tokKeyword, "int") && !p.accept(tokKeyword, "void") {
		return errf(p.line(), "expected declaration, found %q", p.cur().text)
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if p.at(tokPunct, "(") {
		fn, err := p.funcRest(name)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	g, err := p.globalRest(name)
	if err != nil {
		return err
	}
	prog.Globals = append(prog.Globals, g)
	return nil
}

func (p *parser) globalRest(name token) (*VarDecl, error) {
	d := &VarDecl{Name: name.text, Size: 1, Line: name.line}
	if p.accept(tokPunct, "[") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		if n.val < 1 {
			return nil, errf(n.line, "array %q has size %d", d.Name, n.val)
		}
		d.Size = n.val
		d.IsArray = true
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "@") {
		a, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		at := a.val
		d.At = &at
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) funcRest(name token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name.text, Line: name.line}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, ")") {
		for {
			if !p.accept(tokKeyword, "int") {
				return nil, errf(p.line(), "expected parameter type")
			}
			pn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pn.text)
			if p.accept(tokPunct, ")") {
				break
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, errf(p.line(), "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.accept(tokKeyword, "int"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &LocalDecl{Name: name.text, Line: name.line}
		if p.accept(tokPunct, "=") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil
	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		node := &If{Cond: cond, Then: then}
		if p.accept(tokKeyword, "else") {
			els, err := p.blockOrSingle()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
		return node, nil
	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case p.accept(tokKeyword, "for"):
		return p.forStmt()
	case p.at(tokKeyword, "return"):
		line := p.line()
		p.advance()
		r := &Return{Line: line}
		if !p.at(tokPunct, ";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return r, nil
	case p.at(tokKeyword, "break"):
		line := p.line()
		p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Break{Line: line}, nil
	case p.at(tokKeyword, "continue"):
		line := p.line()
		p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Continue{Line: line}, nil
	}
	// Assignment or expression statement; disambiguate by lookahead.
	if p.at(tokIdent, "") {
		save := p.pos
		name := p.cur()
		p.advance()
		var idx Expr
		ok := true
		if p.accept(tokPunct, "[") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			idx = e
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		if ok && p.accept(tokPunct, "=") {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &Assign{Name: name.text, Index: idx, Value: v, Line: name.line}, nil
		}
		p.pos = save
	}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e}, nil
}

// forStmt parses `for (init; cond; post) body` after the keyword. Any
// clause may be empty; the post clause is an assignment or expression
// without a trailing semicolon.
func (p *parser) forStmt() (Stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &For{}
	if !p.accept(tokPunct, ";") {
		// The init clause is a full statement (declaration, assignment
		// or expression) and consumes its own semicolon.
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		switch s.(type) {
		case *LocalDecl, *Assign, *ExprStmt:
			f.Init = s
		default:
			return nil, errf(p.line(), "invalid for-loop initializer")
		}
	}
	if !p.accept(tokPunct, ";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if !p.at(tokPunct, ")") {
		post, err := p.simpleClause()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// simpleClause parses an assignment or expression without a trailing
// semicolon (the post clause of a for loop).
func (p *parser) simpleClause() (Stmt, error) {
	if p.at(tokIdent, "") {
		save := p.pos
		name := p.cur()
		p.advance()
		var idx Expr
		if p.accept(tokPunct, "[") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			idx = e
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
		}
		if p.accept(tokPunct, "=") {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			return &Assign{Name: name.text, Index: idx, Value: v, Line: name.line}, nil
		}
		p.pos = save
	}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e}, nil
}

func (p *parser) blockOrSingle() (*Block, error) {
	if p.at(tokPunct, "{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}}, nil
}

// Precedence climbing. Levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expression() (Expr, error) { return p.binary(0) }

func (p *parser) binary(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.at(tokPunct, op) {
				line := p.line()
				p.advance()
				right, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &Binary{Op: op, L: left, R: right, Line: line}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	for _, op := range []string{"-", "~", "!"} {
		if p.at(tokPunct, op) {
			line := p.line()
			p.advance()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x, Line: line}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return &Num{Val: t.val, Line: t.line}, nil
	case p.accept(tokPunct, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		if p.accept(tokPunct, "(") {
			call := &Call{Name: t.text, Line: t.line}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expression()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		if p.accept(tokPunct, "[") {
			i, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &Index{Name: t.text, I: i, Line: t.line}, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	default:
		return nil, errf(t.line, "unexpected token %q in expression", t.text)
	}
}

// Package rcc is a compiler for R8C — a small C-like language — to R8
// assembly. It implements the paper's stated future work: "Another
// important tool is a C compiler to automatically generate R8 assembly
// code, allowing faster software implementation" (§5).
//
// The language: 16-bit signed ints, global scalars and arrays
// (optionally placed at fixed addresses with '@' for the Figure 6
// windows), functions with parameters and recursion, if/else, while, for,
// break/continue, the usual C operators, and intrinsics mapping to the
// MultiNoC memory-mapped devices: putc/getw (printf/scanf at 0xFFFF),
// wait/notify (0xFFFE/0xFFFD) and halt().
package rcc

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	val  int
	line int
}

var keywords = map[string]bool{
	"int": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true, "continue": true,
}

// multi-char operators, longest first.
var punct2 = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

// CompileError is a diagnostic tied to a source line.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string { return fmt.Sprintf("rcc: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, errf(l.line, "unterminated block comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, line: l.line}, nil
		}
		return token{kind: tokIdent, text: text, line: l.line}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && isNumPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(strings.ToLower(text), 0, 32)
		if err != nil || v > 0xFFFF {
			return token{}, errf(l.line, "bad number %q", text)
		}
		return token{kind: tokNumber, text: text, val: int(v), line: l.line}, nil
	case c == '\'':
		end := strings.IndexByte(l.src[l.pos+1:], '\'')
		if end < 0 {
			return token{}, errf(l.line, "unterminated character literal")
		}
		lit := l.src[l.pos : l.pos+end+2]
		l.pos += end + 2
		body, err := strconv.Unquote(lit)
		if err != nil || len(body) != 1 {
			return token{}, errf(l.line, "bad character literal %s", lit)
		}
		return token{kind: tokNumber, text: lit, val: int(body[0]), line: l.line}, nil
	default:
		for _, p := range punct2 {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += 2
				return token{kind: tokPunct, text: p, line: l.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%&|^~!<>=(){}[];,@", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, errf(l.line, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
func isNumPart(c byte) bool   { return isIdentPart(c) } // 0x1F etc.

package rcc

import (
	"strings"
	"testing"

	"repro/internal/r8asm"
	"repro/internal/r8sim"
	"repro/internal/sim"
)

// compileToMachine compiles, assembles and loads src into a fresh
// functional machine with the stack placed above any generated code.
func compileToMachine(t *testing.T, src string) *r8sim.Machine {
	t.Helper()
	asm, err := CompileOpts(src, Options{StackTop: 0xFEFF})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := r8asm.Assemble(asm)
	if err != nil {
		t.Fatalf("generated assembly does not assemble: %v\n--- asm ---\n%s", err, asm)
	}
	m := r8sim.New(65536)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	return m
}

// runMain executes until HALT and returns main's return value (R3).
func runMain(t *testing.T, src string) int16 {
	t.Helper()
	m := compileToMachine(t, src)
	halted, err := m.Run(2_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !halted {
		t.Fatal("program did not halt")
	}
	return int16(m.Regs[3])
}

func TestReturnConstant(t *testing.T) {
	if got := runMain(t, "int main() { return 42; }"); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	cases := []struct {
		expr string
		want int16
	}{
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"10-2-3", 5},
		{"100/7", 14},
		{"100%7", 2},
		{"-7/2", -3},
		{"-7%2", -1},
		{"7/-2", -3},
		{"1<<10", 1024},
		{"-16>>2", -4},
		{"0x0F & 0x3C", 0x0C},
		{"0x0F | 0x30", 0x3F},
		{"0x0F ^ 0x05", 0x0A},
		{"~0", -1},
		{"-(3+4)", -7},
		{"!0", 1},
		{"!7", 0},
		{"'A'", 65},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			if got := runMain(t, "int main() { return "+tc.expr+"; }"); got != tc.want {
				t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
			}
		})
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		expr string
		want int16
	}{
		{"3 == 3", 1}, {"3 == 4", 0},
		{"3 != 4", 1}, {"4 != 4", 0},
		{"3 < 4", 1}, {"4 < 3", 0}, {"3 < 3", 0},
		{"4 > 3", 1}, {"3 > 4", 0},
		{"3 <= 3", 1}, {"3 <= 4", 1}, {"4 <= 3", 0},
		{"3 >= 3", 1}, {"4 >= 3", 1}, {"3 >= 4", 0},
		{"-5 < 3", 1}, {"3 < -5", 0},
		{"-32768 < 32767", 1}, {"32767 < -32768", 0},
		{"1 && 1", 1}, {"1 && 0", 0}, {"0 && 1", 0},
		{"0 || 0", 0}, {"0 || 5", 1}, {"5 || 0", 1},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			src := "int main() { return " + strings.ReplaceAll(tc.expr, "32768", "32767 - 32767 + 32768") + "; }"
			// 32768 won't parse as a positive literal into int16 range;
			// rewrite -32768 as -32767-1.
			src = "int main() { return " + strings.ReplaceAll(tc.expr, "-32768", "(-32767-1)") + "; }"
			if got := runMain(t, src); got != tc.want {
				t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
			}
		})
	}
}

func TestWhileLoopSum(t *testing.T) {
	src := `
	int main() {
		int i = 1;
		int sum = 0;
		while (i <= 10) {
			sum = sum + i;
			i = i + 1;
		}
		return sum;
	}`
	if got := runMain(t, src); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
	int main() {
		int i = 0;
		int sum = 0;
		while (1) {
			i = i + 1;
			if (i > 10) break;
			if (i % 2 == 0) continue;
			sum = sum + i;   // odd numbers 1..9
		}
		return sum;
	}`
	if got := runMain(t, src); got != 25 {
		t.Errorf("sum of odds = %d, want 25", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
	int fib(int n) {
		if (n < 2) return n;
		return fib(n-1) + fib(n-2);
	}
	int main() { return fib(10); }`
	if got := runMain(t, src); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestMultipleParamsAndNesting(t *testing.T) {
	src := `
	int mad(int a, int b, int c) { return a*b + c; }
	int main() { return mad(mad(2,3,1), 2, mad(1,1,1)); }`
	// mad(2,3,1)=7; mad(7,2,mad(1,1,1)=2) = 16.
	if got := runMain(t, src); got != 16 {
		t.Errorf("got %d, want 16", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
	int sieve[50];
	int count;
	int main() {
		int i = 2;
		while (i < 50) { sieve[i] = 1; i = i + 1; }
		i = 2;
		while (i < 50) {
			if (sieve[i]) {
				count = count + 1;
				int j = i + i;
				while (j < 50) { sieve[j] = 0; j = j + i; }
			}
			i = i + 1;
		}
		return count;
	}`
	// Primes below 50: 2,3,5,7,11,13,17,19,23,29,31,37,41,43,47 = 15.
	if got := runMain(t, src); got != 15 {
		t.Errorf("primes = %d, want 15", got)
	}
}

func TestPlacedGlobal(t *testing.T) {
	src := `
	int buf[4] @ 0x0300;
	int main() {
		buf[0] = 0x1234;
		buf[3] = 7;
		return buf[0];
	}`
	m := compileToMachine(t, src)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0x0300] != 0x1234 || m.Mem[0x0303] != 7 {
		t.Errorf("placed array: mem[0x300]=%#x mem[0x303]=%d", m.Mem[0x0300], m.Mem[0x0303])
	}
}

func TestPutcAndGetw(t *testing.T) {
	src := `
	int main() {
		int v = getw();
		putc('O'); putc('K');
		putc(v);
		return v;
	}`
	m := compileToMachine(t, src)
	var out []byte
	m.Printf = func(v uint16) { out = append(out, byte(v)) }
	m.Scanf = func() uint16 { return '!' }
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if string(out) != "OK!" {
		t.Errorf("output = %q, want OK!", out)
	}
}

func TestPeekPoke(t *testing.T) {
	src := `
	int main() {
		poke(0x0280, 99);
		return peek(0x0280) + 1;
	}`
	m := compileToMachine(t, src)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.Mem[0x0280] != 99 {
		t.Errorf("poke missed: %d", m.Mem[0x0280])
	}
	if int16(m.Regs[3]) != 100 {
		t.Errorf("peek+1 = %d", int16(m.Regs[3]))
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
	int calls;
	int bump() { calls = calls + 1; return 1; }
	int main() {
		int a = 0 && bump();  // bump must not run
		int b = 1 || bump();  // bump must not run
		int c = 1 && bump();  // bump runs
		return calls;
	}`
	if got := runMain(t, src); got != 1 {
		t.Errorf("side-effect calls = %d, want 1", got)
	}
}

// TestArithmeticPropertyAgainstGo feeds random operand pairs through a
// compiled all-operators program and compares every result with Go's
// int16 semantics.
func TestArithmeticPropertyAgainstGo(t *testing.T) {
	src := `
	int a; int b; int res[16];
	int main() {
		a = getw(); b = getw();
		res[0] = a + b;  res[1] = a - b;  res[2] = a * b;
		res[3] = a & b;  res[4] = a | b;  res[5] = a ^ b;
		res[6] = a == b; res[7] = a != b;
		res[8] = a < b;  res[9] = a > b;
		res[10] = a <= b; res[11] = a >= b;
		if (b != 0) { res[12] = a / b; res[13] = a % b; }
		res[14] = -a; res[15] = ~a;
		return 0;
	}`
	asm, err := CompileOpts(src, Options{StackTop: 0xFEFF})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := r8asm.Assemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	resBase := prog.Symbols["g_res"]
	if resBase == 0 {
		t.Fatal("g_res symbol missing")
	}
	rng := sim.NewRand(31337)
	for trial := 0; trial < 60; trial++ {
		a := int16(rng.Uint64())
		b := int16(rng.Uint64())
		m := r8sim.New(65536)
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		vals := []uint16{uint16(a), uint16(b)}
		m.Scanf = func() uint16 { v := vals[0]; vals = vals[1:]; return v }
		halted, err := m.Run(5_000_000)
		if err != nil || !halted {
			t.Fatalf("trial %d: halted=%v err=%v", trial, halted, err)
		}
		bool16 := func(v bool) int16 {
			if v {
				return 1
			}
			return 0
		}
		want := []int16{
			a + b, a - b, a * b,
			a & b, a | b, a ^ b,
			bool16(a == b), bool16(a != b),
			bool16(a < b), bool16(a > b),
			bool16(a <= b), bool16(a >= b),
			0, 0,
			-a, ^a,
		}
		if b != 0 {
			want[12], want[13] = a/b, a%b
		}
		for i, w := range want {
			got := int16(m.Mem[resBase+uint16(i)])
			if got != w {
				t.Fatalf("trial %d (a=%d b=%d): res[%d] = %d, want %d", trial, a, b, i, got, w)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no main", "int f() { return 1; }", "no main"},
		{"main params", "int main(int x) { return x; }", "main must take no parameters"},
		{"undefined var", "int main() { return x; }", "undefined variable"},
		{"undefined func", "int main() { return f(); }", "undefined function"},
		{"arity", "int f(int a) { return a; } int main() { return f(); }", "takes 1 argument"},
		{"redefined func", "int f() {return 0;} int f() {return 1;} int main() {return 0;}", "redefined"},
		{"redefined global", "int g; int g; int main() { return 0; }", "redefined"},
		{"break outside", "int main() { break; return 0; }", "break outside loop"},
		{"continue outside", "int main() { continue; }", "continue outside loop"},
		{"assign array", "int a[4]; int main() { a = 1; return 0; }", "without an index"},
		{"shadow intrinsic", "int putc(int c) { return c; } int main() { return 0; }", "shadows an intrinsic"},
		{"local shadows param", "int f(int a) { int a; return a; } int main() { return 0; }", "shadows parameter"},
		{"syntax", "int main() { return 1 +; }", "unexpected token"},
		{"lex", "int main() { return `; }", "unexpected character"},
		{"unterminated comment", "/* int main() { return 0; }", "unterminated block comment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatal("compiled without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestDeepExpressionStack(t *testing.T) {
	// Nested temporaries must balance the hardware stack.
	src := `
	int main() {
		return ((1+2)*(3+4) - (5-2)*(1+1)) * ((2*2) + (3*3));
	}`
	// (3*7 - 3*2) * (4+9) = 15*13 = 195.
	if got := runMain(t, src); got != 195 {
		t.Errorf("got %d, want 195", got)
	}
}

func TestLargeFunctionFarJumps(t *testing.T) {
	// A loop body big enough to overflow short jump displacements; the
	// far-jump forms must keep it assembling and running.
	var b strings.Builder
	b.WriteString("int acc; int main() { int i = 0; while (i < 3) {\n")
	for k := 0; k < 60; k++ {
		b.WriteString("acc = acc + 1; acc = acc ^ 0; \n")
	}
	b.WriteString("i = i + 1; }\nreturn acc; }")
	if got := runMain(t, b.String()); got != 180 {
		t.Errorf("got %d, want 180", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `
	int main() {
		int sum = 0;
		int i;
		for (i = 1; i <= 10; i = i + 1) sum = sum + i;
		return sum;
	}`
	if got := runMain(t, src); got != 55 {
		t.Errorf("for sum = %d, want 55", got)
	}
}

func TestForWithDeclInit(t *testing.T) {
	src := `
	int main() {
		int sum = 0;
		for (int i = 0; i < 5; i = i + 1) {
			sum = sum + i * i;
		}
		return sum;   // 0+1+4+9+16 = 30
	}`
	if got := runMain(t, src); got != 30 {
		t.Errorf("got %d, want 30", got)
	}
}

func TestForEmptyClauses(t *testing.T) {
	src := `
	int main() {
		int i = 0;
		for (;;) {
			i = i + 1;
			if (i == 7) break;
		}
		return i;
	}`
	if got := runMain(t, src); got != 7 {
		t.Errorf("got %d, want 7", got)
	}
}

func TestForContinueRunsPost(t *testing.T) {
	// continue must execute the post clause (C semantics), otherwise
	// this loop never terminates.
	src := `
	int main() {
		int sum = 0;
		for (int i = 0; i < 10; i = i + 1) {
			if (i % 2 == 0) continue;
			sum = sum + i;   // 1+3+5+7+9 = 25
		}
		return sum;
	}`
	if got := runMain(t, src); got != 25 {
		t.Errorf("got %d, want 25", got)
	}
}

func TestNestedForLoops(t *testing.T) {
	src := `
	int main() {
		int acc = 0;
		for (int i = 1; i <= 3; i = i + 1)
			for (int j = 1; j <= 4; j = j + 1)
				acc = acc + i * j;
		return acc;   // (1+2+3)*(1+2+3+4) = 60
	}`
	if got := runMain(t, src); got != 60 {
		t.Errorf("got %d, want 60", got)
	}
}

func TestForBadInit(t *testing.T) {
	if _, err := Compile("int main() { for (if (1) {} ; 1;) {} return 0; }"); err == nil {
		t.Error("statement initializer accepted")
	}
}

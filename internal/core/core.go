// Package core assembles complete MultiNoC systems: the Hermes NoC, R8
// Processor IPs, remote Memory IPs, the Serial IP and a host computer,
// wired exactly as Figure 1 of the paper — and, using the NoC's natural
// scalability (§3), larger "sea of processors" variants on bigger
// meshes. It is also the "multiprocessor simulator" the paper lists as
// future work.
package core

import (
	"fmt"
	"sort"

	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/procip"
	"repro/internal/r8asm"
	"repro/internal/serial"
	"repro/internal/sim"
)

// LocalWords is the capacity of every memory in MultiNoC: 1K 16-bit
// words (4 BlockRAMs of 1024 x 4 bits).
const LocalWords = 1024

// WindowBase is where remote address windows start in a processor's
// address space (Figure 6): [1024,2048) is the first window, each
// window is 1024 words.
const WindowBase = 1024

// Config describes a MultiNoC instance.
type Config struct {
	// NoC parameterizes the mesh; zero value means noc.Defaults sized
	// from the placement below.
	NoC noc.Config
	// Serial is the Serial IP's address (the host bridge).
	Serial noc.Addr
	// Procs lists processor placements; processor i gets ID i+1.
	Procs []noc.Addr
	// Memories lists remote memory placements.
	Memories []noc.Addr
	// SerialDiv is the RS-232 divisor in clock cycles per bit.
	SerialDiv int
	// NoCDomains shards the mesh into this many clock domains (column
	// strips, see noc.StripDomains), leaving the host, Serial IP,
	// processors and memories in the default domain 0; 0 or 1 builds
	// the classic single-clock system. Results are bit-identical either
	// way.
	NoCDomains int
	// NoCParallel runs the clock domains of a sharded system on
	// separate goroutines (sim.Group.SetParallel). No effect unless
	// NoCDomains > 1.
	NoCParallel bool
	// NoFlitStreaming disables the mesh's event-per-flit streaming
	// fast path, forcing the stepped 2-cycle handshake on every link.
	// Boot transcripts and all observable state are bit-identical
	// either way; the knob exists for differential testing.
	NoFlitStreaming bool
}

// Default returns the paper's Figure 1 system: a 2x2 Hermes mesh with
// the Serial IP at router 00, processor 1 at 01, processor 2 at 10 and
// the remote memory at 11.
func Default() Config {
	return Config{
		Serial:    noc.Addr{X: 0, Y: 0},
		Procs:     []noc.Addr{{X: 0, Y: 1}, {X: 1, Y: 0}},
		Memories:  []noc.Addr{{X: 1, Y: 1}},
		SerialDiv: 16,
	}
}

// Scaled returns a width x height system with the Serial IP at 00,
// then nProcs processors and nMems memories filling the mesh row-major
// — the paper's §3 scaling scenario ("more instances of the presented
// pre-designed and pre-verified IP cores").
func Scaled(width, height, nProcs, nMems int) (Config, error) {
	if nProcs+nMems+1 > width*height {
		return Config{}, fmt.Errorf("core: %d IPs exceed %dx%d mesh", nProcs+nMems+1, width, height)
	}
	cfg := Config{Serial: noc.Addr{X: 0, Y: 0}, SerialDiv: 16}
	var cells []noc.Addr
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x == 0 && y == 0 {
				continue
			}
			cells = append(cells, noc.Addr{X: x, Y: y})
		}
	}
	cfg.Procs = cells[:nProcs]
	cfg.Memories = cells[nProcs : nProcs+nMems]
	cfg.NoC = noc.Defaults(width, height)
	return cfg, nil
}

// System is a running MultiNoC instance.
type System struct {
	cfg Config

	Clk *sim.Clock
	// Group is the clock-domain group of a sharded system (NoCDomains >
	// 1), nil otherwise. Clk is its domain 0 either way.
	Group  *sim.Group
	Net    *noc.Network
	Host   *host.Host
	Serial *serial.IP
	Procs  []*procip.IP
	Mems   []*mem.IP
}

// New builds and wires the system. The external interface matches the
// paper's four pins: reset (construction), clock (Clk), tx and rx (the
// serial lines owned by Host).
func New(cfg Config) (*System, error) {
	if cfg.SerialDiv <= 0 {
		cfg.SerialDiv = 16
	}
	ncfg := cfg.NoC
	if ncfg.Width == 0 {
		w, h := 0, 0
		for _, a := range append(append([]noc.Addr{cfg.Serial}, cfg.Procs...), cfg.Memories...) {
			if a.X+1 > w {
				w = a.X + 1
			}
			if a.Y+1 > h {
				h = a.Y + 1
			}
		}
		ncfg = noc.Defaults(w, h)
	}
	var (
		clk *sim.Clock
		grp *sim.Group
		net *noc.Network
		err error
	)
	if cfg.NoCDomains > 1 {
		// Domain 0 hosts everything outside the mesh; the mesh fills
		// domains 1..NoCDomains as column strips.
		grp = sim.NewGroup(cfg.NoCDomains + 1)
		grp.SetParallel(cfg.NoCParallel)
		net, err = noc.NewSharded(grp, ncfg, noc.StripDomains(ncfg, cfg.NoCDomains, 1))
		clk = grp.Clock(0)
	} else {
		clk = sim.NewClock()
		net, err = noc.New(clk, ncfg)
	}
	if err != nil {
		return nil, err
	}
	if cfg.NoFlitStreaming {
		net.SetFlitStreaming(false)
	}
	s := &System{cfg: cfg, Clk: clk, Group: grp, Net: net}

	// Serial IP and host, joined by the two RS-232 lines (tx/rx pins).
	toNoC := serial.NewLine(clk, "host-tx")
	fromNoC := serial.NewLine(clk, "host-rx")
	sip, err := serial.NewIP(net, cfg.Serial, toNoC, fromNoC)
	if err != nil {
		return nil, fmt.Errorf("core: serial IP: %w", err)
	}
	s.Serial = sip
	s.Host = host.New(clk, toNoC, fromNoC, cfg.SerialDiv)

	// Processors: ID i+1, windows to every other processor (ID order)
	// then every memory, 1K words each from address 1024 (Figure 6).
	procByID := make(map[uint16]noc.Addr)
	for i, a := range cfg.Procs {
		procByID[uint16(i+1)] = a
	}
	for i, a := range cfg.Procs {
		var targets []noc.Addr
		var ids []int
		for j := range cfg.Procs {
			if j != i {
				ids = append(ids, j)
			}
		}
		sort.Ints(ids)
		for _, j := range ids {
			targets = append(targets, cfg.Procs[j])
		}
		targets = append(targets, cfg.Memories...)
		var windows []procip.Window
		base := uint16(WindowBase)
		for _, tgt := range targets {
			windows = append(windows, procip.Window{Lo: base, Hi: base + LocalWords, Target: tgt})
			base += LocalWords
		}
		p, err := procip.New(net, procip.Config{
			Addr:       a,
			ID:         uint16(i + 1),
			Host:       cfg.Serial,
			Windows:    windows,
			ProcByID:   procByID,
			LocalWords: LocalWords,
		})
		if err != nil {
			return nil, fmt.Errorf("core: processor %d: %w", i+1, err)
		}
		s.Procs = append(s.Procs, p)
	}
	for _, a := range cfg.Memories {
		m, err := mem.NewIP(net, a, LocalWords)
		if err != nil {
			return nil, fmt.Errorf("core: memory at %s: %w", a, err)
		}
		s.Mems = append(s.Mems, m)
	}
	return s, nil
}

// Boot performs the SW/HW synchronization step of Figure 8 (the 0x55
// byte) and must precede every host command.
func (s *System) Boot() error { return s.Host.Sync() }

// Proc returns processor number id (1-based, the paper's numbering).
func (s *System) Proc(id int) *procip.IP {
	if id < 1 || id > len(s.Procs) {
		return nil
	}
	return s.Procs[id-1]
}

// LoadProgram assembles src and downloads it into processor id's local
// memory over the serial path ("Send Generated Object Code").
func (s *System) LoadProgram(id int, src string) (*r8asm.Program, error) {
	prog, err := r8asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	p := s.Proc(id)
	if p == nil {
		return nil, fmt.Errorf("core: no processor %d", id)
	}
	if err := s.Host.LoadProgram(p.Addr(), prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// LoadProgramDirect bypasses the serial link and writes the assembled
// image straight into the processor's banks — the fast path used by
// benchmarks where serial download time is not under measurement.
func (s *System) LoadProgramDirect(id int, src string) (*r8asm.Program, error) {
	prog, err := r8asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	p := s.Proc(id)
	if p == nil {
		return nil, fmt.Errorf("core: no processor %d", id)
	}
	img, err := prog.Flatten(LocalWords)
	if err != nil {
		return nil, err
	}
	if err := p.Banks().Load(img); err != nil {
		return nil, err
	}
	return prog, nil
}

// Activate starts processor id ("Activate Processors").
func (s *System) Activate(id int) error {
	p := s.Proc(id)
	if p == nil {
		return fmt.Errorf("core: no processor %d", id)
	}
	return s.Host.Activate(p.Addr())
}

// RunUntilHalted pumps the clock until every listed processor has
// halted, failing after maxCycles.
func (s *System) RunUntilHalted(maxCycles uint64, ids ...int) error {
	for _, id := range ids {
		if s.Proc(id) == nil {
			return fmt.Errorf("core: no processor %d", id)
		}
	}
	return s.Clk.RunUntil(func() bool {
		for _, id := range ids {
			if !s.Proc(id).Halted() {
				return false
			}
		}
		return true
	}, maxCycles)
}

// DrainIO pumps the clock until every in-flight transfer — NoC flits,
// memory-engine operations, serial frames, UART bits — has settled and
// the whole system is asleep, bounded by maxCycles. It replaces the
// "run a generous fixed cycle count and hope the printf frames made it"
// idiom: with halted (or never-activated) processors the system reaches
// quiescence the cycle the last bit lands. Processors still executing
// keep the system non-quiescent, so callers should RunUntilHalted
// first; a timeout still pumps the clock maxCycles, so output produced
// within the budget is available to read even on error.
func (s *System) DrainIO(maxCycles uint64) error {
	return s.Clk.RunUntilQuiescent(maxCycles)
}

// ReadMemory reads n words from an IP's memory over the serial path
// (Figure 9 step 1). tgt may be a processor or a remote memory.
func (s *System) ReadMemory(tgt noc.Addr, addr uint16, n int) ([]uint16, error) {
	return s.Host.ReadMemory(tgt, addr, n)
}

// Output returns everything processor id has printed so far.
func (s *System) Output(id int) string {
	p := s.Proc(id)
	if p == nil {
		return ""
	}
	return string(s.Host.Printf(p.Addr()))
}

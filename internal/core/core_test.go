package core

import (
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/rcc"
)

// boot builds and synchronizes the Figure 1 system.
func boot(t testing.TB) *System {
	t.Helper()
	s, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBootAutobaud(t *testing.T) {
	s := boot(t)
	if !s.Serial.Synchronized() {
		t.Fatal("serial IP not synchronized after Boot")
	}
	if got := s.Serial.Baud(); got != 16 {
		t.Errorf("detected divisor = %d, want 16", got)
	}
}

func TestAutobaudTracksHostRate(t *testing.T) {
	for _, div := range []int{8, 16, 32, 48} {
		cfg := Default()
		cfg.SerialDiv = div
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Boot(); err != nil {
			t.Fatalf("div %d: %v", div, err)
		}
		if got := s.Serial.Baud(); got != div {
			t.Errorf("div %d: detected %d", div, got)
		}
	}
}

func TestLoadRunPrintf(t *testing.T) {
	s := boot(t)
	src := `
		LDI R1, 0xFFFF
		CLR R0
		LDI R2, 'H'
		ST R2, R1, R0
		LDI R2, 'I'
		ST R2, R1, R0
		HALT
	`
	if _, err := s.LoadProgram(1, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(2_000_000, 1); err != nil {
		t.Fatal(err)
	}
	// Drain the serial pipe so the printf frames reach the host.
	s.Clk.Run(20000)
	if got := s.Output(1); got != "HI" {
		t.Errorf("output = %q, want \"HI\"", got)
	}
	if s.Proc(1).CPU().Err() != nil {
		t.Errorf("CPU error: %v", s.Proc(1).CPU().Err())
	}
}

func TestHostReadWriteRemoteMemory(t *testing.T) {
	s := boot(t)
	memAddr := noc.Addr{X: 1, Y: 1}
	data := []uint16{0xDEAD, 0xBEEF, 0x0042}
	if err := s.Host.WriteMemory(memAddr, 0x0020, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadMemory(memAddr, 0x0020, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range data {
		if got[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, got[i], w)
		}
	}
}

func TestHostReadsProcessorLocalMemory(t *testing.T) {
	// The Figure 9 example: "00 01 01 00 20" reads one word at 0x0020
	// of P1's local memory.
	s := boot(t)
	s.Proc(1).Banks().Write(0x0020, 0x1234)
	got, err := s.ReadMemory(s.Proc(1).Addr(), 0x0020, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x1234 {
		t.Errorf("read = %#x, want 0x1234", got[0])
	}
}

func TestHostLargeTransferChunks(t *testing.T) {
	// 300 words needs chunking both on write and read.
	s := boot(t)
	memAddr := noc.Addr{X: 1, Y: 1}
	data := make([]uint16, 300)
	for i := range data {
		data[i] = uint16(i * 3)
	}
	if err := s.Host.WriteMemory(memAddr, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadMemory(memAddr, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("word %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestScanfRoundTrip(t *testing.T) {
	s := boot(t)
	s.Host.ScanfData = func(src noc.Addr) uint16 { return 41 }
	src := `
		LDI R1, 0xFFFF
		CLR R0
		LD R2, R1, R0    ; scanf
		INC R2
		LDI R3, 0x0100
		ST R2, R3, R0
		HALT
	`
	if _, err := s.LoadProgram(1, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(5_000_000, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Proc(1).Banks().Read(0x0100); got != 42 {
		t.Errorf("mem[0x100] = %d, want 42", got)
	}
	if s.Proc(1).Stats().Scanfs != 1 {
		t.Errorf("scanf count = %d", s.Proc(1).Stats().Scanfs)
	}
}

func TestRemoteMemoryWindow(t *testing.T) {
	// P1 stores/loads through the [2048,3072) window, which maps to the
	// remote Memory IP (Figure 6).
	s := boot(t)
	src := `
		LDI R1, 0x0800   ; 2048: remote memory window
		CLR R0
		LDI R2, 0xBEEF
		ST R2, R1, R0    ; remote[0] = 0xBEEF
		INC R1
		LDI R3, 0x1234
		ST R3, R1, R0    ; remote[1] = 0x1234
		DEC R1
		LD R4, R1, R0    ; read back remote[0]
		LDI R5, 0x0100
		ST R4, R5, R0
		HALT
	`
	if _, err := s.LoadProgramDirect(1, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(2_000_000, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Mems[0].Banks().Read(0); got != 0xBEEF {
		t.Errorf("remote[0] = %#x, want 0xBEEF", got)
	}
	if got := s.Mems[0].Banks().Read(1); got != 0x1234 {
		t.Errorf("remote[1] = %#x, want 0x1234", got)
	}
	if got := s.Proc(1).Banks().Read(0x0100); got != 0xBEEF {
		t.Errorf("read-back = %#x, want 0xBEEF", got)
	}
	st := s.Proc(1).Stats()
	if st.RemoteWrites != 2 || st.RemoteReads != 1 {
		t.Errorf("remote ops: %+v", st)
	}
}

func TestOtherProcessorWindow(t *testing.T) {
	// P1's [1024,2048) window is P2's local memory (NUMA access).
	s := boot(t)
	src := `
		LDI R1, 0x0400   ; 1024: other-processor window
		CLR R0
		LDI R2, 0x00AB
		ST R2, R1, R0    ; P2.mem[0] = 0xAB
		LD R3, R1, R0    ; read it back through the NoC
		LDI R4, 0x0100
		ST R3, R4, R0
		HALT
	`
	if _, err := s.LoadProgramDirect(1, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(2_000_000, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Proc(2).Banks().Read(0); got != 0x00AB {
		t.Errorf("P2.mem[0] = %#x, want 0xAB", got)
	}
	if got := s.Proc(1).Banks().Read(0x0100); got != 0x00AB {
		t.Errorf("P1 read-back = %#x, want 0xAB", got)
	}
}

// waitNotifySources builds the paper's §2.4 example: P1 blocks on a
// wait for processor 2; P2 notifies processor 1.
const waiterSrc = `
	LDI R2, 0xFFFE   ; wait address (paper example register use)
	CLR R1
	LDI R3, 2        ; wait for processor 2
	ST R3, R1, R2    ; blocks here
	LDI R4, 0x0100
	LDI R5, 0x00AA
	CLR R0
	ST R5, R4, R0    ; marker written only after wake-up
	HALT
`

const notifierSrc = `
	LDI R6, 100      ; work for a while first
d:	DEC R6
	JMPNZ d
	LDI R2, 0xFFFD   ; notify address
	CLR R1
	LDI R3, 1        ; wake processor 1
	ST R3, R1, R2
	HALT
`

func TestWaitNotify(t *testing.T) {
	s := boot(t)
	if _, err := s.LoadProgramDirect(1, waiterSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadProgramDirect(2, notifierSrc); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	// Let P1 reach the wait and verify it is actually blocked.
	if err := s.Clk.RunUntil(func() bool { return s.Proc(1).Waiting() }, 1_000_000); err != nil {
		t.Fatal("P1 never blocked:", err)
	}
	if s.Proc(1).Halted() {
		t.Fatal("P1 ran past the wait")
	}
	if err := s.Activate(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(2_000_000, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.Proc(1).Banks().Read(0x0100); got != 0x00AA {
		t.Errorf("marker = %#x, want 0xAA", got)
	}
	st1, st2 := s.Proc(1).Stats(), s.Proc(2).Stats()
	if st1.WaitsBlocked != 1 || st1.NotifiesRecv != 1 {
		t.Errorf("P1 stats: %+v", st1)
	}
	if st2.Notifies != 1 || st2.WaitRegsRecv != 1 {
		t.Errorf("P2 stats: %+v", st2)
	}
}

func TestNotifyBeforeWaitIsNotLost(t *testing.T) {
	// Reversed race: the notify lands before P1 executes its wait; the
	// pending-notify queue must absorb it (DESIGN.md §4.2).
	s := boot(t)
	if _, err := s.LoadProgramDirect(1, `
		LDI R6, 250      ; dawdle so the notify arrives first
d:	DEC R6
		JMPNZ d
	`+waiterSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadProgramDirect(2, `
		LDI R2, 0xFFFD
		CLR R1
		LDI R3, 1
		ST R3, R1, R2    ; notify immediately
		HALT
	`); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(1_000_000, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(2_000_000, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Proc(1).Banks().Read(0x0100); got != 0x00AA {
		t.Errorf("marker = %#x, want 0xAA", got)
	}
	if s.Proc(1).Stats().WaitsBlocked != 0 {
		t.Error("P1 blocked although the notify was already pending")
	}
}

func TestActivateRestartsHaltedProcessor(t *testing.T) {
	s := boot(t)
	src := `
		LDI R1, 0x0100
		CLR R0
		LD R2, R1, R0
		INC R2
		ST R2, R1, R0
		HALT
	`
	if _, err := s.LoadProgramDirect(1, src); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		if err := s.Activate(1); err != nil {
			t.Fatal(err)
		}
		// The activate packet needs NoC transit time: wait for the core
		// to leave its halted state before waiting for completion.
		if err := s.Clk.RunUntil(func() bool { return !s.Proc(1).Halted() }, 100_000); err != nil {
			t.Fatalf("round %d: activation never took effect: %v", round, err)
		}
		if err := s.RunUntilHalted(1_000_000, 1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := s.Proc(1).Banks().Read(0x0100); got != uint16(round) {
			t.Fatalf("round %d: counter = %d", round, got)
		}
	}
}

func TestScaledSystemBuilds(t *testing.T) {
	cfg, err := Scaled(4, 4, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Procs) != 14 || len(s.Mems) != 1 {
		t.Fatalf("built %d procs, %d mems", len(s.Procs), len(s.Mems))
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	// Every processor must be reachable: poke each local memory.
	for i := 1; i <= 14; i++ {
		addr := s.Proc(i).Addr()
		if err := s.Host.WriteMemory(addr, 0x10, []uint16{uint16(i)}); err != nil {
			t.Fatalf("proc %d write: %v", i, err)
		}
	}
	for i := 1; i <= 14; i++ {
		got, err := s.ReadMemory(s.Proc(i).Addr(), 0x10, 1)
		if err != nil {
			t.Fatalf("proc %d read: %v", i, err)
		}
		if got[0] != uint16(i) {
			t.Errorf("proc %d mem = %d", i, got[0])
		}
	}
}

func TestScaledRejectsOverfullMesh(t *testing.T) {
	if _, err := Scaled(2, 2, 4, 1); err == nil {
		t.Error("overfull mesh accepted")
	}
}

func TestAssemblyErrorSurfaces(t *testing.T) {
	s := boot(t)
	_, err := s.LoadProgram(1, "BOGUS R1")
	if err == nil || !strings.Contains(err.Error(), "unknown mnemonic") {
		t.Errorf("err = %v", err)
	}
}

func TestScaledWindowMapping(t *testing.T) {
	// With three processors, each CPU's windows cover the other two
	// processors (in ID order) and then the memories. P1 writing into
	// window 2 must land in P3's local memory.
	cfg, err := Scaled(3, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	src := `
		LDI R1, 0x0400   ; window 1: next processor in ID order
		CLR R0
		LDI R2, 0x0011
		ST R2, R1, R0
		LDI R1, 0x0800   ; window 2: the other processor
		LDI R2, 0x0022
		ST R2, R1, R0
		LDI R1, 0x0C00   ; window 3: the remote memory
		LDI R2, 0x0033
		ST R2, R1, R0
		HALT
	`
	if _, err := s.LoadProgramDirect(1, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(2_000_000, 1); err != nil {
		t.Fatal(err)
	}
	// Posted writes may still be in flight at HALT.
	s.Clk.Run(2000)
	if got := s.Proc(2).Banks().Read(0); got != 0x0011 {
		t.Errorf("P2.mem[0] = %#x, want 0x11 (P1's window 1)", got)
	}
	if got := s.Proc(3).Banks().Read(0); got != 0x0022 {
		t.Errorf("P3.mem[0] = %#x, want 0x22 (P1's window 2)", got)
	}
	if got := s.Mems[0].Banks().Read(0); got != 0x0033 {
		t.Errorf("remote[0] = %#x, want 0x33 (P1's window 3)", got)
	}
}

func TestCompiledProgramOnSystem(t *testing.T) {
	// The R8C compiler's output must run unchanged on the full system,
	// including its intrinsics: P1 computes with getw/putc, P2 is woken
	// by a compiled notify().
	s := boot(t)
	s.Host.ScanfData = func(noc.Addr) uint16 { return 6 }
	src1 := `
	int fact(int n) {
		if (n < 2) return 1;
		return n * fact(n - 1);
	}
	int out[1] @ 0x0100;
	int main() {
		out[0] = fact(getw());   // 6! = 720
		putc('D');
		notify(2);
		return 0;
	}`
	src2 := `
	int out[1] @ 0x0100;
	int main() {
		wait(1);
		out[0] = 0x77;
		return 0;
	}`
	asm1, err := rcc.Compile(src1)
	if err != nil {
		t.Fatal(err)
	}
	asm2, err := rcc.Compile(src2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadProgramDirect(2, asm2); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Clk.RunUntil(func() bool { return s.Proc(2).Waiting() }, 1_000_000); err != nil {
		t.Fatal("P2 never reached its wait:", err)
	}
	if _, err := s.LoadProgramDirect(1, asm1); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilHalted(10_000_000, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.Proc(1).Banks().Read(0x0100); got != 720 {
		t.Errorf("6! = %d, want 720", got)
	}
	if got := s.Proc(2).Banks().Read(0x0100); got != 0x77 {
		t.Errorf("P2 marker = %#x, want 0x77", got)
	}
	s.Clk.Run(30000)
	if out := s.Output(1); out != "D" {
		t.Errorf("P1 output %q", out)
	}
}

// TestTimeWarpBootTranscriptIdentical: a full serial boot — 0x55
// auto-baud, a memory write, a read round trip and a printf program —
// must produce a bit-identical transcript with time warping on, off,
// and under the dense reference kernel: same final cycle count, same
// detected baud, same frame tallies, same read-back words, same
// program output. This is the whole-stack differential for the
// time-warp kernel: the serial path exercises UART edge timers, the
// NoC path the router delay timers.
func TestTimeWarpBootTranscriptIdentical(t *testing.T) {
	type transcript struct {
		cycles       uint64
		baud         int
		framesSent   uint64
		framesRecv   uint64
		framesToNoC  uint64
		framesToHost uint64
		words        [8]uint16
		output       string
	}
	run := func(dense, warp bool) transcript {
		s, err := New(Default())
		if err != nil {
			t.Fatal(err)
		}
		s.Clk.SetActivityScheduling(!dense)
		s.Clk.SetTimeWarp(warp)
		if err := s.Boot(); err != nil {
			t.Fatal(err)
		}
		memAddr := noc.Addr{X: 1, Y: 1}
		if err := s.Host.WriteMemory(memAddr, 0, []uint16{10, 20, 30, 40, 50, 60, 70, 80}); err != nil {
			t.Fatal(err)
		}
		got, err := s.ReadMemory(memAddr, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadProgram(1, `
			LDI R1, 0xFFFF
			CLR R0
			LDI R2, 'W'
			ST R2, R1, R0
			HALT
		`); err != nil {
			t.Fatal(err)
		}
		if err := s.Activate(1); err != nil {
			t.Fatal(err)
		}
		if err := s.RunUntilHalted(2_000_000, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.DrainIO(1_000_000); err != nil {
			t.Fatal(err)
		}
		tr := transcript{
			cycles:       s.Clk.Cycle(),
			baud:         s.Serial.Baud(),
			framesSent:   s.Host.FramesSent,
			framesRecv:   s.Host.FramesRecv,
			framesToNoC:  s.Serial.FramesToNoC,
			framesToHost: s.Serial.FramesToHost,
			output:       s.Output(1),
		}
		copy(tr.words[:], got)
		return tr
	}
	ref := run(false, true) // the default configuration: sparse + warp
	if ref.words != [8]uint16{10, 20, 30, 40, 50, 60, 70, 80} {
		t.Fatalf("read-back words wrong: %v", ref.words)
	}
	if ref.output != "W" {
		t.Fatalf("program output = %q, want W", ref.output)
	}
	for _, tc := range []struct {
		name        string
		dense, warp bool
	}{{"sparse-nowarp", false, false}, {"dense", true, false}} {
		if got := run(tc.dense, tc.warp); got != ref {
			t.Errorf("%s transcript diverges:\n  warp %+v\n  got  %+v", tc.name, ref, got)
		}
	}
}

// TestShardedBootTranscriptIdentical: the same whole-stack transcript
// must be bit-identical when the mesh is sharded into clock domains —
// in lockstep and in parallel — on the Figure 1 system and on a larger
// scaled one. The serial path crosses the domain-0/mesh boundary on
// every frame; processors and memories talk to their routers over
// cross-domain Local-port links throughout.
func TestShardedBootTranscriptIdentical(t *testing.T) {
	type transcript struct {
		cycles       uint64
		baud         int
		framesSent   uint64
		framesRecv   uint64
		framesToNoC  uint64
		framesToHost uint64
		words        [8]uint16
		output       string
	}
	run := func(cfg Config, domains int, parallel bool) transcript {
		cfg.NoCDomains = domains
		cfg.NoCParallel = parallel
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if domains > 1 && s.Group == nil {
			t.Fatal("sharded system has no Group")
		}
		if err := s.Boot(); err != nil {
			t.Fatal(err)
		}
		memAddr := cfg.Memories[0]
		if err := s.Host.WriteMemory(memAddr, 0, []uint16{10, 20, 30, 40, 50, 60, 70, 80}); err != nil {
			t.Fatal(err)
		}
		got, err := s.ReadMemory(memAddr, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadProgram(1, `
			LDI R1, 0xFFFF
			CLR R0
			LDI R2, 'W'
			ST R2, R1, R0
			HALT
		`); err != nil {
			t.Fatal(err)
		}
		if err := s.Activate(1); err != nil {
			t.Fatal(err)
		}
		if err := s.RunUntilHalted(2_000_000, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.DrainIO(1_000_000); err != nil {
			t.Fatal(err)
		}
		tr := transcript{
			cycles:       s.Clk.Cycle(),
			baud:         s.Serial.Baud(),
			framesSent:   s.Host.FramesSent,
			framesRecv:   s.Host.FramesRecv,
			framesToNoC:  s.Serial.FramesToNoC,
			framesToHost: s.Serial.FramesToHost,
			output:       s.Output(1),
		}
		copy(tr.words[:], got)
		return tr
	}
	scaled, err := Scaled(4, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []struct {
		name    string
		cfg     Config
		domains []int
	}{
		{"fig1", Default(), []int{2}},
		{"scaled4x4", scaled, []int{2, 4}},
	} {
		ref := run(sys.cfg, 0, false)
		if ref.output != "W" {
			t.Fatalf("%s: program output = %q, want W", sys.name, ref.output)
		}
		for _, d := range sys.domains {
			for _, parallel := range []bool{false, true} {
				if got := run(sys.cfg, d, parallel); got != ref {
					t.Errorf("%s domains=%d parallel=%v transcript diverges:\n  ref %+v\n  got %+v",
						sys.name, d, parallel, ref, got)
				}
			}
		}
	}
}

// TestStreamingBootTranscriptIdentical: the whole-stack transcript —
// auto-baud, memory round trip, program load, run and printf output —
// must be bit-identical with the NoC's event-per-flit streaming fast
// path on (the default) and off, on the single-clock Figure 1 system
// and on a sharded build whose serial frames cross a streaming mesh on
// every hop.
func TestStreamingBootTranscriptIdentical(t *testing.T) {
	type transcript struct {
		cycles       uint64
		baud         int
		framesSent   uint64
		framesRecv   uint64
		framesToNoC  uint64
		framesToHost uint64
		words        [8]uint16
		output       string
	}
	run := func(domains int, streaming bool) transcript {
		cfg := Default()
		cfg.NoCDomains = domains
		cfg.NoFlitStreaming = !streaming
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Boot(); err != nil {
			t.Fatal(err)
		}
		memAddr := cfg.Memories[0]
		if err := s.Host.WriteMemory(memAddr, 0, []uint16{10, 20, 30, 40, 50, 60, 70, 80}); err != nil {
			t.Fatal(err)
		}
		got, err := s.ReadMemory(memAddr, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadProgram(1, `
			LDI R1, 0xFFFF
			CLR R0
			LDI R2, 'W'
			ST R2, R1, R0
			HALT
		`); err != nil {
			t.Fatal(err)
		}
		if err := s.Activate(1); err != nil {
			t.Fatal(err)
		}
		if err := s.RunUntilHalted(2_000_000, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.DrainIO(1_000_000); err != nil {
			t.Fatal(err)
		}
		tr := transcript{
			cycles:       s.Clk.Cycle(),
			baud:         s.Serial.Baud(),
			framesSent:   s.Host.FramesSent,
			framesRecv:   s.Host.FramesRecv,
			framesToNoC:  s.Serial.FramesToNoC,
			framesToHost: s.Serial.FramesToHost,
			output:       s.Output(1),
		}
		copy(tr.words[:], got)
		return tr
	}
	for _, domains := range []int{0, 2} {
		ref := run(domains, true)
		if ref.output != "W" {
			t.Fatalf("domains=%d: program output = %q, want W", domains, ref.output)
		}
		if got := run(domains, false); got != ref {
			t.Errorf("domains=%d: stepped transcript diverges from streaming:\n  streaming %+v\n  stepped   %+v",
				domains, ref, got)
		}
	}
}

#!/usr/bin/env bash
# Integration smoke for the sweep service's crash-safety story: start
# sweepd, submit a batch, SIGKILL the server mid-batch (no drain, the
# hard way), restart it on the same journal, and assert that
#   (a) every job still reaches a terminal state, and
#   (b) jobs finished before the crash are served from the journal,
#       not recomputed.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null; rm -rf "$workdir"' EXIT

go build -o "$workdir/sweepd" ./cmd/sweepd
addr=127.0.0.1:18080

start() {
  "$workdir/sweepd" -addr "$addr" -workers 2 -journal "$workdir/journal" \
    2>>"$workdir/log" &
  pid=$!
  for _ in $(seq 1 100); do
    curl -sf "http://$addr/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "FAIL: sweepd did not come up"; cat "$workdir/log"; exit 1
}

stat_field() { # stat_field <name>: read an integer field from healthz
  curl -sf "http://$addr/v1/healthz" | grep -o "\"$1\": [0-9]*" | grep -o '[0-9]*'
}

njobs=12
batch='{"id":"smoke","jobs":['
sep=''
for seed in $(seq 1 $njobs); do
  batch+="$sep{\"width\":8,\"height\":8,\"rate\":0.08,\"seed\":$seed,\"payloadFlits\":4,\"measure\":400000}"
  sep=','
done
batch+=']}'

start
code=$(curl -s -o "$workdir/submit.json" -w '%{http_code}' \
  -X POST "http://$addr/v1/batches" -d "$batch")
if [ "$code" != 202 ]; then
  echo "FAIL: submit returned $code"; cat "$workdir/submit.json"; exit 1
fi

# Let some — not all — jobs finish, then crash the server ungracefully.
computed=0
for _ in $(seq 1 600); do
  computed=$(stat_field computed || echo 0)
  [ "${computed:-0}" -ge 3 ] && break
  sleep 0.1
done
if [ "${computed:-0}" -lt 3 ]; then
  echo "FAIL: no progress before kill (computed=$computed)"; cat "$workdir/log"; exit 1
fi
echo "SIGKILL with $computed/$njobs jobs computed"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

start  # restart on the same journal: pending jobs must resume
for _ in $(seq 1 1200); do
  curl -sf "http://$addr/v1/batches/smoke" > "$workdir/batch.json"
  grep -q '"done": true' "$workdir/batch.json" && break
  sleep 0.1
done
if ! grep -q '"done": true' "$workdir/batch.json"; then
  echo "FAIL: batch not terminal after restart"; cat "$workdir/batch.json"; exit 1
fi

ndone=$(grep -c '"status": "done"' "$workdir/batch.json")
if [ "$ndone" -ne "$njobs" ]; then
  echo "FAIL: $ndone of $njobs jobs done after restart"; cat "$workdir/batch.json"; exit 1
fi

recomputed=$(stat_field computed)
if [ "$recomputed" -gt $((njobs - 3)) ]; then
  echo "FAIL: restart recomputed $recomputed jobs; at least 3 were journaled"
  exit 1
fi

kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null || true
pid=""
echo "PASS: all $njobs jobs terminal; $recomputed recomputed after crash, $((njobs - recomputed)) served from journal"

// Command multinoc boots the paper's Figure 1 system — a 2x2 Hermes
// mesh with two R8 processors, a remote memory and a serial host
// bridge — then drives the Figure 8 flow: synchronize baud, download
// object code, activate processors, run, and read results back.
//
// Usage:
//
//	multinoc                         # built-in hello demo on P1
//	multinoc -p1 prog1.asm -p2 prog2.asm [-cycles 2000000]
//	multinoc -p1 prog.asm -read 11:0x0000:8   # dump remote memory
//	multinoc -p1 prog.rc             # .rc files go through the R8C compiler
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/rcc"
)

const hello = `
	LDI R1, 0xFFFF
	CLR R0
	LDI R2, 'H'
	ST R2, R1, R0
	LDI R2, 'e'
	ST R2, R1, R0
	LDI R2, 'l'
	ST R2, R1, R0
	ST R2, R1, R0
	LDI R2, 'o'
	ST R2, R1, R0
	LDI R2, 10
	ST R2, R1, R0
	HALT
`

func main() {
	p1 := flag.String("p1", "", "program for processor 1 (.asm or .rc)")
	p2 := flag.String("p2", "", "program for processor 2 (.asm or .rc)")
	read := flag.String("read", "", "after the run, read memory: tgt:addr:count (tgt like 01, 10, 11)")
	cycles := flag.Uint64("cycles", 5_000_000, "cycle budget for the run")
	in := flag.String("in", "", "comma-separated scanf answers")
	flag.Parse()

	sys, err := core.New(core.Default())
	if err != nil {
		fatal(err)
	}
	if *in != "" {
		vals := []uint16{}
		for _, f := range strings.Split(*in, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 17)
			if err != nil {
				fatal(err)
			}
			vals = append(vals, uint16(v))
		}
		sys.Host.ScanfData = func(noc.Addr) uint16 {
			if len(vals) == 0 {
				fatal(fmt.Errorf("scanf requested but -in exhausted"))
			}
			v := vals[0]
			vals = vals[1:]
			return v
		}
	}
	fmt.Fprintln(os.Stderr, "synchronizing (0x55)...")
	if err := sys.Boot(); err != nil {
		fatal(err)
	}

	load := func(id int, path string) {
		src := hello
		if path != "" {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			src = string(data)
			if strings.HasSuffix(path, ".rc") {
				src, err = rcc.Compile(src)
				if err != nil {
					fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "downloading program to processor %d...\n", id)
		if _, err := sys.LoadProgram(id, src); err != nil {
			fatal(err)
		}
		if err := sys.Activate(id); err != nil {
			fatal(err)
		}
	}

	var active []int
	if *p1 != "" || *p2 == "" {
		load(1, *p1)
		active = append(active, 1)
	}
	if *p2 != "" {
		load(2, *p2)
		active = append(active, 2)
	}

	if err := sys.RunUntilHalted(*cycles, active...); err != nil {
		fmt.Fprintf(os.Stderr, "run: %v (continuing to drain output)\n", err)
	}
	// Flush printf frames through the serial line; after a watchdog
	// timeout processors may still run, so cap the drain instead of
	// insisting on quiescence.
	_ = sys.DrainIO(50_000)

	for _, id := range active {
		if out := sys.Output(id); out != "" {
			fmt.Printf("P%d> %s", id, out)
			if !strings.HasSuffix(out, "\n") {
				fmt.Println()
			}
		}
		cpu := sys.Proc(id).CPU()
		fmt.Fprintf(os.Stderr, "P%d: halted=%v cycles=%d retired=%d CPI=%.2f\n",
			id, cpu.Halted(), cpu.Cycles, cpu.Retired, cpu.CPI())
	}

	if *read != "" {
		parts := strings.Split(*read, ":")
		if len(parts) != 3 {
			fatal(fmt.Errorf("bad -read spec %q", *read))
		}
		tgtCode, err := strconv.ParseUint(parts[0], 16, 8)
		if err != nil {
			fatal(err)
		}
		addr, err := strconv.ParseUint(parts[1], 0, 16)
		if err != nil {
			fatal(err)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			fatal(err)
		}
		words, err := sys.ReadMemory(noc.DecodeAddr(uint16(tgtCode)), uint16(addr), n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("memory of IP %s at 0x%04X:", parts[0], addr)
		for _, w := range words {
			fmt.Printf(" %04X", w)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "multinoc:", err)
	os.Exit(1)
}

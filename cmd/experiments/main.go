// Command experiments regenerates every experiment of EXPERIMENTS.md:
// one section per quantitative claim or figure of the paper, with
// paper-vs-measured values (see DESIGN.md §5 for the index).
//
// Usage:
//
//	experiments [-o EXPERIMENTS.md] [-only E1,E8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("o", "", "write the report to a file (default: stdout)")
	only := flag.String("only", "", "comma-separated experiment IDs to run")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *only == "" {
		if err := experiments.Report(w); err != nil {
			fatal(err)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToUpper(id))] = true
	}
	for _, s := range experiments.All() {
		if !want[s.ID] {
			continue
		}
		fmt.Fprintf(w, "\n## %s: %s\n\n", s.ID, s.Name)
		if err := s.Run(w); err != nil {
			fatal(fmt.Errorf("%s: %w", s.ID, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

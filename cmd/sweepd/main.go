// Command sweepd serves the fault-tolerant design-space sweep service
// over HTTP: submit a batch of simulation configurations, poll until
// every job is terminal, read the aggregated latency/throughput
// results. See internal/sweep for the robustness guarantees (panic
// isolation, deadlines, retry, backpressure, crash-safe journal).
//
// Usage:
//
//	sweepd -addr :8080 -journal sweep.journal -workers 8
//
// Submit a batch and wait for it (jq-free: the response is indented
// JSON):
//
//	curl -s -X POST localhost:8080/v1/batches -d '{
//	  "id": "rate-sweep",
//	  "jobs": [
//	    {"rate": 0.02, "seed": 1},
//	    {"rate": 0.05, "seed": 1},
//	    {"rate": 0.08, "seed": 1, "routing": "westfirst"}
//	  ]
//	}'
//	curl -s 'localhost:8080/v1/batches/rate-sweep?wait=1'
//
// On SIGTERM/SIGINT the server stops accepting work, finishes
// in-flight jobs (up to -drain-timeout), and exits; queued jobs stay
// in the journal and resume on the next start. Re-POSTing a finished
// batch after a restart is answered from the journal-backed result
// cache without recomputing anything.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent simulation workers")
	queue := flag.Int("queue", 256, "max queued jobs before backpressure")
	journal := flag.String("journal", "sweep.journal", "crash-safe result journal path (empty = in-memory)")
	maxWall := flag.Duration("max-wall", 2*time.Minute, "default per-job wall-clock deadline")
	maxCycles := flag.Uint64("max-cycles", 50_000_000, "default per-job simulated-cycle budget")
	retries := flag.Int("retries", 2, "default transient-failure retries per job")
	shedIdle := flag.Duration("shed-idle", 30*time.Second, "shed queued jobs of batches unpolled this long (negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	flag.Parse()

	svc, err := sweep.NewService(sweep.Config{
		Workers:           *workers,
		QueueCap:          *queue,
		JournalPath:       *journal,
		DefaultMaxWall:    *maxWall,
		DefaultMaxCycles:  *maxCycles,
		DefaultMaxRetries: *retries,
		ShedIdleAfter:     *shedIdle,
	})
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	if st := svc.Stats(); st.QueueLen > 0 || st.JournalDropped > 0 {
		log.Printf("sweepd: journal replay: %d jobs resumed, %d known, %d bytes of corrupt tail dropped",
			st.QueueLen, st.Jobs, st.JournalDropped)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		<-ctx.Done()
		log.Printf("sweepd: shutdown signal, draining (max %s)", *drainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		srv.Shutdown(shCtx)
	}()

	log.Printf("sweepd: listening on %s (%d workers, journal %q)", *addr, *workers, *journal)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sweepd: %v", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Fatalf("sweepd: drain: %v", err)
	}
	log.Printf("sweepd: drained cleanly")
}

// Command floorplan reproduces the §3 floorplanning exercise: it
// anneals the MultiNoC IP placement on an XC2S200E-like fabric and
// renders the result as ASCII art next to the cost numbers (the
// Figure 7 view).
//
// Usage:
//
//	floorplan [-seed 42] [-iters 20000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/floorplan"
	"repro/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 42, "annealing seed")
	iters := flag.Int("iters", 20000, "annealing moves")
	flag.Parse()

	p := floorplan.MultiNoC()
	r := sim.NewRand(*seed + 1)
	randomPl, err := p.RandomPlacement(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("random placement (cost %.1f):\n%s\n", p.Cost(randomPl), p.Render(randomPl))

	res, err := p.Anneal(*seed, *iters)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("annealed placement (cost %.1f after %d moves, %d accepted):\n%s\n",
		res.Cost, res.Moves, res.Accepted, p.Render(res.Placement))
	fmt.Println("legend: N=NoC P=proc1/proc2 M=memory S=serial  ':' BlockRAM column")
	fmt.Println("pads are at the bottom-left corner; compare the reasoning of Figure 7.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floorplan:", err)
	os.Exit(1)
}

package main

import (
	"strings"
	"testing"
)

func entry(name string, metrics map[string]float64) Entry {
	return Entry{Name: name, Iterations: 3, Metrics: metrics}
}

func asMap(es ...Entry) map[string]Entry {
	m := make(map[string]Entry, len(es))
	for _, e := range es {
		m[e.Name] = e
	}
	return m
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := asMap(entry("BenchmarkA", map[string]float64{"simcycles/sec": 1000}))
	cand := asMap(entry("BenchmarkA", map[string]float64{"simcycles/sec": 900}))
	var out strings.Builder
	if code := gate(base, cand, "simcycles/sec", 0.15, false, &out); code != 0 {
		t.Fatalf("10%% slowdown under a 15%% threshold: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("report missing OK line:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := asMap(
		entry("BenchmarkA", map[string]float64{"simcycles/sec": 1000}),
		entry("BenchmarkB", map[string]float64{"simcycles/sec": 1000}),
	)
	cand := asMap(
		entry("BenchmarkA", map[string]float64{"simcycles/sec": 1000}),
		entry("BenchmarkB", map[string]float64{"simcycles/sec": 500}),
	)
	var out strings.Builder
	if code := gate(base, cand, "simcycles/sec", 0.15, false, &out); code != 1 {
		t.Fatalf("50%% regression: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESS ") || !strings.Contains(out.String(), "BenchmarkB") {
		t.Errorf("report missing regression line:\n%s", out.String())
	}
}

func TestGateSkipsStaleBaselineEntries(t *testing.T) {
	// A baseline naming benchmarks that no longer exist (renamed or
	// retired since it was committed) warns and skips them; the gate
	// still judges what remains comparable.
	base := asMap(
		entry("BenchmarkGone", map[string]float64{"simcycles/sec": 1000}),
		entry("BenchmarkKept", map[string]float64{"simcycles/sec": 1000}),
	)
	cand := asMap(entry("BenchmarkKept", map[string]float64{"simcycles/sec": 1100}))
	var out strings.Builder
	if code := gate(base, cand, "simcycles/sec", 0.15, false, &out); code != 0 {
		t.Fatalf("stale entry hard-failed the gate: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "BenchmarkGone") {
		t.Errorf("stale entry not reported:\n%s", out.String())
	}
}

func TestGateLowerIsBetter(t *testing.T) {
	// allocs/op gating: fewer is fine, more past the threshold fails.
	base := asMap(
		entry("BenchmarkA", map[string]float64{"allocs/op": 100}),
		entry("BenchmarkB", map[string]float64{"allocs/op": 100}),
	)
	cand := asMap(
		entry("BenchmarkA", map[string]float64{"allocs/op": 50}),
		entry("BenchmarkB", map[string]float64{"allocs/op": 105}),
	)
	var out strings.Builder
	if code := gate(base, cand, "allocs/op", 0.10, true, &out); code != 0 {
		t.Fatalf("improvement + 5%% growth under 10%% threshold: exit %d\n%s", code, out.String())
	}
	cand = asMap(
		entry("BenchmarkA", map[string]float64{"allocs/op": 50}),
		entry("BenchmarkB", map[string]float64{"allocs/op": 150}),
	)
	out.Reset()
	if code := gate(base, cand, "allocs/op", 0.10, true, &out); code != 1 {
		t.Fatalf("50%% allocation growth: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESS ") || !strings.Contains(out.String(), "BenchmarkB") {
		t.Errorf("report missing regression line:\n%s", out.String())
	}
}

func TestGateLowerZeroBaselineMustStayZero(t *testing.T) {
	// Higher-is-better skips non-positive baselines as meaningless, but
	// a 0 allocs/op baseline is the strongest possible claim: any
	// allocation in the candidate is a regression, threshold or not.
	base := asMap(entry("BenchmarkSteady", map[string]float64{"allocs/op": 0}))
	cand := asMap(entry("BenchmarkSteady", map[string]float64{"allocs/op": 1}))
	var out strings.Builder
	if code := gate(base, cand, "allocs/op", 0.15, true, &out); code != 1 {
		t.Fatalf("0 -> 1 allocs/op: exit %d, want 1\n%s", code, out.String())
	}
	cand = asMap(entry("BenchmarkSteady", map[string]float64{"allocs/op": 0}))
	out.Reset()
	if code := gate(base, cand, "allocs/op", 0.15, true, &out); code != 0 {
		t.Fatalf("0 -> 0 allocs/op: exit %d, want 0\n%s", code, out.String())
	}
}

func TestGateWarnsWhenNothingComparable(t *testing.T) {
	// An entirely stale baseline (every benchmark renamed, or the
	// metric missing) is a warning, not a CI failure.
	base := asMap(entry("BenchmarkOld", map[string]float64{"simcycles/sec": 1000}))
	cand := asMap(entry("BenchmarkNew", map[string]float64{"simcycles/sec": 1000}))
	var out strings.Builder
	if code := gate(base, cand, "simcycles/sec", 0.15, false, &out); code != 0 {
		t.Fatalf("empty comparison: exit %d, want 0 (warn only)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "WARNING") {
		t.Errorf("no warning in report:\n%s", out.String())
	}
	// Same when the baseline lacks the gated metric everywhere.
	base = asMap(entry("BenchmarkA", map[string]float64{"ns/op": 5}))
	cand = asMap(entry("BenchmarkA", map[string]float64{"ns/op": 5}))
	out.Reset()
	if code := gate(base, cand, "simcycles/sec", 0.15, false, &out); code != 0 {
		t.Fatalf("metric-free baseline: exit %d, want 0\n%s", code, out.String())
	}
}

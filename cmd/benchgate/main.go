// Command benchgate compares two benchjson documents and fails when a
// throughput metric regressed beyond a threshold — the CI gate that
// keeps the simulator's performance trajectory monotonic across PRs.
//
// Usage:
//
//	benchgate -base BENCH_BASELINE.json -new BENCH_NEW.json
//	benchgate -base old.json -new new.json -metric simcycles/sec -threshold 0.15
//	benchgate -base old.json -new new.json -metric allocs/op -lower -threshold 0.10
//
// Benchmarks are matched by name; only those present in both files and
// carrying the metric are compared. By default the metric is
// higher-is-better (simulated cycles per wall-clock second); a new
// value below (1 - threshold) x base is a regression. With -lower the
// metric is lower-is-better (allocs/op, B/op): a new value above
// (1 + threshold) x base regresses, a zero baseline must stay zero,
// and zero-baseline entries are compared rather than skipped (a
// steady-state path that starts allocating is exactly the regression
// the gate exists to catch). Benchmarks that appear on
// only one side — renamed, retired, or newly added since the baseline
// was committed — are reported but never fail the gate, so baselines
// from earlier PRs remain usable as the suite evolves. A baseline with
// nothing comparable at all is likewise a warning, not an error: a
// stale baseline should prompt a refresh, not block unrelated work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Entry mirrors cmd/benchjson's output format.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func load(path string) (map[string]Entry, error) {
	bs, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(bs, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Entry, len(d.Benchmarks))
	for _, e := range d.Benchmarks {
		m[e.Name] = e
	}
	return m, nil
}

// gate compares candidate against baseline on one metric, writing the
// per-benchmark report to out. When lower is set the metric is
// lower-is-better and zero baselines are gated (must stay zero);
// otherwise higher-is-better, where a non-positive baseline value is
// meaningless and skipped. The exit status is 1 when any common
// benchmark regressed past the threshold and 0 otherwise — including
// when nothing was comparable, which only earns a warning.
func gate(base, cand map[string]Entry, metric string, threshold float64, lower bool, out io.Writer) int {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	compared, regressed := 0, 0
	for _, name := range names {
		bv, ok := base[name].Metrics[metric]
		if !ok || (!lower && bv <= 0) {
			continue
		}
		c, ok := cand[name]
		if !ok {
			fmt.Fprintf(out, "MISSING  %-60s (baseline only — stale entry, skipped)\n", name)
			continue
		}
		cv, ok := c.Metrics[metric]
		if !ok {
			fmt.Fprintf(out, "MISSING  %-60s (no %s in candidate, skipped)\n", name, metric)
			continue
		}
		compared++
		change := 0.0
		if bv != 0 {
			change = cv/bv - 1
		}
		bad := cv < bv*(1-threshold)
		if lower {
			// A zero baseline admits no slack: any allocation at all
			// on a previously allocation-free path is a regression.
			bad = cv > bv*(1+threshold) || (bv == 0 && cv > 0)
		}
		status := "OK      "
		if bad {
			status = "REGRESS "
			regressed++
		}
		fmt.Fprintf(out, "%s %-60s base %14.0f  new %14.0f  %+6.1f%%\n",
			status, name, bv, cv, 100*change)
	}
	switch {
	case compared == 0:
		fmt.Fprintf(out, "benchgate: WARNING: no comparable benchmarks with metric %q — baseline is stale, refresh it\n", metric)
		return 0
	case regressed > 0:
		fmt.Fprintf(out, "benchgate: %d of %d benchmarks regressed more than %.0f%%\n",
			regressed, compared, 100*threshold)
		return 1
	default:
		fmt.Fprintf(out, "benchgate: %d benchmarks within %.0f%% of baseline\n", compared, 100*threshold)
		return 0
	}
}

func main() {
	basePath := flag.String("base", "", "baseline benchjson file")
	newPath := flag.String("new", "", "candidate benchjson file")
	metric := flag.String("metric", "simcycles/sec", "metric to gate on")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional regression")
	lower := flag.Bool("lower", false, "metric is lower-is-better (allocs/op, B/op); zero baselines must stay zero")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -new are required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	os.Exit(gate(base, cand, *metric, *threshold, *lower, os.Stdout))
}

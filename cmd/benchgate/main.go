// Command benchgate compares two benchjson documents and fails when a
// throughput metric regressed beyond a threshold — the CI gate that
// keeps the simulator's performance trajectory monotonic across PRs.
//
// Usage:
//
//	benchgate -base BENCH_PR2.json -new BENCH_NEW.json
//	benchgate -base old.json -new new.json -metric simcycles/sec -threshold 0.15
//
// Benchmarks are matched by name; only those present in both files and
// carrying the metric are compared. The metric is
// higher-is-better (simulated cycles per wall-clock second); a new
// value below (1 - threshold) x base is a regression. Benchmarks that
// appear only on one side are reported but never fail the gate, so
// baselines from earlier PRs remain usable as the suite grows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Entry mirrors cmd/benchjson's output format.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Benchmarks []Entry `json:"benchmarks"`
}

func load(path string) (map[string]Entry, error) {
	bs, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(bs, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Entry, len(d.Benchmarks))
	for _, e := range d.Benchmarks {
		m[e.Name] = e
	}
	return m, nil
}

func main() {
	basePath := flag.String("base", "", "baseline benchjson file")
	newPath := flag.String("new", "", "candidate benchjson file")
	metric := flag.String("metric", "simcycles/sec", "higher-is-better metric to gate on")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional regression")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -new are required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	compared, regressed := 0, 0
	for name, b := range base {
		bv, ok := b.Metrics[*metric]
		if !ok || bv <= 0 {
			continue
		}
		c, ok := cand[name]
		if !ok {
			fmt.Printf("MISSING  %-60s (baseline only)\n", name)
			continue
		}
		cv, ok := c.Metrics[*metric]
		if !ok {
			fmt.Printf("MISSING  %-60s (no %s in candidate)\n", name, *metric)
			continue
		}
		compared++
		change := cv/bv - 1
		status := "OK      "
		if cv < bv*(1-*threshold) {
			status = "REGRESS "
			regressed++
		}
		fmt.Printf("%s %-60s base %14.0f  new %14.0f  %+6.1f%%\n",
			status, name, bv, cv, 100*change)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no comparable benchmarks with metric %q\n", *metric)
		os.Exit(2)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d benchmarks regressed more than %.0f%%\n",
			regressed, compared, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n", compared, 100**threshold)
}

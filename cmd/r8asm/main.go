// Command r8asm assembles R8 assembly source into the textual object
// format the MultiNoC host downloads over RS-232 (§4).
//
// Usage:
//
//	r8asm [-o out.obj] prog.asm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/r8asm"
)

func main() {
	out := flag.String("o", "", "output object file (default: stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: r8asm [-o out.obj] prog.asm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := r8asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := r8asm.WriteObject(w, prog); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "assembled %d words in %d segment(s)\n", prog.Size(), len(prog.Segments))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r8asm:", err)
	os.Exit(1)
}

// Command r8sim runs a program on the functional R8 simulator — the
// counterpart of the paper's "R8 Simulator environment" [3]. It accepts
// either assembly (.asm) or object (.obj) input, maps printf output to
// stdout and feeds scanf from -in values.
//
// Usage:
//
//	r8sim [-max N] [-trace] [-in "1,2,3"] prog.asm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/r8"
	"repro/internal/r8asm"
	"repro/internal/r8sim"
)

func main() {
	maxInst := flag.Int("max", 10_000_000, "instruction budget")
	trace := flag.Bool("trace", false, "print every executed instruction")
	in := flag.String("in", "", "comma-separated scanf inputs")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: r8sim [-max N] [-trace] [-in vals] prog.{asm,obj}")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var prog *r8asm.Program
	if strings.HasSuffix(path, ".obj") {
		prog, err = r8asm.ParseObject(strings.NewReader(string(data)))
	} else {
		prog, err = r8asm.Assemble(string(data))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	m := r8sim.New(65536)
	if err := m.Load(prog); err != nil {
		fatal(err)
	}
	var inputs []uint16
	if *in != "" {
		for _, f := range strings.Split(*in, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 17)
			if err != nil {
				fatal(fmt.Errorf("bad -in value %q: %v", f, err))
			}
			inputs = append(inputs, uint16(v))
		}
	}
	m.Printf = func(v uint16) { fmt.Printf("%c", rune(v&0xFF)) }
	m.Scanf = func() uint16 {
		if len(inputs) == 0 {
			fatal(fmt.Errorf("program executed scanf but -in is exhausted"))
		}
		v := inputs[0]
		inputs = inputs[1:]
		return v
	}
	if *trace {
		m.Trace = func(pc uint16, inst r8.Inst) {
			fmt.Fprintf(os.Stderr, "%04X: %s\n", pc, inst.Disasm())
		}
	}
	halted, err := m.Run(*maxInst)
	if err != nil {
		fatal(err)
	}
	if !halted {
		fatal(fmt.Errorf("no HALT within %d instructions", *maxInst))
	}
	fmt.Fprintf(os.Stderr, "\nhalted after %d instructions; R3=%d (0x%04X)\n",
		m.Retired, int16(m.Regs[3]), m.Regs[3])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r8sim:", err)
	os.Exit(1)
}

// Command rcc compiles R8C (a small C-like language) into R8 assembly —
// the C compiler the paper lists as future work (§5).
//
// Usage:
//
//	rcc [-o out.asm] [-run] [-in "1,2"] prog.rc
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/r8asm"
	"repro/internal/r8sim"
	"repro/internal/rcc"
)

func main() {
	out := flag.String("o", "", "output assembly file (default: stdout)")
	run := flag.Bool("run", false, "compile, assemble and run on the functional simulator")
	in := flag.String("in", "", "comma-separated getw() inputs for -run")
	stackTop := flag.Uint("stack", 0x03FF, "initial stack pointer")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rcc [-o out.asm] [-run] prog.rc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	asm, err := rcc.CompileOpts(string(src), rcc.Options{StackTop: uint16(*stackTop)})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !*run {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		fmt.Fprint(w, asm)
		return
	}
	prog, err := r8asm.Assemble(asm)
	if err != nil {
		fatal(fmt.Errorf("internal: generated assembly rejected: %v", err))
	}
	m := r8sim.New(65536)
	if err := m.Load(prog); err != nil {
		fatal(err)
	}
	var inputs []uint16
	if *in != "" {
		for _, f := range strings.Split(*in, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 17)
			if err != nil {
				fatal(err)
			}
			inputs = append(inputs, uint16(v))
		}
	}
	m.Printf = func(v uint16) { fmt.Printf("%c", rune(v&0xFF)) }
	m.Scanf = func() uint16 {
		if len(inputs) == 0 {
			fatal(fmt.Errorf("getw() called but -in is exhausted"))
		}
		v := inputs[0]
		inputs = inputs[1:]
		return v
	}
	halted, err := m.Run(50_000_000)
	if err != nil {
		fatal(err)
	}
	if !halted {
		fatal(fmt.Errorf("program did not halt"))
	}
	fmt.Fprintf(os.Stderr, "\nmain returned %d\n", int16(m.Regs[3]))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcc:", err)
	os.Exit(1)
}

// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so CI can archive benchmark results (e.g.
// BENCH_PR2.json) and the performance trajectory of the simulator can
// be tracked across PRs without parsing free-form text.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 1x . | go run ./cmd/benchjson > BENCH.json
//
// Every benchmark line of the form
//
//	BenchmarkName/sub-8   10   123456 ns/op   42 extra/metric   ...
//
// becomes an entry with its iteration count and every value/unit pair
// as a metric.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[i+1]] = v
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(struct {
		Benchmarks []Entry `json:"benchmarks"`
	}{entries}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}

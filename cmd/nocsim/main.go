// Command nocsim runs synthetic traffic through a standalone Hermes
// NoC and prints latency/throughput figures — the workhorse behind the
// E1/E2/E3 experiments.
//
// Usage:
//
//	nocsim [-w 4 -h 4] [-pattern uniform] [-payload 8] [-depth 2] -rate 0.1
//	nocsim -sweep "0.02,0.05,0.1,0.2,0.3"      # rate sweep table
//	nocsim -peak                               # 5-connection router peak
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/vcd"
)

func main() {
	w := flag.Int("w", 4, "mesh width")
	h := flag.Int("h", 4, "mesh height")
	rate := flag.Float64("rate", 0.1, "offered load, flits/cycle/node")
	pattern := flag.String("pattern", "uniform", "uniform|transpose|bitcomp|hotspot")
	payload := flag.Int("payload", 8, "payload flits per packet")
	depth := flag.Int("depth", 2, "input buffer depth")
	flit := flag.Int("flit", 8, "flit width in bits")
	routing := flag.String("routing", "xy", "xy|yx|westfirst")
	cycles := flag.Int("cycles", 20000, "measurement cycles")
	seed := flag.Uint64("seed", 1, "workload seed")
	sweep := flag.String("sweep", "", "comma-separated rates for a sweep table")
	peak := flag.Bool("peak", false, "run the 5-connection peak-throughput experiment")
	vcdPath := flag.String("vcd", "", "trace the centre router's links to a VCD waveform file")
	domains := flag.Int("domains", 1, "shard the mesh into this many clock domains (column strips)")
	parallel := flag.Bool("parallel", false, "run clock domains on separate goroutines (needs -domains > 1)")
	streaming := flag.Bool("streaming", true, "event-per-flit streaming fast path (false forces the stepped handshake)")
	flag.Parse()

	cfg := noc.Defaults(*w, *h)
	cfg.BufDepth = *depth
	cfg.FlitBits = *flit
	switch *routing {
	case "xy":
		cfg.Routing = noc.RouteXY
	case "yx":
		cfg.Routing = noc.RouteYX
	case "westfirst":
		cfg.Routing = noc.RouteWestFirst
	default:
		fatal(fmt.Errorf("unknown routing %q", *routing))
	}

	if *vcdPath != "" {
		if err := traceOnePacket(cfg, *vcdPath); err != nil {
			fatal(err)
		}
		return
	}

	if *peak {
		res, err := traffic.PeakThroughput(cfg, 50)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("router peak: measured %.3f Gbit/s of %.3f theoretical (%.1f%% efficiency)\n",
			res.MeasuredGbps, res.TheoreticalGbps, 100*res.Efficiency)
		return
	}

	var pat traffic.Pattern
	switch *pattern {
	case "uniform":
		pat = traffic.Uniform
	case "transpose":
		pat = traffic.Transpose
	case "bitcomp":
		pat = traffic.BitComplement
	case "hotspot":
		pat = traffic.Hotspot(noc.Addr{X: *w / 2, Y: *h / 2}, 0.2)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}

	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(err)
			}
			rates = append(rates, v)
		}
	}
	fmt.Printf("%8s %10s %10s %10s %10s %10s %8s\n",
		"offered", "accepted", "delivered", "lat.mean", "lat.p95", "lat.total", "packets")
	for _, r := range rates {
		res, err := traffic.Run(cfg, traffic.Config{
			Pattern: pat, Rate: r, PayloadFlits: *payload, Seed: *seed,
			Warmup: *cycles / 4, Measure: *cycles, Drain: *cycles * 2,
			Domains: *domains, Parallel: *parallel, NoFlitStreaming: !*streaming,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8.3f %10.4f %10.4f %10.1f %10d %10.1f %8d\n",
			res.Offered, res.Accepted, res.Delivered,
			res.Latency.MeanCycles, res.Latency.P95Cycles,
			res.Latency.MeanTotalCycles, res.MeasuredPackets)
	}
}

// traceOnePacket records the waveforms of a single corner-to-corner
// packet at the mesh centre, for inspection in a VCD viewer.
func traceOnePacket(cfg noc.Config, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	clk := sim.NewClock()
	net, err := noc.New(clk, cfg)
	if err != nil {
		return err
	}
	src, err := net.NewEndpoint(noc.Addr{X: 0, Y: 0})
	if err != nil {
		return err
	}
	dst := noc.Addr{X: cfg.Width - 1, Y: cfg.Height - 1}
	if _, err := net.NewEndpoint(dst); err != nil {
		return err
	}
	w := vcd.NewWriter(f)
	noc.AttachVCD(net, w, noc.Addr{X: cfg.Width / 2, Y: cfg.Height / 2}, dst)
	if err := w.Begin(); err != nil {
		return err
	}
	meta, err := src.Send(dst, make([]uint16, 16))
	if err != nil {
		return err
	}
	if err := clk.RunUntil(func() bool { return meta.EjectCycle != 0 }, 1_000_000); err != nil {
		return err
	}
	clk.Run(8)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "traced %d cycles into %s\n", clk.Cycle(), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}

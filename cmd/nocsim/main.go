// Command nocsim runs synthetic traffic through a standalone Hermes
// NoC and prints latency/throughput figures — the workhorse behind the
// E1/E2/E3 experiments.
//
// Usage:
//
//	nocsim [-w 4 -h 4] [-pattern uniform] [-payload 8] [-depth 2] -rate 0.1
//	nocsim -sweep "0.02,0.05,0.1,0.2,0.3"      # rate sweep table
//	nocsim -peak                               # 5-connection router peak
//	nocsim -pattern hotspot -hotspots "2,3,0.3;0,0,0.1"
//	nocsim -pattern bursty -burstlen 8 -burstpeak 0.5
//	nocsim -pattern multicast -mcgroup "0,0;3,1;3,3" -rate 0.02
//	nocsim -record run.trace -rate 0.05        # then: nocsim -replay run.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/vcd"
)

func main() {
	w := flag.Int("w", 4, "mesh width")
	h := flag.Int("h", 4, "mesh height")
	rate := flag.Float64("rate", 0.1, "offered load, flits/cycle/node")
	pattern := flag.String("pattern", "uniform", "uniform|transpose|bitcomp|bitrev|hotspot|bursty|multicast")
	hotspots := flag.String("hotspots", "", `weighted hotspot set as "x,y,w;x,y,w" (default: mesh centre at 0.2)`)
	burstLen := flag.Float64("burstlen", 0, "mean packets per burst (0 = library default)")
	burstPeak := flag.Float64("burstpeak", 0, "in-burst injection rate, flits/cycle (0 = library default)")
	mcGroup := flag.String("mcgroup", "", `multicast destination set as "x,y;x,y"`)
	mcUnicast := flag.Bool("mcunicast", false, "deliver multicast by unicast replication instead of path forwarding")
	record := flag.String("record", "", "write the injection log to this NDJSON trace file")
	replay := flag.String("replay", "", "replay an NDJSON trace file instead of a synthetic pattern")
	payload := flag.Int("payload", 8, "payload flits per packet")
	depth := flag.Int("depth", 2, "input buffer depth")
	flit := flag.Int("flit", 8, "flit width in bits")
	routing := flag.String("routing", "xy", "xy|yx|westfirst")
	cycles := flag.Int("cycles", 20000, "measurement cycles")
	seed := flag.Uint64("seed", 1, "workload seed")
	sweep := flag.String("sweep", "", "comma-separated rates for a sweep table")
	peak := flag.Bool("peak", false, "run the 5-connection peak-throughput experiment")
	vcdPath := flag.String("vcd", "", "trace the centre router's links to a VCD waveform file")
	domains := flag.Int("domains", 1, "shard the mesh into this many clock domains (column strips)")
	parallel := flag.Bool("parallel", false, "run clock domains on separate goroutines (needs -domains > 1)")
	streaming := flag.Bool("streaming", true, "event-per-flit streaming fast path (false forces the stepped handshake)")
	flag.Parse()

	cfg := noc.Defaults(*w, *h)
	cfg.BufDepth = *depth
	cfg.FlitBits = *flit
	switch *routing {
	case "xy":
		cfg.Routing = noc.RouteXY
	case "yx":
		cfg.Routing = noc.RouteYX
	case "westfirst":
		cfg.Routing = noc.RouteWestFirst
	default:
		fatal(fmt.Errorf("unknown routing %q", *routing))
	}

	if *vcdPath != "" {
		if err := traceOnePacket(cfg, *vcdPath); err != nil {
			fatal(err)
		}
		return
	}

	if *peak {
		res, err := traffic.PeakThroughput(cfg, 50)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("router peak: measured %.3f Gbit/s of %.3f theoretical (%.1f%% efficiency)\n",
			res.MeasuredGbps, res.TheoreticalGbps, 100*res.Efficiency)
		return
	}

	spec := traffic.PatternSpec{Name: *pattern}
	if *hotspots != "" {
		spots, err := parseHotspots(*hotspots)
		if err != nil {
			fatal(err)
		}
		spec.Hotspots = spots
	} else if *pattern == "hotspot" {
		spec.Hotspots = []traffic.HotspotSpec{{X: *w / 2, Y: *h / 2, Weight: 0.2}}
	}
	if *burstLen != 0 || *burstPeak != 0 {
		spec.Burst = &traffic.BurstSpec{Len: *burstLen, Peak: *burstPeak}
	}
	if *mcGroup != "" {
		group, err := parseAddrs(*mcGroup)
		if err != nil {
			fatal(err)
		}
		spec.Group = group
		spec.MulticastUnicast = *mcUnicast
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		entries, err := traffic.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		spec.Name = "trace"
		spec.Trace = entries
	}

	rates := []float64{*rate}
	if *sweep != "" {
		rates = nil
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(err)
			}
			rates = append(rates, v)
		}
	}
	if *record != "" && len(rates) != 1 {
		fatal(fmt.Errorf("-record needs a single rate, not a sweep"))
	}
	fmt.Printf("%8s %10s %10s %10s %10s %10s %8s\n",
		"offered", "accepted", "delivered", "lat.mean", "lat.p95", "lat.total", "packets")
	for _, r := range rates {
		tcfg := traffic.Config{
			Spec: spec, Rate: r, PayloadFlits: *payload, Seed: *seed,
			Warmup: *cycles / 4, Measure: *cycles, Drain: *cycles * 2,
			Domains: *domains, Parallel: *parallel, NoFlitStreaming: !*streaming,
		}
		var res traffic.Result
		var err error
		if *record != "" {
			var rec []traffic.TraceEntry
			res, rec, err = traffic.RunRecorded(cfg, tcfg)
			if err == nil {
				err = writeTraceFile(*record, rec)
			}
		} else {
			res, err = traffic.Run(cfg, tcfg)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8.3f %10.4f %10.4f %10.1f %10d %10.1f %8d\n",
			res.Offered, res.Accepted, res.Delivered,
			res.Latency.MeanCycles, res.Latency.P95Cycles,
			res.Latency.MeanTotalCycles, res.MeasuredPackets)
	}
}

// parseHotspots parses the "x,y,w;x,y,w" weighted hotspot syntax.
func parseHotspots(s string) ([]traffic.HotspotSpec, error) {
	var spots []traffic.HotspotSpec
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(strings.TrimSpace(part), ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("hotspot %q: want x,y,weight", part)
		}
		x, errX := strconv.Atoi(strings.TrimSpace(fields[0]))
		y, errY := strconv.Atoi(strings.TrimSpace(fields[1]))
		wt, errW := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if errX != nil || errY != nil || errW != nil {
			return nil, fmt.Errorf("hotspot %q: want x,y,weight", part)
		}
		spots = append(spots, traffic.HotspotSpec{X: x, Y: y, Weight: wt})
	}
	return spots, nil
}

// parseAddrs parses the "x,y;x,y" address-list syntax.
func parseAddrs(s string) ([]noc.Addr, error) {
	var addrs []noc.Addr
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(strings.TrimSpace(part), ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("address %q: want x,y", part)
		}
		x, errX := strconv.Atoi(strings.TrimSpace(fields[0]))
		y, errY := strconv.Atoi(strings.TrimSpace(fields[1]))
		if errX != nil || errY != nil {
			return nil, fmt.Errorf("address %q: want x,y", part)
		}
		addrs = append(addrs, noc.Addr{X: x, Y: y})
	}
	return addrs, nil
}

func writeTraceFile(path string, entries []traffic.TraceEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := traffic.WriteTrace(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traceOnePacket records the waveforms of a single corner-to-corner
// packet at the mesh centre, for inspection in a VCD viewer.
func traceOnePacket(cfg noc.Config, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	clk := sim.NewClock()
	net, err := noc.New(clk, cfg)
	if err != nil {
		return err
	}
	src, err := net.NewEndpoint(noc.Addr{X: 0, Y: 0})
	if err != nil {
		return err
	}
	dst := noc.Addr{X: cfg.Width - 1, Y: cfg.Height - 1}
	if _, err := net.NewEndpoint(dst); err != nil {
		return err
	}
	w := vcd.NewWriter(f)
	noc.AttachVCD(net, w, noc.Addr{X: cfg.Width / 2, Y: cfg.Height / 2}, dst)
	if err := w.Begin(); err != nil {
		return err
	}
	meta, err := src.Send(dst, make([]uint16, 16))
	if err != nil {
		return err
	}
	if err := clk.RunUntil(func() bool { return meta.EjectCycle != 0 }, 1_000_000); err != nil {
		return err
	}
	clk.Run(8)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "traced %d cycles into %s\n", clk.Cycle(), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
